//! Differential test for the determinism contract: every parallelized stage
//! (dataset generation, DSE sweeps, GNN training) must produce byte-identical
//! results for any `QOR_THREADS` setting.
//!
//! This is deliberately ONE `#[test]` function: [`par::set_threads`] is a
//! process-wide override (precisely so this comparison is possible without
//! racy `env::set_var` calls), and the default test harness runs `#[test]`s
//! concurrently — splitting the stages into separate tests would let one
//! stage's override leak into another's timing window.

use gnn::{train_regression, EncoderConfig, RegressionModel, TrainConfig};
use hier_hls_qor::prelude::*;
use qor_core::{dataset, graph_aggregates, graph_to_gnn, DataOptions, AGG_DIM, FEATURE_DIM};
use tensor::ParamStore;

/// Runs `f` under an explicit worker-count override, restoring the default
/// (env / available parallelism) afterwards.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    par::set_threads(Some(n));
    let out = f();
    par::set_threads(None);
    out
}

#[test]
fn parallel_matches_sequential() {
    // ---- stage 1: dataset generation (parallel hlsim label evaluation) ----
    let data_opts = DataOptions {
        max_designs_per_kernel: 12,
        seed: 5,
    };
    let ks: Vec<_> = kernels::training_kernels().take(3).collect();
    let gen = |n| with_threads(n, || dataset::generate_for(&ks, &data_opts).unwrap());
    let seq = gen(1);
    let par4 = gen(4);
    for (split, a, b) in [
        ("train", &seq.train, &par4.train),
        ("val", &seq.val, &par4.val),
        ("test", &seq.test, &par4.test),
    ] {
        assert_eq!(a.len(), b.len(), "{split} split size");
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.kernel, y.kernel, "{split} kernel order");
            assert_eq!(x.config, y.config, "{split} config order");
            assert_eq!(x.report, y.report, "{split} labels");
        }
    }

    // ---- stage 2: DSE (parallel oracle + predictor sweeps) ----
    let func = kernels::lower_kernel("mvt").unwrap();
    let configs = kernels::design_space(&func).enumerate_capped(48);
    // post-HLS estimates stand in for a trained predictor: cheap, pure, and
    // imperfect enough that the Pareto front is non-trivial
    let sweep = |n| {
        with_threads(n, || {
            dse::explore(
                "mvt",
                &func,
                &configs,
                |f, c| hlsim::evaluate(f, c).unwrap().pre_route,
                0.0,
            )
            .unwrap()
        })
    };
    let o1 = sweep(1);
    let o4 = sweep(4);
    assert_eq!(o1.n_configs, o4.n_configs);
    assert_eq!(o1.pareto.indices(), o4.pareto.indices(), "Pareto front");
    assert_eq!(
        o1.adrs.value().to_bits(),
        o4.adrs.value().to_bits(),
        "ADRS must be bit-identical"
    );
    assert_eq!(
        o1.vivado_secs.to_bits(),
        o4.vivado_secs.to_bits(),
        "accounted oracle time must be bit-identical"
    );
    assert_eq!(o1.points.len(), o4.points.len());
    for (p, q) in o1.points.iter().zip(o4.points.iter()) {
        assert_eq!(p.predicted, q.predicted, "predicted QoR order");
        assert_eq!(p.true_qor, q.true_qor, "oracle QoR order");
    }

    // ---- stage 3: flat GNN training (parallel micro-batch backward) ----
    let samples: Vec<(gnn::GraphData, Vec<f32>)> = seq
        .train
        .iter()
        .map(|s| {
            let f = seq.function_of(s).unwrap();
            let graph = GraphBuilder::new(f, &s.config).build();
            let mut g = graph_to_gnn(&graph);
            g.g_feats = graph_aggregates(&graph);
            let y = vec![(s.report.top.latency as f32 + 1.0).ln()];
            (g, y)
        })
        .collect();
    let (train, val) = samples.split_at(samples.len() - 4);
    let run = |n| {
        with_threads(n, || {
            let mut store = ParamStore::new();
            let model = RegressionModel::new(
                &mut store,
                &EncoderConfig::new(ConvKind::Sage, FEATURE_DIM, 16),
                AGG_DIM,
                1,
                7,
            );
            let cfg = TrainConfig {
                epochs: 4,
                batch_size: 16,
                seed: 7,
                ..TrainConfig::default()
            };
            train_regression(&mut store, &model, train, val, &cfg)
        })
    };
    let r1 = run(1);
    let r4 = run(4);
    assert_eq!(r1.epochs_run, r4.epochs_run);
    assert_eq!(r1.epoch_losses.len(), r4.epoch_losses.len());
    for (e, (a, b)) in r1
        .epoch_losses
        .iter()
        .zip(r4.epoch_losses.iter())
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "epoch {e} loss diverged");
    }
    assert_eq!(r1.final_loss.to_bits(), r4.final_loss.to_bits());
    assert_eq!(r1.best_val_mape.to_bits(), r4.best_val_mape.to_bits());

    // ---- stage 4: the full hierarchy (inner + global heads end to end) ----
    let opts = TrainOptions::quick().with_epochs(4).with_hidden(12);
    let fit = |n| {
        with_threads(n, || {
            HierarchicalModel::train_with_designs(&opts, &seq)
                .unwrap()
                .1
        })
    };
    let s1 = fit(1);
    let s4 = fit(4);
    assert!(s1.global.latency_mape.is_finite());
    assert_eq!(s1, s4, "hierarchical TrainStats must not vary with threads");
}
