//! Cross-crate integration tests: the full source → graph → oracle →
//! training → prediction → DSE pipeline.

use hier_hls_qor::prelude::*;
use pragma::{LoopId, Unroll};
use qor_core::TrainOptions;

fn tiny_opts() -> TrainOptions {
    TrainOptions::quick()
        .with_epochs(10)
        .with_hidden(16)
        .with_max_designs(10)
        .with_data_seed(21)
}

#[test]
fn source_to_qor_pipeline() {
    // parse → lower → graph → oracle for every bundled kernel
    for k in kernels::all() {
        let func = kernels::lower_kernel(k.name).unwrap();
        let cfg = PragmaConfig::default();
        let graph = GraphBuilder::new(&func, &cfg).build();
        assert!(graph.num_nodes() > 0, "{}", k.name);
        let report = hlsim::evaluate(&func, &cfg).unwrap();
        assert!(report.top.latency > 0, "{}", k.name);
        assert!(!report.loops.is_empty(), "{}", k.name);
    }
}

#[test]
fn oracle_orders_designs_sanely() {
    // pipelining + unrolling + partitioning must beat the naive design
    let func = kernels::lower_kernel("mvt").unwrap();
    let naive = hlsim::evaluate(&func, &PragmaConfig::default())
        .unwrap()
        .top;

    let mut cfg = PragmaConfig::default();
    for nest in 0..2u16 {
        let inner = LoopId::from_path(&[nest, 0]);
        cfg.set_pipeline(inner.clone(), true);
        cfg.set_unroll(inner, Unroll::Factor(4));
    }
    cfg.set_partition(
        "a",
        2,
        pragma::ArrayPartition {
            kind: pragma::PartitionKind::Cyclic,
            factor: 4,
        },
    );
    let tuned = hlsim::evaluate(&func, &cfg).unwrap().top;
    assert!(
        tuned.latency < naive.latency / 2,
        "tuned {} vs naive {}",
        tuned.latency,
        naive.latency
    );
    assert!(tuned.lut > naive.lut, "speed costs area");
}

#[test]
fn trained_model_beats_wild_guessing_on_unseen_kernel() {
    let opts = tiny_opts();
    let (model, stats) = HierarchicalModel::train_on_kernels(&opts).unwrap();
    assert!(stats.global.latency_mape.is_finite());

    // unseen kernel, a handful of configs: predictions must at least
    // correlate in direction (pipelined design predicted faster than naive)
    let func = kernels::lower_kernel("syrk").unwrap();
    let naive_pred = model.predict(&func, &PragmaConfig::default());

    let mut cfg = PragmaConfig::default();
    cfg.set_flatten(LoopId::from_path(&[0]), true);
    cfg.set_flatten(LoopId::from_path(&[0, 0]), true);
    cfg.set_pipeline(LoopId::from_path(&[0, 0, 0]), true);
    // flatten applies to perfect prefix only; syrk's i/j are perfect levels
    let piped_pred = model.predict(&func, &cfg);
    assert!(naive_pred.latency > 0 && piped_pred.latency > 0);
}

#[test]
fn dse_with_trained_model_improves_over_random_subset() {
    // needs enough training for the predicted front not to collapse to a
    // single point (constant predictions dedup to one design)
    let opts = tiny_opts().with_epochs(30).with_max_designs(30);
    let (model, _) = HierarchicalModel::train_on_kernels(&opts).unwrap();
    let func = kernels::lower_kernel("bicg").unwrap();
    let configs = kernels::design_space(&func).enumerate_capped(60);

    let outcome = dse::explore("bicg", &func, &configs, |f, c| model.predict(f, c), 0.0).unwrap();
    assert_eq!(outcome.n_configs, 60);
    assert!(outcome.adrs_percent().is_finite());
    assert!(outcome.vivado_secs > 0.0);

    // reference: pretending the worst corner of the space is Pareto-optimal
    // (any predictor with signal must beat this, even at tiny training scale)
    let true_pts: Vec<(f64, f64)> = outcome
        .points
        .iter()
        .map(|p| (p.true_qor.latency as f64, dse::area(&p.true_qor)))
        .collect();
    let worst = true_pts
        .iter()
        .cloned()
        .max_by(|a, b| (a.0 * a.1).total_cmp(&(b.0 * b.1)))
        .expect("non-empty");
    let worst_adrs = Adrs::compute(&true_pts, &[worst]).percent();
    assert!(
        outcome.adrs_percent() < worst_adrs,
        "model DSE ({:.2}%) should beat the worst-corner reference ({:.2}%)",
        outcome.adrs_percent(),
        worst_adrs
    );
}

#[test]
fn dse_through_a_session_reuses_the_front_half() {
    obs::test_support::force_collection(true);
    let session = Session::with_capacity(HierarchicalModel::new(&tiny_opts()), 128);
    let func = kernels::lower_kernel("mvt").unwrap();
    let configs = kernels::design_space(&func).enumerate_capped(20);

    let kernel_hits_before = obs::metrics::counter_value("session/kernel/hits");
    let cache_hits_before = obs::metrics::counter_value("session/cache/hits");
    let first = explore_with_session(&session, "mvt", &configs, 0.0).unwrap();
    let second = explore_with_session(&session, "mvt", &configs, 0.0).unwrap();
    let kernel_hits = obs::metrics::counter_value("session/kernel/hits") - kernel_hits_before;
    let cache_hits = obs::metrics::counter_value("session/cache/hits") - cache_hits_before;
    obs::test_support::force_collection(false);

    // the session lowered mvt once and reused it for every pragma point;
    // the second sweep hit the prepared cache for every design
    let stats = session.stats();
    assert_eq!(stats.kernel_misses, 1, "{stats:?}");
    assert!(
        stats.hit_rate() > 0.0,
        "DSE must reuse cached work: {stats:?}"
    );
    assert_eq!(stats.hits, configs.len() as u64);
    // the obs mirrors agree with the session-local counters
    assert_eq!(kernel_hits, stats.kernel_hits);
    assert_eq!(cache_hits, stats.hits);

    // sweeps are deterministic, and ad-hoc queries reuse the same cache
    for (a, b) in first.points.iter().zip(&second.points) {
        assert_eq!(a.predicted, b.predicted);
    }
    let again = session.predict_kernel("mvt", &configs[3]).unwrap();
    assert_eq!(again, first.points[3].predicted);
}

#[test]
fn baselines_train_and_differ_from_ours() {
    let opts = tiny_opts();
    let designs = qor_core::generate(&opts.data).unwrap();

    let mut wu = dse::FlatGnnBaseline::wu_accuracy(dse::BaselineOptions {
        epochs: 8,
        ..Default::default()
    });
    wu.train(&designs).unwrap();
    let wu_eval = wu.eval_against_post_route(&designs, &designs.test).unwrap();
    assert!(wu_eval.n > 0);

    // pragma-blind [8] predicts the same value for every config of a kernel;
    // the pragma-swept labels vary a lot, so its latency error must be large
    assert!(
        wu_eval.latency_mape > 15.0,
        "pragma-blind baseline suspiciously accurate: {:.2}%",
        wu_eval.latency_mape
    );
}

#[test]
fn source_pragmas_flow_through_the_whole_stack() {
    let src = r#"
void saxpy(float a[64], float x[64], float y[64]) {
    #pragma HLS array_partition variable=x cyclic factor=4 dim=1
    for (int i = 0; i < 64; i++) {
        #pragma HLS pipeline
        #pragma HLS unroll factor=4
        y[i] = 2.5 * x[i] + a[i];
    }
}
"#;
    let module = hir::lower(&frontc::parse(src).unwrap()).unwrap();
    let func = module.function("saxpy").unwrap();
    let cfg = func.source_pragmas.clone();
    assert!(cfg.loop_pragma(&LoopId::from_path(&[0])).pipeline);

    // graphs built from the in-source pragmas show the replication + ports
    let graph = GraphBuilder::new(func, &cfg).build();
    assert_eq!(graph.ports_of("x").len(), 4);
    let report = hlsim::evaluate(func, &cfg).unwrap();
    let plain = hlsim::evaluate(func, &PragmaConfig::default()).unwrap();
    assert!(report.top.latency < plain.top.latency);
}
