//! Randomized and exhaustive tests of cross-crate invariants.
//!
//! Formerly `proptest`-based; the offline build environment has no crates.io
//! access, so random instances now come from the workspace's seeded in-tree
//! RNG (deterministic per seed) and small finite domains are swept
//! exhaustively.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hier_hls_qor::prelude::*;
use pragma::{ArrayPartition, LoopId, PartitionKind, Unroll};

// ------------------------------------------------------------- Pareto/ADRS

fn random_points(rng: &mut StdRng, n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|_| (rng.gen_range(1.0..1e6f64), rng.gen_range(0.001..10.0f64)))
        .collect()
}

/// No point on a Pareto front dominates another front point.
#[test]
fn pareto_front_is_mutually_nondominated() {
    let mut rng = StdRng::seed_from_u64(100);
    for _ in 0..64 {
        let n = rng.gen_range(1..40usize);
        let pts = random_points(&mut rng, n);
        let front = ParetoFront::from_points(&pts);
        let fp = front.points();
        for (i, a) in fp.iter().enumerate() {
            for (j, b) in fp.iter().enumerate() {
                if i != j {
                    let dominates = a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1);
                    assert!(!dominates, "{a:?} dominates {b:?}");
                }
            }
        }
    }
}

/// Every input point is dominated by (or equal to) some front point.
#[test]
fn pareto_front_covers_all_points() {
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..64 {
        let n = rng.gen_range(1..40usize);
        let pts = random_points(&mut rng, n);
        let front = ParetoFront::from_points(&pts);
        for p in &pts {
            let covered = front.points().iter().any(|f| f.0 <= p.0 && f.1 <= p.1);
            assert!(covered, "{p:?} not covered");
        }
    }
}

/// ADRS of any superset of the exact front is zero, and ADRS is
/// non-negative in general.
#[test]
fn adrs_properties() {
    let mut rng = StdRng::seed_from_u64(102);
    for _ in 0..64 {
        let n = rng.gen_range(2..30usize);
        let pts = random_points(&mut rng, n);
        let n_extra = rng.gen_range(0..10usize);
        let extra = random_points(&mut rng, n_extra);
        let mut superset = pts.clone();
        superset.extend(extra.iter().copied());
        assert_eq!(Adrs::compute(&pts, &superset).percent(), 0.0);
        assert!(Adrs::compute(&pts, &extra).percent() >= 0.0);
    }
}

// ------------------------------------------------- bank analysis vs brute force

/// The static bank-candidate analysis must over-approximate the banks
/// actually touched by a cyclic-partitioned 1-D access `c*i + k`.
/// The parameter domain is small, so it is swept exhaustively.
#[test]
fn bank_candidates_cover_actual_banks() {
    for coeff in 0i64..5 {
        for offset in 0i64..8 {
            for factor_pow in 1u32..4 {
                for unroll_pow in 0u32..4 {
                    let unroll = 2u32.pow(unroll_pow);
                    for replica in 0..unroll {
                        check_bank_coverage(coeff, offset, 2u32.pow(factor_pow), unroll, replica);
                    }
                }
            }
        }
    }
}

fn check_bank_coverage(coeff: i64, offset: i64, factor: u32, unroll: u32, replica: u32) {
    let n = 64usize;
    let i = LoopId::from_path(&[0]);
    let array = hir::ArrayInfo {
        name: "a".into(),
        elem: hir::ScalarType::Float,
        dims: vec![n],
    };
    let mut cfg = PragmaConfig::default();
    cfg.set_partition(
        "a",
        1,
        ArrayPartition {
            kind: PartitionKind::Cyclic,
            factor,
        },
    );

    let idx = hir::AffineIndex {
        terms: vec![(i.clone(), coeff)],
        constant: offset,
    };
    let access = hir::AccessPattern::Affine(vec![idx.clone()]);
    let mut residues = std::collections::HashMap::new();
    if unroll > 1 {
        residues.insert(i.clone(), (replica, unroll));
    }
    let candidates = cdfg::bank_candidates(&array, &cfg, &access, &residues);

    // brute force: iterate all i with the replica's residue and record
    // the banks actually touched
    let m = i64::from(factor);
    for iv in 0..(n as i64) {
        if unroll > 1 && (iv % i64::from(unroll)) != i64::from(replica) {
            continue;
        }
        let linear = coeff * iv + offset;
        if linear < 0 || linear >= n as i64 {
            continue;
        }
        let bank = (linear.rem_euclid(m)) as u32;
        assert!(
            candidates.contains(&bank),
            "bank {bank} touched but not predicted (candidates {candidates:?}, \
             coeff={coeff} offset={offset} factor={factor} unroll={unroll} replica={replica})"
        );
    }
}

// --------------------------------------------------------- graph invariants

/// Unrolling by `u` multiplies load/store node counts by exactly `u`
/// (for a single-level loop with affine accesses, under the node cap).
#[test]
fn unroll_replication_count() {
    for u_pow in 0u32..5 {
        let u = 2u32.pow(u_pow);
        let src = "void k(float a[32], float b[32]) {
            for (int i = 0; i < 32; i++) { b[i] = a[i] + 1.0; }
        }";
        let module = hir::lower(&frontc::parse(src).unwrap()).unwrap();
        let func = module.function("k").unwrap();
        let base = GraphBuilder::new(func, &PragmaConfig::default()).build();
        let mut cfg = PragmaConfig::default();
        if u > 1 {
            cfg.set_unroll(LoopId::from_path(&[0]), Unroll::Factor(u));
        }
        let g = GraphBuilder::new(func, &cfg).build();
        assert_eq!(
            g.count_mnemonic("load"),
            base.count_mnemonic("load") * u as usize
        );
        assert_eq!(
            g.count_mnemonic("store"),
            base.count_mnemonic("store") * u as usize
        );
    }
}

/// Total invocation mass of memory ops is invariant under unrolling —
/// the same work is done, just spatially.
#[test]
fn invocation_mass_invariant() {
    for u_pow in 0u32..6 {
        let u = 2u32.pow(u_pow);
        let src = "void k(float a[32], float b[32]) {
            for (int i = 0; i < 32; i++) { b[i] = a[i] * 2.0; }
        }";
        let module = hir::lower(&frontc::parse(src).unwrap()).unwrap();
        let func = module.function("k").unwrap();
        let mut cfg = PragmaConfig::default();
        if u > 1 {
            cfg.set_unroll(LoopId::from_path(&[0]), Unroll::Factor(u));
        }
        let g = GraphBuilder::new(func, &cfg).build();
        let mass: u64 = g
            .nodes
            .iter()
            .filter(|n| n.mnemonic == "load")
            .map(|n| n.invocations)
            .sum();
        assert_eq!(mass, 32);
    }
}

// ------------------------------------------------------------ oracle sanity

/// The oracle is monotone in unrolling for pipelined elementwise loops:
/// more parallel lanes never increase latency (with matching
/// partitioning), and never decrease area.
#[test]
fn oracle_monotone_in_unroll() {
    for u_pow in 0u32..4 {
        let u = 2u32.pow(u_pow);
        let src = "void k(float a[64], float b[64]) {
            for (int i = 0; i < 64; i++) { b[i] = a[i] + 1.0; }
        }";
        let module = hir::lower(&frontc::parse(src).unwrap()).unwrap();
        let func = module.function("k").unwrap();
        let l = LoopId::from_path(&[0]);

        let build = |factor: u32| {
            let mut cfg = PragmaConfig::default();
            cfg.set_pipeline(l.clone(), true);
            if factor > 1 {
                cfg.set_unroll(l.clone(), Unroll::Factor(factor));
                for arr in ["a", "b"] {
                    cfg.set_partition(
                        arr,
                        1,
                        ArrayPartition {
                            kind: PartitionKind::Cyclic,
                            factor,
                        },
                    );
                }
            }
            hlsim::evaluate(func, &cfg).unwrap().top
        };
        let base = build(1);
        let wide = build(u);
        assert!(wide.latency <= base.latency);
        assert!(wide.lut >= base.lut || u == 1);
    }
}

/// Design-space enumeration never yields duplicate fingerprints and
/// always contains the pragma-free design.
#[test]
fn design_space_well_formed() {
    for tc_pow in 2u32..6 {
        let tc = 2u64.pow(tc_pow);
        let inner = pragma::LoopShape::leaf(LoopId::from_path(&[0, 0]), tc);
        let root = pragma::LoopShape::nest(LoopId::from_path(&[0]), tc, true, vec![inner]);
        let space = DesignSpace::new("k", vec![root], vec![], vec![]);
        let configs = space.enumerate();
        let mut fps: Vec<u64> = configs.iter().map(|c| c.fingerprint()).collect();
        let len_before = fps.len();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), len_before);
        assert!(configs.iter().any(|c| c.is_trivial()));
    }
}
