#![warn(missing_docs)]
//! # hier-hls-qor
//!
//! Hierarchical source-to-post-route QoR prediction for FPGA HLS with graph
//! neural networks — a full Rust reproduction of the DATE 2024 paper
//! *"Hierarchical Source-to-Post-Route QoR Prediction in High-Level Synthesis
//! with GNNs"* (Gao, Zhao, Lin, Guo).
//!
//! This façade crate re-exports every subsystem of the workspace:
//!
//! * [`frontc`] — HLS-C front-end (lexer, parser, AST, semantic analysis),
//! * [`hir`] — structured loop-tree IR with affine access analysis,
//! * [`pragma`] — HLS pragma configurations and design-space enumeration,
//! * [`cdfg`] — pragma-aware control/data-flow graph construction,
//! * [`hlsim`] — simulated HLS + place-and-route flow (ground-truth oracle),
//! * [`tensor`] / [`gnn`] — autograd and GNN layers built from scratch,
//! * [`qor_core`] — the paper's hierarchical prediction methodology,
//! * [`dse`] — design-space exploration, Pareto/ADRS, and baselines,
//! * [`search`] — budgeted heuristic DSE (random / annealing / genetic)
//!   with resumable `.qorjob` snapshots (`qor-search`),
//! * [`kernels`] — the benchmark suite,
//! * [`serve`] — versioned model checkpoints plus a std-only cached
//!   batch-inference HTTP server (`qor-serve`) that also runs search
//!   jobs over `POST /dse`.
//!
//! # Quickstart
//!
//! ```
//! use hier_hls_qor::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Parse a kernel, pick a pragma configuration, and get ground-truth QoR
//! // from the simulated tool flow.
//! let program = frontc::parse(kernels::kernel_source("gemm").unwrap())?;
//! let module = hir::lower(&program)?;
//! let func = module.function("gemm").unwrap();
//! let config = PragmaConfig::default();
//! let report = hlsim::evaluate(func, &config)?;
//! assert!(report.top.latency > 0);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end model training and DSE runs.

pub use cdfg;
pub use dse;
pub use frontc;
pub use gnn;
pub use hir;
pub use hlsim;
pub use kernels;
pub use obs;
pub use par;
pub use pragma;
pub use qor_core;
pub use search;
pub use serve;
pub use tensor;

// One-stop pipeline entry points: lower a kernel, sweep its pragma space
// into a labeled dataset, train the hierarchy, explore — without importing
// the individual crates.
pub use dse::{explore, explore_with_session, ExploreOutcome};
pub use kernels::lower_kernel;
pub use qor_core::{
    generate, HierarchicalModel, LabeledDesigns, QorError, Session, TrainOptions, TrainStats,
};
pub use search::{SearchOptions, SearchRun, StrategyKind};
pub use serve::{load_model_file, save_model_file};

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use cdfg::{self, Graph, GraphBuilder};
    pub use dse::{self, explore, explore_with_session, Adrs, ExploreOutcome, ParetoFront};
    pub use frontc::{self, Program};
    pub use gnn::{self, ConvKind};
    pub use hir::{self, Function, Module};
    pub use hlsim::{self, Qor};
    pub use kernels::{self, lower_kernel};
    pub use par::{self};
    pub use pragma::{self, DesignSpace, PragmaConfig};
    pub use qor_core::{
        self, generate, CacheStats, HierarchicalModel, LabeledDesigns, QorError, Session,
        TrainOptions, TrainStats,
    };
    pub use search::{self, SearchOptions, SearchRun, SessionEval, StrategyKind};
    pub use serve::{self, load_model, load_model_file, save_model, save_model_file, Server};
    pub use tensor::{self, Matrix};
}
