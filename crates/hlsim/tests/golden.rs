//! Golden-value regression tests for the oracle.
//!
//! The entire experimental pipeline trains against `hlsim` labels, so
//! accidental changes to the cost model silently invalidate every recorded
//! result in EXPERIMENTS.md. These tests pin exact values for a few
//! representative designs; if a deliberate model change trips them, update
//! the constants *and* regenerate the experiment tables.

use pragma::{ArrayPartition, LoopId, PartitionKind, PragmaConfig, Unroll};

fn lower(src: &str, name: &str) -> hir::Function {
    hir::lower(&frontc::parse(src).unwrap())
        .unwrap()
        .function(name)
        .unwrap()
        .clone()
}

const DOT: &str = "void dot(float a[64], float b[64], float o[1]) {
    float acc = 0.0;
    for (int i = 0; i < 64; i++) { acc += a[i] * b[i]; }
    o[0] = acc;
}";

#[test]
fn golden_dot_baseline() {
    let f = lower(DOT, "dot");
    let q = hlsim::evaluate(&f, &PragmaConfig::default()).unwrap().top;
    assert_eq!(
        (q.latency, q.lut, q.ff, q.dsp),
        (706, 464, 720, 5),
        "baseline dot QoR drifted: {q}"
    );
}

#[test]
fn golden_dot_pipelined_unrolled() {
    let f = lower(DOT, "dot");
    let l = LoopId::from_path(&[0]);
    let mut cfg = PragmaConfig::default();
    cfg.set_pipeline(l.clone(), true);
    cfg.set_unroll(l, Unroll::Factor(4));
    for arr in ["a", "b"] {
        cfg.set_partition(
            arr,
            1,
            ArrayPartition {
                kind: PartitionKind::Cyclic,
                factor: 4,
            },
        );
    }
    let report = hlsim::evaluate(&f, &cfg).unwrap();
    let q = report.top;
    assert_eq!(
        (q.latency, q.lut, q.ff, q.dsp),
        (264, 1240, 2262, 20),
        "pipelined dot QoR drifted: {q}"
    );
    let lq = report.loops.get(&LoopId::from_path(&[0])).unwrap();
    // fadd recurrence (4 cycles) x 4 replicas = II 16
    assert_eq!(lq.ii, 16);
    assert_eq!(lq.trip_count, 16);
}

#[test]
fn golden_gemm_latency_ordering() {
    let f = kernels::lower_kernel("gemm").unwrap();
    let base = hlsim::evaluate(&f, &PragmaConfig::default()).unwrap().top;
    // exact pins for the two extremes of the space
    assert_eq!(base.latency, 46129, "gemm baseline latency drifted");

    let mut best = PragmaConfig::default();
    best.set_pipeline(LoopId::from_path(&[0, 0]), true);
    best.set_unroll(LoopId::from_path(&[0, 0, 0]), Unroll::Full);
    let piped = hlsim::evaluate(&f, &best).unwrap().top;
    assert!(
        piped.latency < base.latency / 10,
        "aggressive gemm config must be >10x faster ({} vs {})",
        piped.latency,
        base.latency
    );
}

#[test]
fn golden_analytic_ii_values() {
    let f = lower(DOT, "dot");
    let l = LoopId::from_path(&[0]);
    let mut cfg = PragmaConfig::default();
    cfg.set_pipeline(l.clone(), true);
    // fadd recurrence: 4 cycles, distance 1 -> II 4 without unrolling
    assert_eq!(hlsim::analytic_ii(&f, &cfg, &l), 4);
    cfg.set_unroll(l.clone(), Unroll::Factor(8));
    // chained accumulators: 8 x 4 = 32
    assert_eq!(hlsim::analytic_ii(&f, &cfg, &l), 32);
}

#[test]
fn golden_tool_runtime_scale() {
    let f = kernels::lower_kernel("gemm").unwrap();
    let q = hlsim::evaluate(&f, &PragmaConfig::default()).unwrap().top;
    let mins = hlsim::tool_runtime_secs(&q) / 60.0;
    // simulated Vivado time per small design: minutes, not seconds or days
    assert!((1.0..60.0).contains(&mins), "tool time drifted: {mins} min");
}
