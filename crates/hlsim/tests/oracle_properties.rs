//! Property tests of the ground-truth oracle: monotonicity, determinism,
//! and consistency of the analytic II with the full evaluation.
//!
//! Formerly `proptest`-based; the parameter domains are small and finite, so
//! the offline rewrite sweeps them exhaustively — strictly more coverage
//! than the sampled originals.

use pragma::{ArrayPartition, LoopId, PartitionKind, PragmaConfig, Unroll};

fn vadd_func(n: usize) -> hir::Function {
    let src = format!(
        "void vadd(float a[{n}], float b[{n}], float c[{n}]) {{\n  for (int i = 0; i < {n}; i++) {{ c[i] = a[i] + b[i]; }}\n}}"
    );
    hir::lower(&frontc::parse(&src).unwrap())
        .unwrap()
        .function("vadd")
        .unwrap()
        .clone()
}

/// Evaluation is a pure function of (kernel, config).
#[test]
fn oracle_is_deterministic() {
    for u_pow in 0u32..5 {
        for pipeline in [false, true] {
            let func = vadd_func(64);
            let l = LoopId::from_path(&[0]);
            let mut cfg = PragmaConfig::default();
            cfg.set_pipeline(l.clone(), pipeline);
            let u = 2u32.pow(u_pow);
            if u > 1 {
                cfg.set_unroll(l.clone(), Unroll::Factor(u));
            }
            let a = hlsim::evaluate(&func, &cfg).unwrap();
            let b = hlsim::evaluate(&func, &cfg).unwrap();
            assert_eq!(a.top, b.top);
            assert_eq!(a.loops.len(), b.loops.len());
        }
    }
}

/// The per-loop II recorded by the oracle equals the analytic formula.
#[test]
fn recorded_ii_matches_analytic_formula() {
    for u_pow in 0u32..4 {
        for part_pow in 0u32..4 {
            let func = vadd_func(64);
            let l = LoopId::from_path(&[0]);
            let mut cfg = PragmaConfig::default();
            cfg.set_pipeline(l.clone(), true);
            let u = 2u32.pow(u_pow);
            if u > 1 {
                cfg.set_unroll(l.clone(), Unroll::Factor(u));
            }
            let f = 2u32.pow(part_pow);
            if f > 1 {
                for arr in ["a", "b", "c"] {
                    cfg.set_partition(
                        arr,
                        1,
                        ArrayPartition {
                            kind: PartitionKind::Cyclic,
                            factor: f,
                        },
                    );
                }
            }
            let report = hlsim::evaluate(&func, &cfg).unwrap();
            let lq = report.loops.get(&l).expect("loop recorded");
            assert_eq!(lq.ii, hlsim::analytic_ii(&func, &cfg, &l));
        }
    }
}

/// More memory banks never increase the II of a port-bound pipeline.
#[test]
fn ii_monotone_in_banks() {
    for part_pow in 0u32..5 {
        let func = vadd_func(64);
        let l = LoopId::from_path(&[0]);
        let base_cfg = {
            let mut c = PragmaConfig::default();
            c.set_pipeline(l.clone(), true);
            c.set_unroll(l.clone(), Unroll::Factor(8));
            c
        };
        let banked = {
            let mut c = base_cfg.clone();
            let f = 2u32.pow(part_pow);
            if f > 1 {
                for arr in ["a", "b", "c"] {
                    c.set_partition(
                        arr,
                        1,
                        ArrayPartition {
                            kind: PartitionKind::Cyclic,
                            factor: f,
                        },
                    );
                }
            }
            c
        };
        let ii_base = hlsim::analytic_ii(&func, &base_cfg, &l);
        let ii_banked = hlsim::analytic_ii(&func, &banked, &l);
        assert!(ii_banked <= ii_base, "{ii_banked} > {ii_base}");
    }
}

/// Latency labels scale with problem size for the same configuration.
#[test]
fn latency_scales_with_trip_count() {
    for n_pow in 3u32..7 {
        let small = vadd_func(8);
        let big = vadd_func(1usize << n_pow);
        let cfg = PragmaConfig::default();
        let a = hlsim::evaluate(&small, &cfg).unwrap().top.latency;
        let b = hlsim::evaluate(&big, &cfg).unwrap().top.latency;
        assert!(b >= a, "{b} < {a}");
    }
}

#[test]
fn pre_route_bias_is_systematic() {
    // post-HLS LUT estimates must consistently exceed post-route values —
    // the bias GNN-DSE-style models inherit
    for k in kernels::all().iter().take(6) {
        let func = kernels::lower_kernel(k.name).unwrap();
        let report = hlsim::evaluate(&func, &PragmaConfig::default()).unwrap();
        assert!(
            report.pre_route.lut > report.top.lut,
            "{}: pre {} <= post {}",
            k.name,
            report.pre_route.lut,
            report.top.lut
        );
    }
}

#[test]
fn placement_variance_differs_across_kernels() {
    // the deterministic post-route jitter must vary per design, otherwise
    // it is a constant factor the models could fold away
    let ratios: Vec<f64> = kernels::all()
        .iter()
        .take(6)
        .map(|k| {
            let func = kernels::lower_kernel(k.name).unwrap();
            let r = hlsim::evaluate(&func, &PragmaConfig::default()).unwrap();
            r.top.lut as f64 / r.pre_route.lut as f64
        })
        .collect();
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(0.0, f64::max);
    assert!(max - min > 1e-3, "jitter collapsed: {ratios:?}");
}
