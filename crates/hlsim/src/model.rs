//! Hierarchical latency/resource model and post-route transform.

use std::collections::BTreeMap;
use std::fmt;

use hir::{array_uses, recurrences, Function, HirLoop, Item, OpId};
use pragma::{LoopId, PragmaConfig};

use crate::oplib::OpLibrary;
use crate::sched::{schedule_ops, PortBudget};
use crate::Qor;

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hlsim: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

/// Per-loop QoR detail recorded during evaluation.
///
/// These are the labels the hierarchical models train on: `GNN_p`/`GNN_np`
/// learn per-loop latency/resources, `GNN_g` learns the top-level totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopQor {
    /// Iteration latency (cycles of one iteration / one initiation).
    pub il: u64,
    /// Initiation interval (1 for non-pipelined loops' bookkeeping).
    pub ii: u64,
    /// Effective trip count after unrolling.
    pub trip_count: u64,
    /// Whether the region is pipelined.
    pub pipelined: bool,
    /// QoR of one hardware replica of this loop region.
    pub qor: Qor,
}

/// Full evaluation report: top-level QoR plus per-loop detail.
#[derive(Debug, Clone, PartialEq)]
pub struct QorReport {
    /// Post-route QoR of the whole function.
    pub top: Qor,
    /// Per-loop detail, keyed by loop id. Loops dissolved into a pipelined
    /// ancestor (fully unrolled) have no entry; flattened chains are keyed
    /// by the chain's outermost loop.
    pub loops: BTreeMap<LoopId, LoopQor>,
    /// Pre-route (post-HLS) resource estimates of the whole function.
    pub pre_route: Qor,
}

/// Runs the simulated C-to-bitstream flow.
///
/// Returns the post-route QoR (resources after the simulated place-and-route
/// transform; latency from the HLS-level schedule, as in the paper) together
/// with per-loop labels.
///
/// # Errors
///
/// Returns [`EvalError`] if the function contains no schedulable work.
pub fn evaluate(func: &Function, cfg: &PragmaConfig) -> Result<QorReport, EvalError> {
    let sp = obs::span("hlsim_evaluate");
    sp.attr("func", func.name.as_str());
    obs::metrics::counter_add("hlsim/evaluations", 1);
    let lib = OpLibrary::zcu102();
    let mut eval = Evaluator {
        func,
        cfg,
        lib: &lib,
        loops: BTreeMap::new(),
    };
    let (latency, raw) = eval.eval_function()?;
    let pre_route = pre_route_estimate(&raw, latency);
    let top = post_route_transform(func, cfg, raw, latency);
    Ok(QorReport {
        top,
        loops: eval.loops,
        pre_route,
    })
}

/// Post-HLS (pre-route) estimates — the labels a GNN-DSE-style model
/// trains on. Systematically biased relative to post-route truth.
///
/// # Errors
///
/// Same conditions as [`evaluate`].
pub fn evaluate_pre_route(func: &Function, cfg: &PragmaConfig) -> Result<Qor, EvalError> {
    Ok(evaluate(func, cfg)?.pre_route)
}

/// Models the wall-clock seconds a real Vitis HLS + Vivado run would take
/// for this design (used to report the paper's "DSE time with Vivado").
pub fn tool_runtime_secs(qor: &Qor) -> f64 {
    // baseline flow overhead + synthesis/PAR effort growing with area
    300.0 + 0.035 * qor.lut as f64 + 18.0 * qor.dsp as f64 + (qor.ff as f64).sqrt()
}

/// Analytic initiation interval of a loop under `cfg`, per the paper's
/// formula `II = max(II_rec, II_res)`.
///
/// This is what the *prediction* pipeline uses as a loop-level feature (II
/// is computed, not learned). It matches the oracle's II for the same
/// configuration.
pub fn analytic_ii(func: &Function, cfg: &PragmaConfig, loop_id: &LoopId) -> u64 {
    let lib = OpLibrary::zcu102();
    let eval = Evaluator {
        func,
        cfg,
        lib: &lib,
        loops: BTreeMap::new(),
    };
    let Some(l) = func.find_loop(loop_id) else {
        return 1;
    };
    let p = cfg.loop_pragma(loop_id);
    let tc = l.trip_count().max(1);
    let repl = p
        .unroll
        .factor(tc)
        .saturating_mul(eval.inner_full_unroll_factor(l));
    eval.ii_res(l, repl).max(eval.ii_rec(l, repl)).max(1)
}

// ------------------------------------------------------------------ internals

/// Raw (pre-place-and-route) resource accumulation.
#[derive(Debug, Clone, Copy, Default)]
struct Resources {
    lut: f64,
    ff: f64,
    dsp: f64,
}

impl Resources {
    fn add(&mut self, other: Resources) {
        self.lut += other.lut;
        self.ff += other.ff;
        self.dsp += other.dsp;
    }

    fn scaled(&self, k: f64) -> Resources {
        Resources {
            lut: self.lut * k,
            ff: self.ff * k,
            dsp: self.dsp * k,
        }
    }

    fn to_qor(self, latency: u64) -> Qor {
        Qor {
            latency,
            lut: self.lut.max(0.0).round() as u64,
            ff: self.ff.max(0.0).round() as u64,
            dsp: self.dsp.max(0.0).round() as u64,
        }
    }
}

struct Evaluator<'a> {
    func: &'a Function,
    cfg: &'a PragmaConfig,
    lib: &'a OpLibrary,
    loops: BTreeMap<LoopId, LoopQor>,
}

impl<'a> Evaluator<'a> {
    fn port_budget(&self) -> PortBudget {
        let mut ports = PortBudget::new();
        for a in &self.func.arrays {
            let banks = self.cfg.array_banks(&a.name, &a.dims) as u32;
            ports.set(a.name.clone(), 2 * banks);
        }
        ports
    }

    fn ports_of(&self, array: &str) -> u32 {
        self.func
            .array(array)
            .map(|a| 2 * self.cfg.array_banks(array, &a.dims) as u32)
            .unwrap_or(2)
    }

    fn eval_function(&mut self) -> Result<(u64, Resources), EvalError> {
        let top_ops = self.func.top_level_ops();
        let ports = self.port_budget();
        let mut latency = 0u64;
        let mut res = Resources::default();
        if !top_ops.is_empty() {
            let s = schedule_ops(self.func, &top_ops, self.lib, &ports);
            latency += s.latency;
            res.add(self.shared_resources(&top_ops, &s.peak_units));
        }
        let top_loops: Vec<&HirLoop> = self
            .func
            .body
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Loop(l) => Some(l),
                _ => None,
            })
            .collect();
        if top_ops.is_empty() && top_loops.is_empty() {
            return Err(EvalError {
                message: format!("function {:?} has no schedulable work", self.func.name),
            });
        }
        for l in top_loops {
            let lq = self.eval_loop(l)?;
            latency += lq.qor.latency;
            res.add(Resources {
                lut: lq.qor.lut as f64,
                ff: lq.qor.ff as f64,
                dsp: lq.qor.dsp as f64,
            });
        }
        // top-level control (AXI-lite interface + FSM skeleton)
        res.lut += 180.0;
        res.ff += 250.0;
        Ok((latency.max(1), res))
    }

    fn eval_loop(&mut self, l: &HirLoop) -> Result<LoopQor, EvalError> {
        let p = self.cfg.loop_pragma(&l.id);
        let tc = l.trip_count().max(1);
        let unroll = p.unroll.factor(tc);

        // flattened perfect chain pipelined at the innermost level
        if p.flatten && l.is_perfect_level() {
            if let Some(lq) = self.try_eval_flattened(l)? {
                self.loops.insert(l.id.clone(), lq);
                return Ok(lq);
            }
        }

        let lq = if p.pipeline {
            self.eval_pipelined_region(l, tc, unroll)?
        } else if p.unroll.is_full(tc) && l.children().next().is_none() {
            // fully unrolled leaf loop: pure spatial hardware, behaves like a
            // pipelined region with a single initiation
            let mut lq = self.eval_pipelined_region(l, tc, tc)?;
            lq.pipelined = false;
            lq
        } else {
            self.eval_sequential(l, tc, unroll)?
        };
        self.loops.insert(l.id.clone(), lq);
        Ok(lq)
    }

    /// `loop_flatten` chain: every level perfect, innermost pipelined.
    fn try_eval_flattened(&mut self, l: &HirLoop) -> Result<Option<LoopQor>, EvalError> {
        let mut total_tc = l.trip_count().max(1);
        let mut cur = l;
        loop {
            let children: Vec<&HirLoop> = cur.children().collect();
            if children.len() != 1 {
                return Ok(None);
            }
            let child = children[0];
            total_tc = total_tc.saturating_mul(child.trip_count().max(1));
            let cp = self.cfg.loop_pragma(&child.id);
            if child.children().next().is_none() {
                if !cp.pipeline {
                    return Ok(None);
                }
                // flattened single pipeline over the whole iteration space
                let mut lq = self.pipelined_qor(child, total_tc, 1)?;
                lq.trip_count = total_tc;
                return Ok(Some(lq));
            }
            if !cp.flatten || !child.is_perfect_level() {
                return Ok(None);
            }
            cur = child;
        }
    }

    /// A pipelined region: the loop body with all nested loops fully
    /// unrolled. `unroll` partially unrolls the pipelined loop itself.
    fn eval_pipelined_region(
        &mut self,
        l: &HirLoop,
        tc: u64,
        unroll: u64,
    ) -> Result<LoopQor, EvalError> {
        let initiations = tc.div_ceil(unroll.max(1));
        let mut lq = self.pipelined_qor(l, initiations, unroll)?;
        lq.trip_count = initiations;
        Ok(lq)
    }

    /// Core pipelined model: `initiations` pipeline starts of a region whose
    /// body is replicated `unroll` times (on top of full inner unrolling).
    fn pipelined_qor(
        &mut self,
        l: &HirLoop,
        initiations: u64,
        unroll: u64,
    ) -> Result<LoopQor, EvalError> {
        let ops = self.func.ops_in_loop(&l.id, true);
        let ports = self.port_budget();
        let sched = schedule_ops(self.func, &ops, self.lib, &ports);

        // replication of the whole region body
        let repl = unroll
            .max(1)
            .saturating_mul(self.inner_full_unroll_factor(l));

        // --- initiation interval ---
        let ii_res = self.ii_res(l, repl);
        let ii_rec = self.ii_rec(l, repl);
        let ii = ii_res.max(ii_rec).max(1);

        // --- iteration latency ---
        // issue-bound: all replicated memory accesses must stream through
        // the ports before the last result can be produced
        let issue_bound = self.issue_bound(l, repl);
        let acc_penalty = self.accumulation_penalty(l, repl);
        let il = sched.latency.max(issue_bound) + acc_penalty;

        let latency = il + ii * initiations.saturating_sub(1) + 2;

        // --- resources: no sharing in a pipeline ---
        let mut res = Resources::default();
        for &id in &ops {
            let c = self.lib.cost(&self.func.op(id).kind);
            res.add(Resources {
                lut: c.lut as f64,
                ff: c.ff as f64,
                dsp: c.dsp as f64,
            });
        }
        let mut res = res.scaled(repl as f64);
        // pipeline registers: live values crossing each stage boundary
        res.ff += 8.0 * (ops.len() as u64).saturating_mul(repl) as f64 + 6.0 * il as f64;
        res.lut += 15.0 + 2.0 * il as f64;
        res.add(self.memory_overhead(l, repl));

        Ok(LoopQor {
            il,
            ii,
            trip_count: initiations,
            pipelined: true,
            qor: res.to_qor(latency),
        })
    }

    /// Sequential (non-pipelined) loop with optional partial unrolling.
    fn eval_sequential(&mut self, l: &HirLoop, tc: u64, unroll: u64) -> Result<LoopQor, EvalError> {
        // body ops excluding nested loops
        let body_ops: Vec<OpId> = l
            .body
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Op(id) => Some(*id),
                _ => None,
            })
            .collect();
        let ports = self.port_budget();
        let sched = schedule_ops(self.func, &body_ops, self.lib, &ports);
        let mut body_latency = if body_ops.is_empty() {
            0
        } else {
            sched.latency
        };
        let mut res = self.shared_resources(&body_ops, &sched.peak_units);

        // children execute sequentially within one iteration
        let mut child_res = Resources::default();
        for child in l.children() {
            let lq = self.eval_loop(child)?;
            body_latency += lq.qor.latency;
            child_res.add(Resources {
                lut: lq.qor.lut as f64,
                ff: lq.qor.ff as f64,
                dsp: lq.qor.dsp as f64,
            });
        }

        // unrolled replicas run concurrently: latency per iteration group is
        // unchanged, hardware is replicated
        let iterations = tc.div_ceil(unroll.max(1));
        let loop_overhead = 2; // increment + exit check
        let latency = iterations
            .saturating_mul(body_latency.saturating_add(loop_overhead))
            .saturating_add(1);

        res.add(child_res);
        let mut res = res.scaled(unroll.max(1) as f64);
        // loop FSM
        let states = (body_latency + 2).min(64) as f64;
        res.lut += 20.0 + 2.5 * states;
        res.ff += 16.0 + (states.log2().max(1.0)) * 8.0;
        res.add(self.memory_overhead(l, unroll));

        Ok(LoopQor {
            il: body_latency.max(1),
            ii: 1,
            trip_count: iterations,
            pipelined: false,
            qor: res.to_qor(latency),
        })
    }

    /// Product of full trip counts of nested loops (the implicit body
    /// replication of a pipelined region).
    fn inner_full_unroll_factor(&self, l: &HirLoop) -> u64 {
        fn walk(l: &HirLoop) -> u64 {
            l.children()
                .map(|c| c.trip_count().max(1).saturating_mul(walk(c)))
                .fold(1u64, u64::saturating_mul)
        }
        walk(l)
    }

    /// `II_res = max_m ceil(Access_m / Ports_m)` over arrays.
    fn ii_res(&self, l: &HirLoop, repl: u64) -> u64 {
        array_uses(self.func, &l.id, true)
            .iter()
            .map(|u| {
                let ports = u64::from(self.ports_of(&u.array));
                let accesses = (u.accesses() as u64).saturating_mul(repl);
                accesses.div_ceil(ports.max(1))
            })
            .max()
            .unwrap_or(1)
    }

    /// `II_rec = max_p ceil(Delay_p / Distance_p)`, scaled by the replication
    /// of the accumulator chain.
    fn ii_rec(&self, l: &HirLoop, repl: u64) -> u64 {
        let mut worst = 1u64;
        for r in recurrences(self.func, &l.id) {
            let cycle_cycles: u64 = r
                .cycle
                .iter()
                .map(|&id| u64::from(self.lib.cost(&self.func.op(id).kind).cycles.max(1)))
                .sum::<u64>()
                .max(1);
            // replicated accumulators chain serially inside one initiation
            let delay = cycle_cycles.saturating_mul(repl);
            worst = worst.max(delay.div_ceil(u64::from(r.distance.max(1))));
        }
        worst
    }

    /// Cycles needed just to stream all memory accesses of one initiation.
    fn issue_bound(&self, l: &HirLoop, repl: u64) -> u64 {
        array_uses(self.func, &l.id, true)
            .iter()
            .map(|u| {
                let ports = u64::from(self.ports_of(&u.array));
                let accesses = (u.accesses() as u64).saturating_mul(repl);
                accesses.div_ceil(ports.max(1)) + 2 // + load latency
            })
            .max()
            .unwrap_or(1)
    }

    /// Serial dependency penalty of replicated accumulation chains.
    fn accumulation_penalty(&self, l: &HirLoop, repl: u64) -> u64 {
        if repl <= 1 {
            return 0;
        }
        recurrences(self.func, &l.id)
            .iter()
            .map(|r| {
                let cycle: u64 = r
                    .cycle
                    .iter()
                    .map(|&id| u64::from(self.lib.cost(&self.func.op(id).kind).cycles.max(1)))
                    .sum::<u64>()
                    .max(1);
                (repl - 1) * cycle
            })
            .max()
            .unwrap_or(0)
    }

    /// Shared-datapath resource model: each op class gets `peak_units`
    /// instances plus multiplexing overhead for the shared operands.
    fn shared_resources(
        &self,
        ops: &[OpId],
        peak_units: &BTreeMap<&'static str, u32>,
    ) -> Resources {
        let mut per_class: BTreeMap<&'static str, (u32, Resources)> = BTreeMap::new();
        for &id in ops {
            let kind = &self.func.op(id).kind;
            let c = self.lib.cost(kind);
            let e = per_class
                .entry(kind.mnemonic())
                .or_insert((0, Resources::default()));
            e.0 += 1;
            e.1 = Resources {
                lut: c.lut as f64,
                ff: c.ff as f64,
                dsp: c.dsp as f64,
            };
        }
        let mut out = Resources::default();
        for (mnemonic, (instances, unit_cost)) in per_class {
            let units = peak_units.get(mnemonic).copied().unwrap_or(1).max(1);
            let units = units.min(instances);
            out.add(unit_cost.scaled(f64::from(units)));
            // input muxes for every instance folded onto a shared unit
            let folded = instances.saturating_sub(units);
            out.lut += 6.0 * f64::from(folded);
        }
        out
    }

    /// Banking overhead: address decoders and output muxes per bank, plus
    /// full crossbars for dynamically indexed accesses.
    fn memory_overhead(&self, l: &HirLoop, repl: u64) -> Resources {
        let mut out = Resources::default();
        for u in array_uses(self.func, &l.id, true) {
            let banks = self
                .func
                .array(&u.array)
                .map(|a| self.cfg.array_banks(&u.array, &a.dims))
                .unwrap_or(1) as f64;
            out.lut += 9.0 * banks;
            out.ff += 4.0 * banks;
            if !u.all_affine {
                // dynamic index: every access needs a bank crossbar
                out.lut += 5.0 * banks * (u.accesses() as u64).saturating_mul(repl) as f64;
            }
        }
        out
    }
}

/// Simulated place-and-route: logic optimization, congestion, and a
/// deterministic placement variance seeded by the design fingerprint.
fn post_route_transform(func: &Function, cfg: &PragmaConfig, raw: Resources, latency: u64) -> Qor {
    let fp = cfg.fingerprint() ^ name_hash(&func.name);
    let jitter = |salt: u64| -> f64 {
        // hash -> [-1, 1]
        let h = splitmix(fp ^ salt);
        ((h % 2001) as f64 - 1000.0) / 1000.0
    };
    let mut lut = raw.lut * 0.88;
    // routing congestion inflates large designs
    if lut > 30_000.0 {
        lut *= 1.0 + (lut - 30_000.0) / 300_000.0;
    }
    lut *= 1.0 + 0.03 * jitter(0x1111);
    let ff = raw.ff * 0.94 * (1.0 + 0.02 * jitter(0x2222));
    let dsp = raw.dsp; // DSP counts survive PAR unchanged
    Qor {
        latency,
        lut: lut.max(1.0).round() as u64,
        ff: ff.max(1.0).round() as u64,
        dsp: dsp.max(0.0).round() as u64,
    }
}

/// Post-HLS estimate: HLS over-reports LUT/FF before optimization.
fn pre_route_estimate(raw: &Resources, latency: u64) -> Qor {
    Qor {
        latency,
        lut: (raw.lut * 1.22).round() as u64,
        ff: (raw.ff * 1.08).round() as u64,
        dsp: raw.dsp.round() as u64,
    }
}

fn name_hash(s: &str) -> u64 {
    obs::hash::fnv1a(s.as_bytes())
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pragma::Unroll;

    const GEMM: &str = r#"
void gemm(float a[16][16], float b[16][16], float c[16][16]) {
    for (int i = 0; i < 16; i++) {
        for (int j = 0; j < 16; j++) {
            float acc = 0.0;
            for (int k = 0; k < 16; k++) {
                acc += a[i][k] * b[k][j];
            }
            c[i][j] = acc;
        }
    }
}
"#;

    fn gemm() -> Function {
        hir::lower(&frontc::parse(GEMM).unwrap())
            .unwrap()
            .function("gemm")
            .unwrap()
            .clone()
    }

    #[test]
    fn baseline_evaluation_is_deterministic() {
        let f = gemm();
        let cfg = PragmaConfig::default();
        let a = evaluate(&f, &cfg).unwrap();
        let b = evaluate(&f, &cfg).unwrap();
        assert_eq!(a.top, b.top);
        assert!(a.top.latency > 16 * 16 * 16, "gemm must cost > 1 cycle/MAC");
        assert!(a.top.lut > 0 && a.top.ff > 0 && a.top.dsp > 0);
    }

    #[test]
    fn pipelining_reduces_latency() {
        let f = gemm();
        let base = evaluate(&f, &PragmaConfig::default()).unwrap();
        let mut cfg = PragmaConfig::default();
        cfg.set_pipeline(LoopId::from_path(&[0, 0, 0]), true);
        let piped = evaluate(&f, &cfg).unwrap();
        assert!(
            piped.top.latency < base.top.latency,
            "pipelined {} !< baseline {}",
            piped.top.latency,
            base.top.latency
        );
    }

    #[test]
    fn unrolling_trades_area_for_latency() {
        let f = gemm();
        let mut cfg = PragmaConfig::default();
        cfg.set_pipeline(LoopId::from_path(&[0, 0, 0]), true);
        let base = evaluate(&f, &cfg).unwrap();

        let mut cfg2 = cfg.clone();
        cfg2.set_unroll(LoopId::from_path(&[0, 0]), Unroll::Factor(4));
        let unrolled = evaluate(&f, &cfg2).unwrap();
        assert!(unrolled.top.lut > base.top.lut, "unrolling must add area");
    }

    #[test]
    fn partitioning_relieves_port_pressure() {
        // elementwise add: no recurrence, so II is purely port-bound
        let src = r#"
void vadd(float a[64], float b[64], float c[64]) {
    for (int i = 0; i < 64; i++) {
        c[i] = a[i] + b[i];
    }
}
"#;
        let m = hir::lower(&frontc::parse(src).unwrap()).unwrap();
        let f = m.function("vadd").unwrap();
        let l = LoopId::from_path(&[0]);
        let mut cfg = PragmaConfig::default();
        cfg.set_pipeline(l.clone(), true);
        cfg.set_unroll(l.clone(), Unroll::Factor(8));
        let no_part = evaluate(f, &cfg).unwrap();

        let mut cfg2 = cfg.clone();
        for arr in ["a", "b", "c"] {
            cfg2.set_partition(
                arr,
                1,
                pragma::ArrayPartition {
                    kind: pragma::PartitionKind::Cyclic,
                    factor: 8,
                },
            );
        }
        let part = evaluate(f, &cfg2).unwrap();
        assert!(
            part.top.latency < no_part.top.latency,
            "partitioning must reduce II-bound latency ({} vs {})",
            part.top.latency,
            no_part.top.latency
        );
    }

    #[test]
    fn recurrence_bounds_ii() {
        let f = gemm();
        let k = LoopId::from_path(&[0, 0, 0]);
        let mut cfg = PragmaConfig::default();
        cfg.set_pipeline(k.clone(), true);
        let report = evaluate(&f, &cfg).unwrap();
        let lq = report.loops.get(&k).expect("inner loop recorded");
        // fadd recurrence (4 cycles, distance 1) dominates the 2-port II_res
        assert!(lq.ii >= 4, "II {} must respect the fadd recurrence", lq.ii);
    }

    #[test]
    fn flattened_chain_recorded_once() {
        let src = r#"
void copy(float a[8][8], float b[8][8]) {
    for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 8; j++) {
            b[i][j] = a[i][j];
        }
    }
}
"#;
        let m = hir::lower(&frontc::parse(src).unwrap()).unwrap();
        let f = m.function("copy").unwrap();
        let mut cfg = PragmaConfig::default();
        cfg.set_flatten(LoopId::from_path(&[0]), true);
        cfg.set_flatten(LoopId::from_path(&[0, 0]), true);
        cfg.set_pipeline(LoopId::from_path(&[0, 0]), true);
        let report = evaluate(f, &cfg).unwrap();
        let lq = report.loops.get(&LoopId::from_path(&[0])).unwrap();
        assert!(lq.pipelined);
        assert_eq!(lq.trip_count, 64, "flattened TC = 8*8");
        // latency ~ II * 64 + IL: far below 64 * (IL + 2)
        assert!(report.top.latency < 64 * 10);
    }

    #[test]
    fn pre_route_differs_from_post_route() {
        let f = gemm();
        let report = evaluate(&f, &PragmaConfig::default()).unwrap();
        assert!(report.pre_route.lut > report.top.lut);
        assert_eq!(report.pre_route.latency, report.top.latency);
    }

    #[test]
    fn tool_runtime_grows_with_area() {
        let small = Qor {
            latency: 100,
            lut: 1000,
            ff: 1500,
            dsp: 4,
        };
        let big = Qor {
            latency: 100,
            lut: 80_000,
            ff: 120_000,
            dsp: 600,
        };
        assert!(tool_runtime_secs(&big) > tool_runtime_secs(&small) * 3.0);
        // a mid-size design lands in the tens of minutes, like the paper's
        // per-design average (26 days / 2796 designs ≈ 13 min)
        let mid = Qor {
            latency: 1000,
            lut: 15_000,
            ff: 20_000,
            dsp: 48,
        };
        let mins = tool_runtime_secs(&mid) / 60.0;
        assert!((5.0..60.0).contains(&mins), "unrealistic tool time {mins}");
    }

    #[test]
    fn empty_function_is_an_error() {
        let m = hir::lower(&frontc::parse("void f(int x) { return; }").unwrap()).unwrap();
        // `f` still has a Param op, so use a truly empty one via direct
        // construction is overkill — param-only functions schedule fine.
        let f = m.function("f").unwrap();
        assert!(evaluate(f, &PragmaConfig::default()).is_ok());
    }
}
