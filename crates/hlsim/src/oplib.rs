//! Operator cost library.
//!
//! The paper builds a per-operation latency/delay/resource library by
//! profiling micro-benchmarks on the target device. We encode a library with
//! the same shape, using figures representative of 32-bit operators on an
//! UltraScale+ device at a 200 MHz clock.

use hir::OpKind;

/// Cost of one hardware operator instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCost {
    /// Pipeline depth in clock cycles (0 = purely combinational).
    pub cycles: u32,
    /// Combinational delay contribution in nanoseconds.
    pub delay_ns: f32,
    /// LUT usage.
    pub lut: u32,
    /// Flip-flop usage.
    pub ff: u32,
    /// DSP blocks.
    pub dsp: u32,
}

impl OpCost {
    const fn new(cycles: u32, delay_ns: f32, lut: u32, ff: u32, dsp: u32) -> Self {
        OpCost {
            cycles,
            delay_ns,
            lut,
            ff,
            dsp,
        }
    }
}

/// The operator library plus clock configuration.
///
/// # Example
///
/// ```
/// use hlsim::OpLibrary;
/// let lib = OpLibrary::zcu102();
/// let fadd = lib.cost(&hir::OpKind::FAdd);
/// assert!(fadd.cycles >= 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OpLibrary {
    /// Clock period in nanoseconds.
    pub clock_ns: f32,
}

impl Default for OpLibrary {
    fn default() -> Self {
        Self::zcu102()
    }
}

impl OpLibrary {
    /// Library calibrated for the AMD UltraScale+ ZCU102 at 200 MHz (the
    /// paper's platform).
    pub fn zcu102() -> Self {
        OpLibrary { clock_ns: 5.0 }
    }

    /// Cost of one operator kind.
    ///
    /// Non-arithmetic operations (branch-like compares, phis, params) carry
    /// zero resource features, as in the paper's feature library.
    pub fn cost(&self, kind: &OpKind) -> OpCost {
        match kind {
            OpKind::Add | OpKind::Sub => OpCost::new(0, 1.6, 32, 0, 0),
            OpKind::Mul => OpCost::new(3, 2.4, 45, 96, 3),
            OpKind::Div | OpKind::Rem => OpCost::new(34, 3.1, 780, 930, 0),
            OpKind::FAdd | OpKind::FSub => OpCost::new(4, 3.2, 195, 324, 2),
            OpKind::FMul => OpCost::new(3, 2.9, 85, 151, 3),
            OpKind::FDiv => OpCost::new(28, 3.6, 760, 1430, 0),
            OpKind::Sqrt => OpCost::new(28, 3.4, 470, 880, 0),
            OpKind::Exp => OpCost::new(20, 3.4, 520, 930, 7),
            OpKind::Abs => OpCost::new(0, 0.8, 16, 0, 0),
            OpKind::Max | OpKind::Min => OpCost::new(0, 1.9, 48, 0, 0),
            OpKind::ICmp(_) => OpCost::new(0, 1.2, 0, 0, 0),
            OpKind::FCmp(_) => OpCost::new(1, 2.2, 0, 0, 0),
            OpKind::And | OpKind::Or | OpKind::Not => OpCost::new(0, 0.5, 0, 0, 0),
            OpKind::Select => OpCost::new(0, 1.0, 0, 0, 0),
            OpKind::Cast => OpCost::new(1, 1.8, 60, 80, 0),
            OpKind::Load { .. } => OpCost::new(2, 1.5, 0, 0, 0),
            OpKind::Store { .. } => OpCost::new(1, 1.5, 0, 0, 0),
            OpKind::Phi | OpKind::Param(_) => OpCost::new(0, 0.0, 0, 0, 0),
        }
    }

    /// Whether the operator is registered (occupies ≥ 1 full cycle) rather
    /// than chainable combinational logic.
    pub fn is_sequential(&self, kind: &OpKind) -> bool {
        self.cost(kind).cycles >= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_ops_cost_more_than_int() {
        let lib = OpLibrary::zcu102();
        assert!(lib.cost(&OpKind::FAdd).lut > lib.cost(&OpKind::Add).lut);
        assert!(lib.cost(&OpKind::FAdd).cycles > lib.cost(&OpKind::Add).cycles);
    }

    #[test]
    fn non_arithmetic_ops_have_zero_resources() {
        let lib = OpLibrary::zcu102();
        for kind in [
            OpKind::ICmp(hir::CmpOp::Lt),
            OpKind::Phi,
            OpKind::Param("x".into()),
        ] {
            let c = lib.cost(&kind);
            assert_eq!((c.lut, c.ff, c.dsp), (0, 0, 0), "{kind:?}");
        }
    }

    #[test]
    fn delays_fit_the_clock() {
        let lib = OpLibrary::zcu102();
        for kind in [
            OpKind::Add,
            OpKind::FMul,
            OpKind::FDiv,
            OpKind::Sqrt,
            OpKind::Select,
        ] {
            assert!(lib.cost(&kind).delay_ns <= lib.clock_ns, "{kind:?}");
        }
    }

    #[test]
    fn sequential_classification() {
        let lib = OpLibrary::zcu102();
        assert!(lib.is_sequential(&OpKind::FAdd));
        assert!(!lib.is_sequential(&OpKind::Add));
    }
}
