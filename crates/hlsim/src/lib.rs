#![warn(missing_docs)]
//! Simulated HLS + place-and-route flow (the ground-truth QoR oracle).
//!
//! The paper trains on labels produced by Vitis HLS 2022.1 + Vivado 2022.1
//! targeting a ZCU102. This crate substitutes that tool chain with a
//! deterministic analytic model that exercises the same phenomena the GNN
//! must learn:
//!
//! * **scheduling** — delay-chaining list scheduling of each loop body under
//!   memory-port constraints ([`schedule_ops`]),
//! * **initiation intervals** — `II = max(II_rec, II_res)` with recurrence
//!   cycles and banked memory ports (the paper's §III-B formula),
//! * **hierarchical latency** — pipelined loops cost `IL + II·(TC−1)`,
//!   non-pipelined loops cost `TC·(IL_body + overhead)`, composed bottom-up
//!   over the loop tree with unrolling replication,
//! * **resources** — functional-unit sharing for non-pipelined regions,
//!   no sharing plus pipeline registers for pipelined regions, FSM/mux/
//!   banking overheads,
//! * **post-route effects** — logic optimization, congestion-dependent LUT
//!   inflation and a deterministic, design-fingerprint-seeded placement
//!   variance (so post-route labels differ from post-HLS estimates in a
//!   structured way).
//!
//! Latency labels are HLS-level and resource labels are post-route, matching
//! where the paper reads each metric. [`evaluate_pre_route`] exposes the
//! post-HLS resource estimates used to train the GNN-DSE-style baseline.
//!
//! # Example
//!
//! ```
//! let src = r#"
//! void scale(float x[32], float y[32]) {
//!     for (int i = 0; i < 32; i++) { y[i] = x[i] * 2.0; }
//! }
//! "#;
//! let module = hir::lower(&frontc::parse(src)?)?;
//! let func = module.function("scale").unwrap();
//! let report = hlsim::evaluate(func, &pragma::PragmaConfig::default())?;
//! assert!(report.top.latency > 32); // at least one cycle per iteration
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod model;
mod oplib;
mod sched;

pub use model::{
    analytic_ii, evaluate, evaluate_pre_route, tool_runtime_secs, EvalError, LoopQor, QorReport,
};
pub use oplib::{OpCost, OpLibrary};
pub use sched::{schedule_ops, PortBudget, ScheduleResult};

/// Post-route quality-of-results of a design (or of one loop region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Qor {
    /// Total latency in clock cycles.
    pub latency: u64,
    /// Look-up tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// DSP blocks.
    pub dsp: u64,
}

impl std::fmt::Display for Qor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cycles, {} LUT, {} FF, {} DSP",
            self.latency, self.lut, self.ff, self.dsp
        )
    }
}

impl Qor {
    /// Element-wise sum (used when composing loop regions).
    pub fn combine_resources(&self, other: &Qor) -> Qor {
        Qor {
            latency: self.latency, // latency composes separately
            lut: self.lut + other.lut,
            ff: self.ff + other.ff,
            dsp: self.dsp + other.dsp,
        }
    }

    /// The four metrics as an array `[latency, lut, ff, dsp]`.
    pub fn as_array(&self) -> [u64; 4] {
        [self.latency, self.lut, self.ff, self.dsp]
    }
}
