//! Delay-chaining list scheduler for one loop-body iteration.

use std::collections::{BTreeMap, HashMap};

use hir::{Function, OpId, OpKind, Operand};

use crate::oplib::OpLibrary;

/// Per-array memory-port budget (reads+writes issuable per cycle).
///
/// A bank of BRAM is dual-ported, so `ports = 2 × banks`.
#[derive(Debug, Clone, Default)]
pub struct PortBudget {
    ports: BTreeMap<String, u32>,
}

impl PortBudget {
    /// Creates an empty budget (arrays default to one dual-ported bank).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the port count of one array.
    pub fn set(&mut self, array: impl Into<String>, ports: u32) {
        self.ports.insert(array.into(), ports.max(1));
    }

    /// Ports available for `array` per cycle.
    pub fn ports(&self, array: &str) -> u32 {
        self.ports.get(array).copied().unwrap_or(2)
    }
}

/// Result of scheduling one iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleResult {
    /// Iteration latency in cycles (schedule makespan).
    pub latency: u64,
    /// Peak number of simultaneously busy units per op mnemonic — the
    /// minimum unit count needed without slowing the schedule (used for the
    /// resource-sharing model).
    pub peak_units: BTreeMap<&'static str, u32>,
    /// Number of scheduled ops.
    pub num_ops: usize,
}

/// Schedules `ops` (one loop-body iteration) with operator chaining and
/// memory-port constraints.
///
/// * Combinational ops chain within a clock period; when the accumulated
///   delay exceeds the period a new cycle starts.
/// * Sequential ops (cycles ≥ 1) register their inputs and occupy their
///   pipeline depth.
/// * Loads/stores to the same array are limited to its port budget per
///   cycle; excess accesses are pushed to later cycles (list scheduling in
///   dependence order).
///
/// Operands produced outside `ops` (loop-invariant values, phis of enclosing
/// loops) are treated as available at time zero.
pub fn schedule_ops(
    func: &Function,
    ops: &[OpId],
    lib: &OpLibrary,
    ports: &PortBudget,
) -> ScheduleResult {
    // finish[op] = (cycle, delay-within-cycle) at which the result is ready
    let mut finish: HashMap<OpId, (u64, f32)> = HashMap::new();
    // per-(array, cycle) port usage
    let mut port_use: HashMap<(String, u64), u32> = HashMap::new();
    // per-(mnemonic, cycle) busy units, for the sharing model
    let mut busy: HashMap<(&'static str, u64), u32> = HashMap::new();
    let mut peak_units: BTreeMap<&'static str, u32> = BTreeMap::new();
    let in_set: std::collections::HashSet<OpId> = ops.iter().copied().collect();
    let mut makespan = 0u64;

    for &id in ops {
        let op = func.op(id);
        let cost = lib.cost(&op.kind);

        // earliest start from data dependencies
        let mut ready_cycle = 0u64;
        let mut ready_delay = 0.0f32;
        for operand in &op.operands {
            if let Operand::Value(v) = operand {
                if !in_set.contains(v) {
                    continue; // external value: available at t=0
                }
                if let Some(&(c, d)) = finish.get(v) {
                    if c > ready_cycle || (c == ready_cycle && d > ready_delay) {
                        ready_cycle = c;
                        ready_delay = d;
                    }
                }
            }
        }
        if let Some(c) = op.ctrl {
            if in_set.contains(&c) {
                if let Some(&(cc, cd)) = finish.get(&c) {
                    if cc > ready_cycle || (cc == ready_cycle && cd > ready_delay) {
                        ready_cycle = cc;
                        ready_delay = cd;
                    }
                }
            }
        }

        let (mut start_cycle, mut start_delay) = (ready_cycle, ready_delay);
        if cost.cycles >= 1 {
            // sequential op: inputs are registered; if anything was consumed
            // mid-cycle, the op starts at the next cycle boundary
            if start_delay > 0.0 {
                start_cycle += 1;
            }
            start_delay = 0.0;
        } else {
            // combinational op: chain if it fits in the remaining budget
            if start_delay + cost.delay_ns > lib.clock_ns {
                start_cycle += 1;
                start_delay = 0.0;
            }
        }

        // memory-port constraint: find the first cycle with a free port
        if let OpKind::Load { array, .. } | OpKind::Store { array, .. } = &op.kind {
            let budget = ports.ports(array);
            loop {
                let key = (array.clone(), start_cycle);
                let used = port_use.get(&key).copied().unwrap_or(0);
                if used < budget {
                    port_use.insert(key, used + 1);
                    break;
                }
                start_cycle += 1;
                start_delay = 0.0;
            }
        }

        // record unit occupancy (for sharing): a unit is busy for
        // max(1, cycles) cycles from its start
        let mnemonic = op.kind.mnemonic();
        let occupancy = u64::from(cost.cycles.max(1));
        for c in start_cycle..start_cycle + occupancy {
            let e = busy.entry((mnemonic, c)).or_insert(0);
            *e += 1;
            let p = peak_units.entry(mnemonic).or_insert(0);
            *p = (*p).max(*e);
        }

        let (end_cycle, end_delay) = if cost.cycles >= 1 {
            (start_cycle + u64::from(cost.cycles), 0.0)
        } else {
            (start_cycle, start_delay + cost.delay_ns)
        };
        finish.insert(id, (end_cycle, end_delay));
        let op_makespan = end_cycle + u64::from(end_delay > 0.0);
        makespan = makespan.max(op_makespan);
    }

    ScheduleResult {
        latency: makespan.max(1),
        peak_units,
        num_ops: ops.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pragma::LoopId;

    fn lower_loop_ops(src: &str, name: &str) -> (Function, Vec<OpId>) {
        let module = hir::lower(&frontc::parse(src).unwrap()).unwrap();
        let f = module.function(name).unwrap().clone();
        let ops = f.ops_in_loop(&LoopId::from_path(&[0]), true);
        (f, ops)
    }

    #[test]
    fn chained_int_adds_fit_one_cycle() {
        // three chained int adds: 3 * 1.6ns < 5ns clock => 1 cycle... the
        // third add exceeds 4.8ns? 3*1.6 = 4.8 <= 5.0 so still one cycle
        let (f, ops) = lower_loop_ops(
            "void k(int a, int b, int o[4]) { for (int i = 0; i < 4; i++) { o[i] = a + b + a + i; } }",
            "k",
        );
        let lib = OpLibrary::zcu102();
        let res = schedule_ops(&f, &ops, &lib, &PortBudget::new());
        // adds chain in cycle 0; the store takes 1 more cycle
        assert!(res.latency <= 3, "latency {} too high", res.latency);
    }

    #[test]
    fn dependent_fmul_fadd_stack_their_depths() {
        let (f, ops) = lower_loop_ops(
            "void k(float a[4], float b[4], float o[4]) { for (int i = 0; i < 4; i++) { o[i] = a[i] * b[i] + a[i]; } }",
            "k",
        );
        let lib = OpLibrary::zcu102();
        let res = schedule_ops(&f, &ops, &lib, &PortBudget::new());
        // load(2) -> fmul(3) -> fadd(4) -> store(1): at least 10 cycles
        assert!(res.latency >= 10, "latency {} too low", res.latency);
    }

    #[test]
    fn port_pressure_serializes_loads() {
        // four independent copies from the same array: bandwidth-bound
        let (f, ops) = lower_loop_ops(
            "void k(float a[16], float o[4], float p[4], float q[4], float r[4]) { for (int i = 0; i < 4; i++) { o[i] = a[i]; p[i] = a[i + 4]; q[i] = a[i + 8]; r[i] = a[i + 12]; } }",
            "k",
        );
        let lib = OpLibrary::zcu102();
        let mut narrow_budget = PortBudget::new();
        narrow_budget.set("a", 1);
        let narrow = schedule_ops(&f, &ops, &lib, &narrow_budget);
        let mut wide_budget = PortBudget::new();
        wide_budget.set("a", 8);
        let wide = schedule_ops(&f, &ops, &lib, &wide_budget);
        assert!(
            narrow.latency > wide.latency,
            "more ports must shorten the schedule ({} vs {})",
            narrow.latency,
            wide.latency
        );
    }

    #[test]
    fn peak_units_reflect_parallelism() {
        let (f, ops) = lower_loop_ops(
            "void k(float a[8], float o[8]) { for (int i = 0; i < 8; i++) { o[i] = a[i] * 2.0 * 3.0; } }",
            "k",
        );
        let lib = OpLibrary::zcu102();
        let res = schedule_ops(&f, &ops, &lib, &PortBudget::new());
        assert!(res.peak_units.contains_key("fmul"));
        assert!(res.peak_units["fmul"] >= 1);
    }
}
