//! Hand-computed expected outputs pinning the reference interpreter's
//! semantics on tiny fixed programs. These must hold before the
//! interpreter is trusted as a differential oracle for the lowering.

use hir::Memory;

fn run(src: &str, top: &str, mem: &mut Memory) -> interp::ExecStats {
    let program = frontc::parse(src).expect("parse");
    interp::execute(program.function(top).expect("top fn"), mem).expect("execute")
}

#[test]
fn dot_product_hand_computed() {
    let src = "void dot(float a[4], float b[4], float out[1]) {
        float acc = 0.0;
        for (int i = 0; i < 4; i++) { acc += a[i] * b[i]; }
        out[0] = acc;
    }";
    let mut mem = Memory::new();
    mem.set("a", vec![1.0, 2.0, 3.0, 4.0]);
    mem.set("b", vec![0.5, -1.0, 2.0, 0.25]);
    mem.set("out", vec![0.0]);
    let stats = run(src, "dot", &mut mem);
    // 1*0.5 - 2 + 6 + 1 = 5.5
    assert_eq!(mem.get("out").unwrap(), &[5.5]);
    assert_eq!(stats.loop_iterations.get("L0"), Some(&4));
    assert_eq!(stats.loads, 8);
    assert_eq!(stats.stores, 1);
}

#[test]
fn two_level_stencil_hand_computed() {
    let src = "void st(float src[4][4], float dst[4][4]) {
        for (int i = 0; i < 2; i++) {
            for (int j = 0; j < 2; j++) {
                dst[i][j] = src[i][j] + src[i + 1][j] + src[i][j + 1];
            }
        }
    }";
    let mut mem = Memory::new();
    mem.set("src", (0..16).map(|v| v as f64).collect()); // src[i][j] = 4i + j
    mem.set("dst", vec![0.0; 16]);
    let stats = run(src, "st", &mut mem);
    let mut expected = vec![0.0; 16];
    expected[0] = 5.0; //  0 + 4 + 1
    expected[1] = 8.0; //  1 + 5 + 2
    expected[4] = 17.0; // 4 + 8 + 5
    expected[5] = 20.0; // 5 + 9 + 6
    assert_eq!(mem.get("dst").unwrap(), expected.as_slice());
    assert_eq!(stats.loop_iterations.get("L0"), Some(&2));
    // nested loop records total iterations across the whole nest
    assert_eq!(stats.loop_iterations.get("L0.L0"), Some(&4));
}

#[test]
fn conditional_reduction_hand_computed() {
    let src = "void cr(float a[6], float out[1]) {
        float acc = 0.0;
        for (int i = 0; i < 6; i++) {
            if (a[i] > 0.0) { acc += a[i]; } else { acc -= 1.0; }
        }
        out[0] = acc;
    }";
    let mut mem = Memory::new();
    mem.set("a", vec![1.0, -2.0, 3.0, 0.0, 5.0, -1.0]);
    mem.set("out", vec![0.0]);
    run(src, "cr", &mut mem);
    // +1 -1 +3 -1 +5 -1 = 6
    assert_eq!(mem.get("out").unwrap(), &[6.0]);
}

#[test]
fn integer_semantics_pinned() {
    // the shared int-op contract: truncation toward zero, x/0 == x%0 == 0,
    // Rust remainder sign, float→int coercion truncates
    let src = "void isem(int out[8], int n) {
        int a = 7;
        int b = 2;
        out[0] = a / b;
        out[1] = a % b;
        out[2] = a / 0;
        out[3] = 0 - 7 / 2;
        out[4] = 5 % 0;
        out[5] = a > b ? 9 : 8;
        int c = 2.9;
        out[6] = c;
        out[7] = 7.9;
    }";
    let mut mem = Memory::new();
    mem.set("out", vec![-1.0; 8]);
    mem.scalars.insert("n".into(), 0.0);
    run(src, "isem", &mut mem);
    assert_eq!(
        mem.get("out").unwrap(),
        &[3.0, 1.0, 0.0, -3.0, 0.0, 9.0, 2.0, 7.0]
    );
}

#[test]
fn float_div_by_zero_is_zero() {
    let src = "void fz(float out[1], float x) { out[0] = x / 0.0; }";
    let mut mem = Memory::new();
    mem.set("out", vec![9.0]);
    mem.scalars.insert("x".into(), 3.5);
    run(src, "fz", &mut mem);
    assert_eq!(mem.get("out").unwrap(), &[0.0]);
}

#[test]
fn out_of_bounds_store_is_typed_error() {
    let src = "void oob(float a[4], int n) { a[n] = 1.0; }";
    let program = frontc::parse(src).unwrap();
    let mut mem = Memory::new();
    mem.set("a", vec![0.0; 4]);
    mem.scalars.insert("n".into(), 7.0);
    let err = interp::execute(program.function("oob").unwrap(), &mut mem).unwrap_err();
    assert!(err.message.contains("out of bounds"), "{err}");
}

#[test]
fn seeded_memory_matches_hir_pattern() {
    let src = "void k(float a[8], int n, float x) { a[0] = x; }";
    let program = frontc::parse(src).unwrap();
    let module = hir::lower(&program).unwrap();
    let ast_mem = interp::seeded_memory(program.function("k").unwrap(), 42);
    let hir_mem = Memory::seeded_for(module.function("k").unwrap(), 42);
    // array contents agree element-for-element with the HIR-side seeding
    assert_eq!(ast_mem.get("a").unwrap(), hir_mem.get("a").unwrap());
    // scalars are seeded (the HIR-side helper leaves them empty)
    assert!(ast_mem.scalars.contains_key("n"));
    assert_eq!(
        ast_mem.scalars["n"].trunc(),
        ast_mem.scalars["n"],
        "int params get integral values"
    );
}
