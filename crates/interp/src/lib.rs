#![warn(missing_docs)]
//! AST-level reference interpreter for HLS-C.
//!
//! Executes a parsed [`frontc::Program`] directly — *without* lowering — on
//! concrete [`hir::Memory`] state. Its sole purpose is **differential
//! testing**: the `frontc → hir → cdfg` pipeline is trusted only because
//! running the lowered HIR through `hir::execute` produces byte-identical
//! memory to running the source AST through this crate, across a large
//! generated corpus (`kernels::synthetic_corpus`).
//!
//! # Semantics contract
//!
//! The interpreter mirrors the lowering's value model exactly, because the
//! lowering *is* the semantics being validated:
//!
//! - every value is an `f64`; `int` expressions carry integers in `f64`
//! - integer `+ - * / %` go through [`hir::int_binop`]: operands truncate
//!   toward zero, add/sub/mul saturate at `i64` range, `x/0 == x%0 == 0`
//! - `%` is always an integer operation, even on float operands (the
//!   lowering has no float-rem op kind)
//! - float `x / 0.0` evaluates to `0.0` (matching `OpKind::FDiv`)
//! - `sqrtf` clamps its argument to `>= 0` (matching `OpKind::Sqrt`)
//! - coercion to `int` truncates toward zero; coercion to `float` is a
//!   no-op on the stored `f64`
//! - plain assignment *rebinds* the variable to the right-hand side's value
//!   and static type (the lowering does not insert a cast there)
//! - a ternary evaluates **both** arms (the lowering emits a `Select` whose
//!   inputs are both computed), so an out-of-bounds read in either arm is
//!   an error
//! - `return` evaluates its operand and **continues** — the lowering treats
//!   it as a value computation, not control flow
//! - `&&` / `||` evaluate both sides (no short-circuit in the dataflow)
//!
//! `if` statements are executed by taking the branch the condition selects.
//! The lowering if-converts instead (both branches run, predicated), but
//! the architectures agree on observable state: predicated-off stores are
//! skipped, speculative loads are discarded, and scalar merges pick the
//! taken branch's value via `Select`.
//!
//! # Example
//!
//! ```
//! let src = "void dbl(float a[4]) { for (int i = 0; i < 4; i++) { a[i] = a[i] + a[i]; } }";
//! let program = frontc::parse(src)?;
//! let mut mem = hir::Memory::new();
//! mem.set("a", vec![1.0, 2.0, 3.0, 4.0]);
//! let stats = interp::execute(program.function("dbl").unwrap(), &mut mem)?;
//! assert_eq!(mem.get("a").unwrap(), &[2.0, 4.0, 6.0, 8.0]);
//! assert_eq!(stats.loop_iterations.get("L0"), Some(&4));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use frontc::{AssignOp, BinOp, Expr, FunctionDef, LValue, Stmt, Type, UnOp};
use hir::Memory;

/// Reference-interpretation failure (missing arrays, out-of-bounds
/// accesses, malformed programs that slipped past sema).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    /// Description.
    pub message: String,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ast-interp: {}", self.message)
    }
}

impl std::error::Error for InterpError {}

/// Execution statistics, used to cross-check static loop metadata
/// (trip counts, nest structure) against observed behavior.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total iterations executed per loop, keyed by the loop's structural
    /// path rendered like [`pragma::LoopId`] (`"L0"`, `"L0.L1"`, …) so the
    /// keys line up with `hir` loop ids. A loop nested under an `N`-trip
    /// parent that itself trips `M` times records `N * M`.
    pub loop_iterations: BTreeMap<String, u64>,
    /// Array loads executed (taken branches only).
    pub loads: u64,
    /// Array stores executed (taken branches only).
    pub stores: u64,
}

/// Builds deterministic memory for `func`: arrays get the exact pattern
/// [`hir::Memory::seeded_for`] uses, scalar parameters get values derived
/// from the same hash (truncated for `int` params).
pub fn seeded_memory(func: &FunctionDef, seed: u64) -> Memory {
    let mut mem = Memory::new();
    for (pi, p) in func.params.iter().enumerate() {
        if p.is_array() {
            let n = p.num_elements();
            let data = (0..n)
                .map(|i| {
                    let x = (i as u64).wrapping_mul(2654435761).wrapping_add(seed);
                    ((x % 1000) as f64) / 100.0 - 4.0
                })
                .collect();
            mem.set(p.name.clone(), data);
        } else {
            let x = (pi as u64 + 1)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(seed);
            let v = ((x % 1000) as f64) / 100.0 - 4.0;
            let v = if p.ty == Type::Int { v.trunc() } else { v };
            mem.scalars.insert(p.name.clone(), v);
        }
    }
    mem
}

/// Executes `func` against `mem`, mutating array contents in place.
///
/// # Errors
///
/// Returns [`InterpError`] on out-of-bounds accesses on executed paths,
/// missing arrays, or name-resolution failures (the latter indicate the
/// program was never checked by `frontc::parse`'s sema pass).
pub fn execute(func: &FunctionDef, mem: &mut Memory) -> Result<ExecStats, InterpError> {
    let mut ctx = Ctx {
        scopes: vec![HashMap::new()],
        stats: ExecStats::default(),
    };
    for p in &func.params {
        let binding = if p.is_array() {
            Binding::Array(p.dims.clone(), p.ty)
        } else {
            // parameter values flow in raw (the lowering's Param op does
            // not cast), typed as declared
            let v = mem.scalars.get(&p.name).copied().unwrap_or(0.0);
            Binding::Scalar(v, p.ty)
        };
        ctx.scopes[0].insert(p.name.clone(), binding);
    }
    ctx.run_block(&func.body, mem, &[])?;
    Ok(ctx.stats)
}

#[derive(Clone)]
enum Binding {
    /// Current value and *static* type (tracked because coercions depend
    /// on it, mirroring the lowering's `Binding::Scalar`).
    Scalar(f64, Type),
    /// Array parameter dimensions and element type.
    Array(Vec<usize>, Type),
}

struct Ctx {
    scopes: Vec<HashMap<String, Binding>>,
    stats: ExecStats,
}

impl Ctx {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, InterpError> {
        Err(InterpError {
            message: message.into(),
        })
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn set_scalar(&mut self, name: &str, value: f64, ty: Type) {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(b) = scope.get_mut(name) {
                *b = Binding::Scalar(value, ty);
                return;
            }
        }
        self.scopes
            .last_mut()
            .expect("scope stack non-empty")
            .insert(name.to_string(), Binding::Scalar(value, ty));
    }

    /// `loop_path` is the structural path of enclosing loops (indices of
    /// `For` statements per block, the same numbering the lowering uses
    /// for `pragma::LoopId`).
    fn run_block(
        &mut self,
        stmts: &[Stmt],
        mem: &mut Memory,
        loop_path: &[u16],
    ) -> Result<(), InterpError> {
        self.scopes.push(HashMap::new());
        let result = self.run_block_inner(stmts, mem, loop_path);
        self.scopes.pop();
        result
    }

    fn run_block_inner(
        &mut self,
        stmts: &[Stmt],
        mem: &mut Memory,
        loop_path: &[u16],
    ) -> Result<(), InterpError> {
        let mut loop_counter: u16 = 0;
        for stmt in stmts {
            match stmt {
                Stmt::Decl { name, ty, init } => {
                    let value = match init {
                        Some(e) => {
                            let (v, t) = self.eval(e, mem)?;
                            coerce(v, t, *ty)
                        }
                        None => 0.0,
                    };
                    self.scopes
                        .last_mut()
                        .expect("scope stack non-empty")
                        .insert(name.clone(), Binding::Scalar(value, *ty));
                }
                Stmt::Assign { target, op, value } => {
                    self.run_assign(target, *op, value, mem)?;
                }
                Stmt::For(l) => {
                    let mut path = loop_path.to_vec();
                    path.push(loop_counter);
                    loop_counter += 1;
                    let key = render_path(&path);
                    let mut i = l.start;
                    while i < l.bound {
                        *self.stats.loop_iterations.entry(key.clone()).or_insert(0) += 1;
                        self.scopes.push(HashMap::new());
                        self.scopes
                            .last_mut()
                            .expect("scope stack non-empty")
                            .insert(l.var.clone(), Binding::Scalar(i as f64, Type::Int));
                        let r = self.run_block_inner(&l.body, mem, &path);
                        self.scopes.pop();
                        r?;
                        i += l.step;
                    }
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let (c, _) = self.eval(cond, mem)?;
                    if c != 0.0 {
                        self.run_block(then_body, mem, loop_path)?;
                    } else {
                        self.run_block(else_body, mem, loop_path)?;
                    }
                }
                Stmt::Return(e) => {
                    // the lowering computes the value and keeps going;
                    // evaluate for effects-on-errors and continue
                    if let Some(e) = e {
                        self.eval(e, mem)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn run_assign(
        &mut self,
        target: &LValue,
        op: AssignOp,
        value: &Expr,
        mem: &mut Memory,
    ) -> Result<(), InterpError> {
        match target {
            LValue::Var(name) => {
                let (rv, rt) = self.eval(value, mem)?;
                let (fv, ft) = if op == AssignOp::Set {
                    (rv, rt)
                } else {
                    let (cur, ct) = match self.lookup(name) {
                        Some(Binding::Scalar(v, t)) => (*v, *t),
                        _ => return self.err(format!("unknown scalar {name:?}")),
                    };
                    apply_compound(op, cur, ct, rv, rt)
                };
                self.set_scalar(name, fv, ft);
                Ok(())
            }
            LValue::ArrayElem { array, indices } => {
                let (rv, rt) = self.eval(value, mem)?;
                let (dims, ety) = self.array_info(array)?;
                let idx = self.flat_index(array, &dims, indices, mem)?;
                let stored = if op == AssignOp::Set {
                    coerce(rv, rt, ety)
                } else {
                    let cur = self.load(array, idx, mem)?;
                    let (v, t) = apply_compound(op, cur, ety, rv, rt);
                    coerce(v, t, ety)
                };
                let buf = mem.get_mut(array).ok_or_else(|| InterpError {
                    message: format!("array {array:?} missing"),
                })?;
                if idx >= buf.len() {
                    return self.err(format!(
                        "store {array}[{idx}] out of bounds ({})",
                        buf.len()
                    ));
                }
                buf[idx] = stored;
                self.stats.stores += 1;
                Ok(())
            }
        }
    }

    /// Dimensions and element type of an array binding.
    fn array_info(&self, name: &str) -> Result<(Vec<usize>, Type), InterpError> {
        match self.lookup(name) {
            Some(Binding::Array(dims, ety)) => Ok((dims.clone(), *ety)),
            _ => self.err(format!("{name:?} is not an array")),
        }
    }

    fn load(&mut self, array: &str, idx: usize, mem: &Memory) -> Result<f64, InterpError> {
        let buf = mem.get(array).ok_or_else(|| InterpError {
            message: format!("array {array:?} missing"),
        })?;
        if idx >= buf.len() {
            return self.err(format!("load {array}[{idx}] out of bounds ({})", buf.len()));
        }
        self.stats.loads += 1;
        Ok(buf[idx])
    }

    fn flat_index(
        &mut self,
        _array: &str,
        dims: &[usize],
        indices: &[Expr],
        mem: &Memory,
    ) -> Result<usize, InterpError> {
        let mut flat: i128 = 0;
        for (d, idx) in indices.iter().enumerate() {
            let (v, _) = self.eval_in(idx, mem)?;
            let ix = v.trunc() as i64;
            let n = dims.get(d).copied().unwrap_or(1) as i128;
            flat = flat * n + ix as i128;
        }
        if flat < 0 || flat > usize::MAX as i128 {
            return Ok(usize::MAX);
        }
        Ok(flat as usize)
    }

    fn eval(&mut self, e: &Expr, mem: &Memory) -> Result<(f64, Type), InterpError> {
        self.eval_in(e, mem)
    }

    fn eval_in(&mut self, e: &Expr, mem: &Memory) -> Result<(f64, Type), InterpError> {
        match e {
            Expr::IntLit(v) => Ok((*v as f64, Type::Int)),
            Expr::FloatLit(v) => Ok((*v, Type::Float)),
            Expr::Var(name) => match self.lookup(name) {
                Some(Binding::Scalar(v, t)) => Ok((*v, *t)),
                Some(Binding::Array(..)) => self.err(format!("array {name:?} used as scalar")),
                None => self.err(format!("unknown variable {name:?}")),
            },
            Expr::ArrayElem { array, indices } => {
                let (dims, ety) = self.array_info(array)?;
                let idx = self.flat_index(array, &dims, indices, mem)?;
                let v = self.load(array, idx, mem)?;
                Ok((v, ety))
            }
            Expr::Binary { op, lhs, rhs } => {
                let (a, at) = self.eval_in(lhs, mem)?;
                let (b, bt) = self.eval_in(rhs, mem)?;
                Ok(eval_binary(*op, a, at, b, bt))
            }
            Expr::Unary { op, expr } => {
                let (v, t) = self.eval_in(expr, mem)?;
                match op {
                    // the lowering negates via `0 - v` (or folds `-c`);
                    // on both int and float paths the result equals `-v`
                    // for every value the pipeline can produce
                    UnOp::Neg => {
                        if t == Type::Int && !matches!(**expr, Expr::IntLit(_)) {
                            // runtime path: 0 - v through int_binop
                            Ok((hir::int_binop(BinOp::Sub, 0.0, v).unwrap_or(0.0), t))
                        } else {
                            Ok((-v, t))
                        }
                    }
                    UnOp::Not => Ok((f64::from(u8::from(v == 0.0)), Type::Int)),
                }
            }
            Expr::Ternary {
                cond,
                then_value,
                else_value,
            } => {
                // both arms evaluate — the lowering emits a Select over
                // two computed inputs, so errors in either arm surface
                let (c, _) = self.eval_in(cond, mem)?;
                let (tv, tt) = self.eval_in(then_value, mem)?;
                let (ev, et) = self.eval_in(else_value, mem)?;
                let ty = if tt == Type::Float || et == Type::Float {
                    Type::Float
                } else {
                    Type::Int
                };
                let tv = coerce(tv, tt, ty);
                let ev = coerce(ev, et, ty);
                Ok((if c != 0.0 { tv } else { ev }, ty))
            }
            Expr::Call { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    let (v, t) = self.eval_in(a, mem)?;
                    vals.push(coerce(v, t, Type::Float));
                }
                let a = vals.first().copied().unwrap_or(0.0);
                let b = vals.get(1).copied().unwrap_or(0.0);
                let v = match name.as_str() {
                    "sqrtf" => a.max(0.0).sqrt(),
                    "expf" => a.exp(),
                    "fabsf" => a.abs(),
                    "fmaxf" => a.max(b),
                    "fminf" => a.min(b),
                    other => return self.err(format!("unknown intrinsic {other:?}")),
                };
                Ok((v, Type::Float))
            }
        }
    }
}

fn render_path(path: &[u16]) -> String {
    let mut out = String::new();
    for (i, seg) in path.iter().enumerate() {
        if i > 0 {
            out.push('.');
        }
        out.push('L');
        out.push_str(&seg.to_string());
    }
    out
}

fn coerce(v: f64, from: Type, to: Type) -> f64 {
    if from == to || to != Type::Int {
        v
    } else {
        v.trunc()
    }
}

fn apply_compound(op: AssignOp, cur: f64, ct: Type, rv: f64, rt: Type) -> (f64, Type) {
    let float = ct == Type::Float || rt == Type::Float;
    let ty = if float { Type::Float } else { Type::Int };
    let bin = match op {
        AssignOp::Add => BinOp::Add,
        AssignOp::Sub => BinOp::Sub,
        AssignOp::Mul => BinOp::Mul,
        AssignOp::Div => BinOp::Div,
        AssignOp::Set => unreachable!("Set handled by caller"),
    };
    let v = if float {
        float_arith(bin, cur, rv)
    } else {
        hir::int_binop(bin, cur, rv).unwrap_or(0.0)
    };
    (v, ty)
}

fn eval_binary(op: BinOp, a: f64, at: Type, b: f64, bt: Type) -> (f64, Type) {
    let float = at == Type::Float || bt == Type::Float;
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div if float => {
            (float_arith(op, a, b), Type::Float)
        }
        // `%` has no float op kind: always integer semantics, int result
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
            (hir::int_binop(op, a, b).unwrap_or(0.0), Type::Int)
        }
        BinOp::Lt => (f64::from(a < b), Type::Int),
        BinOp::Le => (f64::from(a <= b), Type::Int),
        BinOp::Gt => (f64::from(a > b), Type::Int),
        BinOp::Ge => (f64::from(a >= b), Type::Int),
        BinOp::Eq => (f64::from(a == b), Type::Int),
        BinOp::Ne => (f64::from(a != b), Type::Int),
        BinOp::And => (f64::from(a != 0.0 && b != 0.0), Type::Int),
        BinOp::Or => (f64::from(a != 0.0 || b != 0.0), Type::Int),
    }
}

fn float_arith(op: BinOp, a: f64, b: f64) -> f64 {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            // FDiv-by-zero is defined as 0 in the op model
            if b == 0.0 {
                0.0
            } else {
                a / b
            }
        }
        _ => unreachable!("only arithmetic reaches float_arith"),
    }
}
