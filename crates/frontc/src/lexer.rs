//! Tokenizer for HLS-C.

use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal (contains `.`, `e`, or `f` suffix).
    Float(f64),
    /// A full `#pragma …` line (content after `#pragma`).
    Pragma(String),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier {s:?}"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Float(v) => write!(f, "float {v}"),
            TokenKind::Pragma(p) => write!(f, "#pragma {p}"),
            TokenKind::Punct(p) => write!(f, "{p:?}"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source line (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// Streaming tokenizer.
///
/// # Example
///
/// ```
/// use frontc::{Lexer, TokenKind};
/// let toks = Lexer::new("int x = 3;").tokenize().unwrap();
/// assert_eq!(toks[0].kind, TokenKind::Ident("int".into()));
/// assert_eq!(toks[2].kind, TokenKind::Punct("="));
/// ```
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

/// Multi-character punctuation, longest first.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "&&", "||", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "++", "--",
    "<<", ">>", "(", ")", "{", "}", "[", "]", ";", ",", "=", "<", ">", "+", "-", "*", "/", "%",
    "!", "&", "|", "^", "?", ":",
];

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    /// Tokenizes the whole input.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on unexpected characters
    /// or malformed numbers.
    pub fn tokenize(mut self) -> Result<Vec<Token>, String> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let line = self.line;
            if self.pos >= self.src.len() {
                out.push(Token {
                    kind: TokenKind::Eof,
                    line,
                });
                return Ok(out);
            }
            let c = self.src[self.pos];
            let kind = if c == b'#' {
                self.lex_pragma()?
            } else if c.is_ascii_alphabetic() || c == b'_' {
                self.lex_ident()
            } else if c.is_ascii_digit() || (c == b'.' && self.peek_digit(1)) {
                self.lex_number()?
            } else {
                self.lex_punct()?
            };
            out.push(Token { kind, line });
        }
    }

    fn peek_digit(&self, off: usize) -> bool {
        self.src
            .get(self.pos + off)
            .is_some_and(|c| c.is_ascii_digit())
    }

    fn skip_trivia(&mut self) {
        loop {
            while self.pos < self.src.len() {
                match self.src[self.pos] {
                    b'\n' => {
                        self.line += 1;
                        self.pos += 1;
                    }
                    b' ' | b'\t' | b'\r' => self.pos += 1,
                    _ => break,
                }
            }
            if self.src[self.pos..].starts_with(b"//") {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else if self.src[self.pos..].starts_with(b"/*") {
                self.pos += 2;
                while self.pos < self.src.len() && !self.src[self.pos..].starts_with(b"*/") {
                    if self.src[self.pos] == b'\n' {
                        self.line += 1;
                    }
                    self.pos += 1;
                }
                self.pos = (self.pos + 2).min(self.src.len());
            } else {
                return;
            }
        }
    }

    fn lex_pragma(&mut self) -> Result<TokenKind, String> {
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| format!("line {}: invalid utf-8 in pragma", self.line))?;
        let rest = text
            .strip_prefix('#')
            .map(str::trim_start)
            .and_then(|t| t.strip_prefix("pragma"))
            .ok_or_else(|| format!("line {}: unknown preprocessor directive", self.line))?;
        Ok(TokenKind::Pragma(rest.trim().to_string()))
    }

    fn lex_ident(&mut self) -> TokenKind {
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        TokenKind::Ident(s.to_string())
    }

    fn lex_number(&mut self) -> Result<TokenKind, String> {
        let start = self.pos;
        let mut is_float = false;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'0'..=b'9' => self.pos += 1,
                b'.' => {
                    is_float = true;
                    self.pos += 1;
                }
                b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                    if self
                        .src
                        .get(self.pos)
                        .is_some_and(|&c| c == b'+' || c == b'-')
                    {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii number");
        // optional f/F suffix
        if self
            .src
            .get(self.pos)
            .is_some_and(|&c| c == b'f' || c == b'F')
        {
            self.pos += 1;
            is_float = true;
        }
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|_| format!("line {}: bad float literal {text:?}", self.line))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|_| format!("line {}: bad int literal {text:?}", self.line))
        }
    }

    fn lex_punct(&mut self) -> Result<TokenKind, String> {
        for p in PUNCTS {
            if self.src[self.pos..].starts_with(p.as_bytes()) {
                self.pos += p.len();
                return Ok(TokenKind::Punct(p));
            }
        }
        Err(format!(
            "line {}: unexpected character {:?}",
            self.line, self.src[self.pos] as char
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let k = kinds("int x = 42 + 3.5f;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Punct("="),
                TokenKind::Int(42),
                TokenKind::Punct("+"),
                TokenKind::Float(3.5),
                TokenKind::Punct(";"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("a // line comment\n /* block \n comment */ b");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn pragma_token_captures_rest_of_line() {
        let k = kinds("#pragma HLS pipeline II=2\nx");
        assert_eq!(k[0], TokenKind::Pragma("HLS pipeline II=2".into()));
        assert_eq!(k[1], TokenKind::Ident("x".into()));
    }

    #[test]
    fn multichar_puncts_have_priority() {
        let k = kinds("a <= b += c++");
        assert_eq!(k[1], TokenKind::Punct("<="));
        assert_eq!(k[3], TokenKind::Punct("+="));
        assert_eq!(k[5], TokenKind::Punct("++"));
    }

    #[test]
    fn line_numbers_advance() {
        let toks = Lexer::new("a\nb\n\nc").tokenize().unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn scientific_notation() {
        let k = kinds("1e-3 2.5E+2");
        assert_eq!(k[0], TokenKind::Float(1e-3));
        assert_eq!(k[1], TokenKind::Float(2.5e2));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Lexer::new("a @ b").tokenize().is_err());
    }
}
