//! Semantic analysis: symbol resolution, type checking, loop legality.

use std::collections::HashMap;
use std::fmt;

use crate::ast::*;

/// A semantic error.
#[derive(Debug, Clone, PartialEq)]
pub struct SemaError {
    /// Function where the problem was found.
    pub function: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in function {:?}: {}", self.function, self.message)
    }
}

impl std::error::Error for SemaError {}

/// Math intrinsics accepted by the front-end, with their arities.
pub const INTRINSICS: &[(&str, usize)] = &[
    ("sqrtf", 1),
    ("expf", 1),
    ("fabsf", 1),
    ("fmaxf", 2),
    ("fminf", 2),
];

/// Maximum array rank (number of dimensions).
pub const MAX_ARRAY_RANK: usize = 4;
/// Maximum extent of a single array dimension.
pub const MAX_ARRAY_DIM: usize = 1 << 20;
/// Maximum total element count of one array.
///
/// Together with [`MAX_ARRAY_DIM`] this keeps `num_elements` products and
/// interpreter/simulator buffers within sane bounds — untrusted source
/// must not be able to request a petabyte buffer or overflow a `usize`.
pub const MAX_ARRAY_ELEMS: usize = 1 << 24;
/// Maximum trip count of a single loop.
pub const MAX_LOOP_TRIP: u64 = 1 << 20;
/// Maximum product of trip counts along any loop-nest path.
///
/// Bounds the iteration-space numbers (`total_tc`, unroll replication,
/// latency products) that `hlsim`/`cdfg` compute in `u64` downstream.
pub const MAX_NEST_ITERATIONS: u128 = 1 << 28;
/// Maximum absolute value of a loop `start`/`bound` literal.
///
/// Keeps affine index evaluation (`coeff * indvar` sums) far from `i64`
/// overflow in every downstream consumer.
pub const MAX_LOOP_BOUND_ABS: i64 = 1 << 24;

#[derive(Clone, Copy, PartialEq)]
enum SymKind {
    Scalar(Type),
    Array(Type, usize), // element type, rank
}

struct Scope<'a> {
    func: &'a FunctionDef,
    symbols: Vec<HashMap<String, SymKind>>,
    /// Product of trip counts of the enclosing loops (nest-budget check).
    iter_product: u128,
}

impl<'a> Scope<'a> {
    fn error<T>(&self, message: impl Into<String>) -> Result<T, SemaError> {
        Err(SemaError {
            function: self.func.name.clone(),
            message: message.into(),
        })
    }

    fn lookup(&self, name: &str) -> Option<SymKind> {
        self.symbols.iter().rev().find_map(|m| m.get(name).copied())
    }

    fn declare(&mut self, name: &str, kind: SymKind) -> Result<(), SemaError> {
        let top = self.symbols.last_mut().expect("scope stack non-empty");
        if top.contains_key(name) {
            return Err(SemaError {
                function: self.func.name.clone(),
                message: format!("duplicate declaration of {name:?}"),
            });
        }
        top.insert(name.to_string(), kind);
        Ok(())
    }
}

/// Checks a parsed program.
///
/// # Errors
///
/// Returns the first semantic problem: unknown symbols, type mismatches,
/// wrong array ranks, invalid pragma targets, or unknown intrinsics.
pub fn check(program: &Program) -> Result<(), SemaError> {
    if program.functions.is_empty() {
        return Err(SemaError {
            function: String::new(),
            message: "translation unit has no functions".into(),
        });
    }
    for func in &program.functions {
        check_function(func)?;
    }
    Ok(())
}

fn check_function(func: &FunctionDef) -> Result<(), SemaError> {
    let mut scope = Scope {
        func,
        symbols: vec![HashMap::new()],
        iter_product: 1,
    };
    for p in &func.params {
        let kind = if p.is_array() {
            check_array_limits(&scope, p)?;
            SymKind::Array(p.ty, p.dims.len())
        } else {
            SymKind::Scalar(p.ty)
        };
        scope.declare(&p.name, kind)?;
    }
    // function-level pragmas must reference array parameters
    for pragma in &func.pragmas {
        if let SourcePragma::ArrayPartition { variable, dim, .. } = pragma {
            match scope.lookup(variable) {
                Some(SymKind::Array(_, rank)) => {
                    if *dim as usize > rank {
                        return scope
                            .error(format!("array_partition dim {dim} exceeds rank {rank}"));
                    }
                }
                _ => {
                    return scope.error(format!(
                        "array_partition target {variable:?} is not an array parameter"
                    ))
                }
            }
        } else {
            return scope.error("only array_partition pragmas are allowed at function scope");
        }
    }
    check_block(&mut scope, &func.body)?;
    Ok(())
}

/// Enforces [`MAX_ARRAY_RANK`]/[`MAX_ARRAY_DIM`]/[`MAX_ARRAY_ELEMS`] on an
/// array parameter, with a checked element-count product (the unchecked
/// `dims.product()` in `num_elements` would overflow on adversarial dims).
fn check_array_limits(scope: &Scope, p: &Param) -> Result<(), SemaError> {
    if p.dims.len() > MAX_ARRAY_RANK {
        return scope.error(format!(
            "array {:?} has rank {} (maximum {MAX_ARRAY_RANK})",
            p.name,
            p.dims.len()
        ));
    }
    let mut elems: usize = 1;
    for &d in &p.dims {
        if d > MAX_ARRAY_DIM {
            return scope.error(format!(
                "array {:?} dimension {d} exceeds the maximum ({MAX_ARRAY_DIM})",
                p.name
            ));
        }
        elems = elems.saturating_mul(d);
    }
    if elems > MAX_ARRAY_ELEMS {
        return scope.error(format!(
            "array {:?} has {elems} elements (maximum {MAX_ARRAY_ELEMS})",
            p.name
        ));
    }
    Ok(())
}

fn check_block(scope: &mut Scope, body: &[Stmt]) -> Result<(), SemaError> {
    scope.symbols.push(HashMap::new());
    for stmt in body {
        check_stmt(scope, stmt)?;
    }
    scope.symbols.pop();
    Ok(())
}

fn check_stmt(scope: &mut Scope, stmt: &Stmt) -> Result<(), SemaError> {
    match stmt {
        Stmt::Decl { name, ty, init } => {
            if *ty == Type::Void {
                return scope.error("cannot declare a void variable");
            }
            if let Some(e) = init {
                check_expr(scope, e)?;
            }
            scope.declare(name, SymKind::Scalar(*ty))
        }
        Stmt::Assign { target, value, .. } => {
            check_lvalue(scope, target)?;
            check_expr(scope, value)?;
            Ok(())
        }
        Stmt::For(l) => {
            scope.symbols.push(HashMap::new());
            scope.declare(&l.var, SymKind::Scalar(Type::Int))?;
            let trip = l.trip_count();
            if trip == 0 {
                return scope.error(format!("loop over {:?} has zero trip count", l.var));
            }
            if trip > MAX_LOOP_TRIP {
                return scope.error(format!(
                    "loop over {:?} has trip count {trip} (maximum {MAX_LOOP_TRIP})",
                    l.var
                ));
            }
            if l.start.unsigned_abs() > MAX_LOOP_BOUND_ABS as u64
                || l.bound.unsigned_abs() > MAX_LOOP_BOUND_ABS as u64
            {
                return scope.error(format!(
                    "loop over {:?} has bounds outside ±{MAX_LOOP_BOUND_ABS}",
                    l.var
                ));
            }
            let outer_product = scope.iter_product;
            let total = outer_product.saturating_mul(trip as u128);
            if total > MAX_NEST_ITERATIONS {
                return scope.error(format!(
                    "loop nest over {:?} spans {total} iterations (maximum {MAX_NEST_ITERATIONS})",
                    l.var
                ));
            }
            for pragma in &l.pragmas {
                if matches!(pragma, SourcePragma::ArrayPartition { .. }) {
                    return scope.error("array_partition must be at function scope");
                }
            }
            scope.iter_product = total;
            let result = check_block(scope, &l.body);
            scope.iter_product = outer_product;
            result?;
            scope.symbols.pop();
            Ok(())
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            check_expr(scope, cond)?;
            check_block(scope, then_body)?;
            check_block(scope, else_body)?;
            Ok(())
        }
        Stmt::Return(e) => match (scope.func.ret, e) {
            (Type::Void, Some(_)) => scope.error("void function returns a value"),
            (Type::Void, None) => Ok(()),
            (_, None) => scope.error("non-void function returns nothing"),
            (_, Some(e)) => {
                check_expr(scope, e)?;
                Ok(())
            }
        },
    }
}

fn check_lvalue(scope: &mut Scope, lv: &LValue) -> Result<(), SemaError> {
    match lv {
        LValue::Var(name) => match scope.lookup(name) {
            Some(SymKind::Scalar(_)) => Ok(()),
            Some(SymKind::Array(..)) => {
                scope.error(format!("cannot assign to array {name:?} as a whole"))
            }
            None => scope.error(format!("unknown variable {name:?}")),
        },
        LValue::ArrayElem { array, indices } => check_array_access(scope, array, indices),
    }
}

fn check_array_access(scope: &mut Scope, array: &str, indices: &[Expr]) -> Result<(), SemaError> {
    match scope.lookup(array) {
        Some(SymKind::Array(_, rank)) => {
            if indices.len() != rank {
                return scope.error(format!(
                    "array {array:?} has rank {rank} but {} indices were given",
                    indices.len()
                ));
            }
            for idx in indices {
                check_expr(scope, idx)?;
            }
            Ok(())
        }
        Some(SymKind::Scalar(_)) => scope.error(format!("{array:?} is not an array")),
        None => scope.error(format!("unknown array {array:?}")),
    }
}

fn check_expr(scope: &mut Scope, expr: &Expr) -> Result<(), SemaError> {
    match expr {
        Expr::IntLit(_) | Expr::FloatLit(_) => Ok(()),
        Expr::Var(name) => match scope.lookup(name) {
            Some(SymKind::Scalar(_)) => Ok(()),
            Some(SymKind::Array(..)) => scope.error(format!("array {name:?} used without indices")),
            None => scope.error(format!("unknown variable {name:?}")),
        },
        Expr::ArrayElem { array, indices } => check_array_access(scope, array, indices),
        Expr::Binary { lhs, rhs, .. } => {
            check_expr(scope, lhs)?;
            check_expr(scope, rhs)
        }
        Expr::Unary { expr, .. } => check_expr(scope, expr),
        Expr::Ternary {
            cond,
            then_value,
            else_value,
        } => {
            check_expr(scope, cond)?;
            check_expr(scope, then_value)?;
            check_expr(scope, else_value)
        }
        Expr::Call { name, args } => {
            let arity = INTRINSICS.iter().find(|(n, _)| n == name).map(|(_, a)| *a);
            match arity {
                Some(a) if a == args.len() => {
                    for arg in args {
                        check_expr(scope, arg)?;
                    }
                    Ok(())
                }
                Some(a) => scope.error(format!(
                    "intrinsic {name:?} takes {a} arguments, got {}",
                    args.len()
                )),
                None => scope.error(format!("unknown function {name:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check_src(src: &str) -> Result<(), SemaError> {
        check(&parse_program(src).expect("parse ok"))
    }

    #[test]
    fn accepts_valid_kernel() {
        let src = r#"
void mvt(float a[4][4], float x[4], float y[4]) {
    for (int i = 0; i < 4; i++) {
        float acc = 0.0;
        for (int j = 0; j < 4; j++) {
            acc += a[i][j] * x[j];
        }
        y[i] = acc;
    }
}
"#;
        assert!(check_src(src).is_ok());
    }

    #[test]
    fn rejects_unknown_variable() {
        let e = check_src("void f(int x) { x = y; }").unwrap_err();
        assert!(e.message.contains("unknown variable"));
    }

    #[test]
    fn rejects_rank_mismatch() {
        let e = check_src("void f(float a[4][4]) { a[0] = 1.0; }").unwrap_err();
        assert!(e.message.contains("rank"));
    }

    #[test]
    fn rejects_partition_of_scalar() {
        let src = "void f(int x) {\n#pragma HLS array_partition variable=x cyclic factor=2 dim=1\n x = 0; }";
        let e = check_src(src).unwrap_err();
        assert!(e.message.contains("not an array"));
    }

    #[test]
    fn rejects_partition_dim_beyond_rank() {
        let src = "void f(float a[4]) {\n#pragma HLS array_partition variable=a cyclic factor=2 dim=3\n a[0] = 0.0; }";
        let e = check_src(src).unwrap_err();
        assert!(e.message.contains("exceeds rank"));
    }

    #[test]
    fn rejects_duplicate_declaration() {
        let e = check_src("void f(int x) { int x = 0; int x = 1; x = 2; }").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn loop_variable_scoped_to_loop() {
        // using i after the loop is an error
        let e = check_src("void f(int x) { for (int i = 0; i < 4; i++) { x = i; } x = i; }")
            .unwrap_err();
        assert!(e.message.contains("unknown variable"));
    }

    #[test]
    fn intrinsic_arity_checked() {
        let e = check_src("void f(float a[2]) { a[0] = sqrtf(a[0], a[1]); }").unwrap_err();
        assert!(e.message.contains("arguments"));
    }

    #[test]
    fn void_return_rules() {
        assert!(check_src("void f(int x) { return; }").is_ok());
        assert!(check_src("void f(int x) { return x; }").is_err());
        assert!(check_src("int f(int x) { return x; }").is_ok());
        assert!(check_src("int f(int x) { return; }").is_err());
    }

    #[test]
    fn zero_trip_loop_rejected() {
        let e = check_src("void f(int x) { for (int i = 4; i < 4; i++) { x = 0; } }").unwrap_err();
        assert!(e.message.contains("zero trip count"));
    }
}
