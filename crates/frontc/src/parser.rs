//! Recursive-descent parser for HLS-C.

use std::fmt;

use crate::ast::*;
use crate::lexer::{Lexer, Token, TokenKind};

/// A parse failure with source line information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum combined statement/expression nesting depth.
///
/// The parser (and the sema/lowering passes downstream of it) are
/// recursive-descent; without a cap, adversarial inputs like ten thousand
/// `(`s or `if (x) {` repetitions overflow the stack — an abort no
/// `catch_unwind` can intercept. Any program a kernel author would write
/// sits far below this bound.
pub const MAX_NEST_DEPTH: usize = 200;

/// Parses a translation unit (without semantic checking — see
/// [`crate::parse`] for the full pipeline).
///
/// # Errors
///
/// Returns the first syntax error encountered.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = Lexer::new(source)
        .tokenize()
        .map_err(|message| ParseError { line: 0, message })?;
    Parser {
        tokens,
        pos: 0,
        depth: 0,
    }
    .program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current statement+expression nesting depth (see [`MAX_NEST_DEPTH`]).
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.peek() {
            TokenKind::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => {
                let msg = format!("expected {p:?}, found {other}");
                self.err(msg)
            }
        }
    }

    fn try_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Tracks recursion depth across statements and expressions; rejects
    /// inputs nested beyond [`MAX_NEST_DEPTH`] with a typed error instead of
    /// letting recursive descent overflow the stack.
    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_NEST_DEPTH {
            return self.err(format!(
                "nesting deeper than the supported maximum ({MAX_NEST_DEPTH})"
            ));
        }
        Ok(())
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => {
                let msg = format!("expected identifier, found {other}");
                self.err(msg)
            }
        }
    }

    fn int_lit(&mut self) -> Result<i64, ParseError> {
        let neg = self.try_punct("-");
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(if neg { -v } else { v })
            }
            other => {
                let msg = format!("expected integer literal, found {other}");
                self.err(msg)
            }
        }
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        let name = self.ident()?;
        match name.as_str() {
            "int" => Ok(Type::Int),
            "float" => Ok(Type::Float),
            "void" => Ok(Type::Void),
            other => {
                let msg = format!("unknown type {other:?}");
                self.err(msg)
            }
        }
    }

    // ------------------------------------------------------------ program

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut functions = Vec::new();
        while !matches!(self.peek(), TokenKind::Eof) {
            functions.push(self.function()?);
        }
        Ok(Program { functions })
    }

    fn function(&mut self) -> Result<FunctionDef, ParseError> {
        let ret = self.ty()?;
        let name = self.ident()?;
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !self.try_punct(")") {
            loop {
                params.push(self.param()?);
                if self.try_punct(")") {
                    break;
                }
                self.eat_punct(",")?;
            }
        }
        self.eat_punct("{")?;
        let (body, pragmas) = self.block_body()?;
        Ok(FunctionDef {
            name,
            ret,
            params,
            body,
            pragmas,
        })
    }

    fn param(&mut self) -> Result<Param, ParseError> {
        let ty = self.ty()?;
        if ty == Type::Void {
            return self.err("parameters cannot be void");
        }
        let name = self.ident()?;
        let mut dims = Vec::new();
        while self.try_punct("[") {
            let d = self.int_lit()?;
            if d <= 0 {
                return self.err("array dimensions must be positive");
            }
            dims.push(d as usize);
            self.eat_punct("]")?;
        }
        Ok(Param { name, ty, dims })
    }

    /// Parses statements until `}`; collects pragmas that appear at this
    /// block level (they attach to the enclosing loop/function).
    fn block_body(&mut self) -> Result<(Vec<Stmt>, Vec<SourcePragma>), ParseError> {
        let mut stmts = Vec::new();
        let mut pragmas = Vec::new();
        loop {
            if self.try_punct("}") {
                return Ok((stmts, pragmas));
            }
            if matches!(self.peek(), TokenKind::Eof) {
                return self.err("unexpected end of input inside block");
            }
            if let TokenKind::Pragma(text) = self.peek().clone() {
                let line = self.line();
                self.bump();
                pragmas.push(parse_pragma(&text, line)?);
                continue;
            }
            stmts.push(self.stmt()?);
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        self.enter()?;
        let result = self.stmt_inner();
        self.depth -= 1;
        result
    }

    fn stmt_inner(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(kw) => match kw.as_str() {
                "for" => self.for_loop().map(Stmt::For),
                "if" => self.if_stmt(),
                "return" => {
                    self.bump();
                    if self.try_punct(";") {
                        Ok(Stmt::Return(None))
                    } else {
                        let e = self.expr()?;
                        self.eat_punct(";")?;
                        Ok(Stmt::Return(Some(e)))
                    }
                }
                "int" | "float" => self.decl(),
                _ => self.assign_stmt(),
            },
            other => {
                let msg = format!("expected statement, found {other}");
                self.err(msg)
            }
        }
    }

    fn decl(&mut self) -> Result<Stmt, ParseError> {
        let ty = self.ty()?;
        let name = self.ident()?;
        let init = if self.try_punct("=") {
            Some(self.expr()?)
        } else {
            None
        };
        self.eat_punct(";")?;
        Ok(Stmt::Decl { name, ty, init })
    }

    fn assign_stmt(&mut self) -> Result<Stmt, ParseError> {
        let target = self.lvalue()?;
        // x++; / x--; sugar
        if self.try_punct("++") {
            self.eat_punct(";")?;
            return Ok(Stmt::Assign {
                target,
                op: AssignOp::Add,
                value: Expr::IntLit(1),
            });
        }
        if self.try_punct("--") {
            self.eat_punct(";")?;
            return Ok(Stmt::Assign {
                target,
                op: AssignOp::Sub,
                value: Expr::IntLit(1),
            });
        }
        let op = match self.peek() {
            TokenKind::Punct("=") => AssignOp::Set,
            TokenKind::Punct("+=") => AssignOp::Add,
            TokenKind::Punct("-=") => AssignOp::Sub,
            TokenKind::Punct("*=") => AssignOp::Mul,
            TokenKind::Punct("/=") => AssignOp::Div,
            other => {
                let msg = format!("expected assignment operator, found {other}");
                return self.err(msg);
            }
        };
        self.bump();
        let value = self.expr()?;
        self.eat_punct(";")?;
        Ok(Stmt::Assign { target, op, value })
    }

    fn lvalue(&mut self) -> Result<LValue, ParseError> {
        let name = self.ident()?;
        if matches!(self.peek(), TokenKind::Punct("[")) {
            let mut indices = Vec::new();
            while self.try_punct("[") {
                indices.push(self.expr()?);
                self.eat_punct("]")?;
            }
            Ok(LValue::ArrayElem {
                array: name,
                indices,
            })
        } else {
            Ok(LValue::Var(name))
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.bump(); // "if"
        self.eat_punct("(")?;
        let cond = self.expr()?;
        self.eat_punct(")")?;
        let then_body = self.stmt_or_block()?;
        let else_body = if matches!(self.peek(), TokenKind::Ident(k) if k == "else") {
            self.bump();
            self.stmt_or_block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.try_punct("{") {
            let (body, pragmas) = self.block_body()?;
            if !pragmas.is_empty() {
                return self.err("pragmas are only allowed in loop or function bodies");
            }
            Ok(body)
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn for_loop(&mut self) -> Result<ForLoop, ParseError> {
        self.bump(); // "for"
        self.eat_punct("(")?;
        // init: `int i = c` or `i = c`
        if matches!(self.peek(), TokenKind::Ident(k) if k == "int") {
            self.bump();
        }
        let var = self.ident()?;
        self.eat_punct("=")?;
        let start = self.int_lit()?;
        self.eat_punct(";")?;
        // cond: `i < c` or `i <= c`
        let cond_var = self.ident()?;
        if cond_var != var {
            return self.err("loop condition must test the induction variable");
        }
        let inclusive = if self.try_punct("<") {
            false
        } else if self.try_punct("<=") {
            true
        } else {
            return self.err("loop condition must use < or <=");
        };
        let mut bound = self.int_lit()?;
        if inclusive {
            bound = bound.checked_add(1).ok_or_else(|| ParseError {
                line: self.line(),
                message: "inclusive loop bound overflows".into(),
            })?;
        }
        self.eat_punct(";")?;
        // step: `i++`, `i += c`, or `i = i + c`
        let step_var = self.ident()?;
        if step_var != var {
            return self.err("loop step must update the induction variable");
        }
        let step = if self.try_punct("++") {
            1
        } else if self.try_punct("+=") {
            self.int_lit()?
        } else if self.try_punct("=") {
            let v2 = self.ident()?;
            if v2 != var {
                return self.err("loop step must be of the form i = i + c");
            }
            self.eat_punct("+")?;
            self.int_lit()?
        } else {
            return self.err("loop step must be ++, +=, or i = i + c");
        };
        if step <= 0 {
            return self.err("loop step must be positive");
        }
        self.eat_punct(")")?;
        self.eat_punct("{")?;
        let (body, pragmas) = self.block_body()?;
        Ok(ForLoop {
            var,
            start,
            bound,
            step,
            body,
            pragmas,
        })
    }

    // ---------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let result = self.expr_inner();
        self.depth -= 1;
        result
    }

    fn expr_inner(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary_expr(0)?;
        if self.try_punct("?") {
            let then_value = self.expr()?;
            self.eat_punct(":")?;
            let else_value = self.expr()?;
            return Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_value: Box::new(then_value),
                else_value: Box::new(else_value),
            });
        }
        Ok(cond)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::Punct("||") => (BinOp::Or, 1),
                TokenKind::Punct("&&") => (BinOp::And, 2),
                TokenKind::Punct("==") => (BinOp::Eq, 3),
                TokenKind::Punct("!=") => (BinOp::Ne, 3),
                TokenKind::Punct("<") => (BinOp::Lt, 4),
                TokenKind::Punct("<=") => (BinOp::Le, 4),
                TokenKind::Punct(">") => (BinOp::Gt, 4),
                TokenKind::Punct(">=") => (BinOp::Ge, 4),
                TokenKind::Punct("+") => (BinOp::Add, 5),
                TokenKind::Punct("-") => (BinOp::Sub, 5),
                TokenKind::Punct("*") => (BinOp::Mul, 6),
                TokenKind::Punct("/") => (BinOp::Div, 6),
                TokenKind::Punct("%") => (BinOp::Rem, 6),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let result = self.unary_expr_inner();
        self.depth -= 1;
        result
    }

    fn unary_expr_inner(&mut self) -> Result<Expr, ParseError> {
        if self.try_punct("-") {
            let e = self.unary_expr()?;
            return Ok(match e {
                Expr::IntLit(v) => Expr::IntLit(-v),
                Expr::FloatLit(v) => Expr::FloatLit(-v),
                other => Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.try_punct("!") {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e),
            });
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::IntLit(v))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::FloatLit(v))
            }
            TokenKind::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.try_punct("(") {
                    let mut args = Vec::new();
                    if !self.try_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.try_punct(")") {
                                break;
                            }
                            self.eat_punct(",")?;
                        }
                    }
                    Ok(Expr::Call { name, args })
                } else if matches!(self.peek(), TokenKind::Punct("[")) {
                    let mut indices = Vec::new();
                    while self.try_punct("[") {
                        indices.push(self.expr()?);
                        self.eat_punct("]")?;
                    }
                    Ok(Expr::ArrayElem {
                        array: name,
                        indices,
                    })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => {
                let msg = format!("expected expression, found {other}");
                self.err(msg)
            }
        }
    }
}

/// Parses the text after `#pragma` into a [`SourcePragma`].
fn parse_pragma(text: &str, line: usize) -> Result<SourcePragma, ParseError> {
    let err = |message: String| ParseError { line, message };
    let mut words = text.split_whitespace();
    match words.next() {
        Some(w) if w.eq_ignore_ascii_case("hls") => {}
        _ => return Err(err(format!("unsupported pragma {text:?} (expected HLS)"))),
    }
    let kind = words
        .next()
        .ok_or_else(|| err("missing HLS pragma kind".into()))?
        .to_ascii_lowercase();
    let mut opts = std::collections::BTreeMap::new();
    let mut flags = Vec::new();
    for w in words {
        match w.split_once('=') {
            Some((k, v)) => {
                opts.insert(k.to_ascii_lowercase(), v.to_string());
            }
            None => flags.push(w.to_ascii_lowercase()),
        }
    }
    let get_u32 = |opts: &std::collections::BTreeMap<String, String>, key: &str| {
        opts.get(key)
            .map(|v| {
                v.parse::<u32>()
                    .map_err(|_| err(format!("bad {key} value {v:?}")))
            })
            .transpose()
    };
    match kind.as_str() {
        "pipeline" => Ok(SourcePragma::Pipeline {
            ii: get_u32(&opts, "ii")?,
        }),
        "unroll" => Ok(SourcePragma::Unroll {
            factor: get_u32(&opts, "factor")?,
        }),
        "loop_flatten" => Ok(SourcePragma::LoopFlatten),
        "array_partition" => {
            let variable = opts
                .get("variable")
                .cloned()
                .ok_or_else(|| err("array_partition needs variable=".into()))?;
            let kind = if flags.iter().any(|f| f == "cyclic") {
                PartitionKind::Cyclic
            } else if flags.iter().any(|f| f == "block") {
                PartitionKind::Block
            } else if flags.iter().any(|f| f == "complete") {
                PartitionKind::Complete
            } else {
                return Err(err("array_partition needs cyclic|block|complete".into()));
            };
            let factor = get_u32(&opts, "factor")?.unwrap_or(1);
            let dim = get_u32(&opts, "dim")?.unwrap_or(1);
            Ok(SourcePragma::ArrayPartition {
                variable,
                kind,
                factor,
                dim,
            })
        }
        other => Err(err(format!("unsupported HLS pragma kind {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GEMM: &str = r#"
void gemm(float a[8][8], float b[8][8], float c[8][8]) {
    for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 8; j++) {
            float acc = 0.0;
            for (int k = 0; k < 8; k++) {
                #pragma HLS pipeline II=1
                acc += a[i][k] * b[k][j];
            }
            c[i][j] = acc;
        }
    }
}
"#;

    #[test]
    fn parses_gemm() {
        let p = parse_program(GEMM).unwrap();
        assert_eq!(p.functions.len(), 1);
        let f = &p.functions[0];
        assert_eq!(f.name, "gemm");
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[0].dims, vec![8, 8]);
        let Stmt::For(ref outer) = f.body[0] else {
            panic!("expected outer loop");
        };
        assert_eq!(outer.trip_count(), 8);
        let Stmt::For(ref mid) = outer.body[0] else {
            panic!("expected middle loop");
        };
        let Stmt::For(ref inner) = mid.body[1] else {
            panic!("expected inner loop after decl");
        };
        assert_eq!(inner.pragmas, vec![SourcePragma::Pipeline { ii: Some(1) }]);
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_program("void f(int x) { int y = 1 + 2 * 3; }").unwrap();
        let Stmt::Decl { init: Some(e), .. } = &p.functions[0].body[0] else {
            panic!()
        };
        // 1 + (2 * 3)
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = e
        else {
            panic!("expected + at top: {e:?}")
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn comparison_below_logical() {
        let p = parse_program("void f(int x) { if (x < 3 && x > 1) { x = 0; } }").unwrap();
        let Stmt::If { cond, .. } = &p.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(cond, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn for_variants() {
        for step in ["i++", "i += 2", "i = i + 2"] {
            let src = format!(
                "void f(float a[4]) {{ for (int i = 0; i < 4; {step}) {{ a[i] = 0.0; }} }}"
            );
            assert!(parse_program(&src).is_ok(), "failed for step {step}");
        }
        // inclusive bound
        let p =
            parse_program("void f(float a[5]) { for (int i = 0; i <= 4; i++) { a[i] = 0.0; } }")
                .unwrap();
        let Stmt::For(l) = &p.functions[0].body[0] else {
            panic!()
        };
        assert_eq!(l.trip_count(), 5);
    }

    #[test]
    fn array_partition_pragma() {
        let src = r#"
void f(float a[16]) {
    #pragma HLS array_partition variable=a cyclic factor=4 dim=1
    for (int i = 0; i < 16; i++) { a[i] = 0.0; }
}
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(
            p.functions[0].pragmas,
            vec![SourcePragma::ArrayPartition {
                variable: "a".into(),
                kind: PartitionKind::Cyclic,
                factor: 4,
                dim: 1,
            }]
        );
    }

    #[test]
    fn unroll_without_factor_is_full() {
        let src = "void f(float a[4]) { for (int i = 0; i < 4; i++) { #pragma HLS unroll\n a[i] = 0.0; } }";
        let p = parse_program(src).unwrap();
        let Stmt::For(l) = &p.functions[0].body[0] else {
            panic!()
        };
        assert_eq!(l.pragmas, vec![SourcePragma::Unroll { factor: None }]);
    }

    #[test]
    fn error_reports_line() {
        let e = parse_program("void f() {\n  int x = ;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_noncanonical_loop() {
        let src = "void f(int n) { for (int i = 0; i > 4; i++) { n = 0; } }";
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn ternary_parses_right_associative() {
        let p = parse_program("void f(int x) { int y = x > 0 ? 1 : x > 5 ? 2 : 3; }").unwrap();
        let Stmt::Decl { init: Some(e), .. } = &p.functions[0].body[0] else {
            panic!()
        };
        let Expr::Ternary { else_value, .. } = e else {
            panic!("expected ternary: {e:?}")
        };
        assert!(matches!(**else_value, Expr::Ternary { .. }));
    }

    #[test]
    fn intrinsic_calls_parse() {
        let src = "void f(float a[4]) { a[0] = sqrtf(a[1]) + fmaxf(a[2], a[3]); }";
        assert!(parse_program(src).is_ok());
    }
}
