#![warn(missing_docs)]
//! Front-end for **HLS-C**, the C subset used by this workspace's kernels.
//!
//! The front-end plays the role Clang/LLVM plays in the paper: it turns
//! kernel source into a structured representation ([`Program`]) from which
//! the `hir` crate builds its loop-tree IR and the `cdfg` crate builds
//! program graphs.
//!
//! Supported language surface:
//!
//! * `void`/`int`/`float` functions with scalar and constant-dimension array
//!   parameters,
//! * declarations, assignments (including `+=`-style compound assignment),
//! * canonical `for` loops (`for (int i = a; i < b; i += s)`),
//! * `if`/`else`, `return`,
//! * arithmetic/comparison/logical expressions and calls to math intrinsics
//!   (`sqrtf`, `expf`, `fabsf`, `fmaxf`, `fminf`),
//! * `#pragma HLS pipeline/unroll/loop_flatten/array_partition` directives.
//!
//! # Example
//!
//! ```
//! let src = r#"
//! void scale(float x[16], float y[16]) {
//!     for (int i = 0; i < 16; i++) {
//!         #pragma HLS pipeline II=1
//!         y[i] = x[i] * 2.0;
//!     }
//! }
//! "#;
//! let program = frontc::parse(src)?;
//! assert_eq!(program.functions[0].name, "scale");
//! # Ok::<(), frontc::FrontError>(())
//! ```

mod ast;
mod lexer;
mod parser;
mod sema;

pub use ast::{
    AssignOp, BinOp, Expr, ForLoop, FunctionDef, LValue, Param, PartitionKind, Program,
    SourcePragma, Stmt, Type, UnOp,
};
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{ParseError, MAX_NEST_DEPTH};
pub use sema::{
    SemaError, MAX_ARRAY_DIM, MAX_ARRAY_ELEMS, MAX_ARRAY_RANK, MAX_LOOP_BOUND_ABS, MAX_LOOP_TRIP,
    MAX_NEST_ITERATIONS,
};

use std::fmt;

/// Any error produced by the front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontError {
    /// Lexing/parsing failure.
    Parse(ParseError),
    /// Semantic-analysis failure.
    Sema(SemaError),
}

impl fmt::Display for FrontError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontError::Parse(e) => write!(f, "parse error: {e}"),
            FrontError::Sema(e) => write!(f, "semantic error: {e}"),
        }
    }
}

impl std::error::Error for FrontError {}

impl From<ParseError> for FrontError {
    fn from(e: ParseError) -> Self {
        FrontError::Parse(e)
    }
}

impl From<SemaError> for FrontError {
    fn from(e: SemaError) -> Self {
        FrontError::Sema(e)
    }
}

/// Parses and semantically checks an HLS-C translation unit.
///
/// # Errors
///
/// Returns a [`FrontError`] describing the first lexical, syntactic or
/// semantic problem found.
pub fn parse(source: &str) -> Result<Program, FrontError> {
    let sp = obs::span("parse");
    sp.attr("source_bytes", source.len());
    let program = parser::parse_program(source)?;
    sp.attr("functions", program.functions.len());
    {
        let _sema = obs::span("sema");
        sema::check(&program)?;
    }
    Ok(program)
}
