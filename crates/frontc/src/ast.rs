//! Abstract syntax tree for HLS-C.

use std::fmt;

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Functions in declaration order.
    pub functions: Vec<FunctionDef>,
}

impl Program {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// Scalar element types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 32-bit signed integer.
    Int,
    /// 32-bit IEEE float.
    Float,
    /// Function return type only.
    Void,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Type::Int => "int",
            Type::Float => "float",
            Type::Void => "void",
        })
    }
}

/// A function parameter: scalar if `dims` is empty, otherwise an array with
/// constant dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Element type.
    pub ty: Type,
    /// Constant array dimensions (empty = scalar).
    pub dims: Vec<usize>,
}

impl Param {
    /// Whether the parameter is an array.
    pub fn is_array(&self) -> bool {
        !self.dims.is_empty()
    }

    /// Total element count (1 for scalars).
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product::<usize>().max(1)
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Function-scope pragmas (e.g. `array_partition`).
    pub pragmas: Vec<SourcePragma>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `int x = e;` / `float x;`
    Decl {
        /// Declared name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// `lv = e;`, `lv += e;`, …
    Assign {
        /// Assignment target.
        target: LValue,
        /// Plain or compound assignment.
        op: AssignOp,
        /// Right-hand side.
        value: Expr,
    },
    /// Canonical counted loop.
    For(ForLoop),
    /// `if (c) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `return;` / `return e;`
    Return(Option<Expr>),
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
}

/// A canonical `for` loop: `for (int v = start; v < bound; v += step)`.
///
/// Bounds are compile-time constants so trip counts are static, matching the
/// paper's dataset (TC is a loop-level feature).
#[derive(Debug, Clone, PartialEq)]
pub struct ForLoop {
    /// Induction variable.
    pub var: String,
    /// Inclusive start.
    pub start: i64,
    /// Exclusive bound.
    pub bound: i64,
    /// Positive step.
    pub step: i64,
    /// Loop body.
    pub body: Vec<Stmt>,
    /// Pragmas attached to this loop (written just inside its body).
    pub pragmas: Vec<SourcePragma>,
}

impl ForLoop {
    /// Static trip count of the loop.
    ///
    /// Computed in 128-bit arithmetic: `bound - start` can exceed `i64`
    /// for adversarial literals (e.g. `i = -2^62 … i < 2^62`), and a trip
    /// count must never panic — sema rejects oversized loops afterwards.
    pub fn trip_count(&self) -> u64 {
        if self.bound <= self.start || self.step <= 0 {
            0
        } else {
            let span = self.bound as i128 - self.start as i128;
            let step = self.step as i128;
            ((span + step - 1) / step) as u64
        }
    }
}

/// Assignable locations.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Scalar variable.
    Var(String),
    /// Array element `a[i][j]…`.
    ArrayElem {
        /// Array name.
        array: String,
        /// One index expression per dimension.
        indices: Vec<Expr>,
    },
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Scalar variable reference.
    Var(String),
    /// Array element read.
    ArrayElem {
        /// Array name.
        array: String,
        /// Index expressions.
        indices: Vec<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Intrinsic call (`sqrtf`, `expf`, `fabsf`, `fmaxf`, `fminf`).
    Call {
        /// Intrinsic name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Conditional expression `c ? t : e`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when the condition is non-zero.
        then_value: Box<Expr>,
        /// Value when the condition is zero.
        else_value: Box<Expr>,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Whether the operator yields a boolean (int 0/1) result.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// Array partitioning flavours (mirrors Vitis HLS options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionKind {
    /// Interleaved banks: element `i` goes to bank `i % factor`.
    Cyclic,
    /// Contiguous blocks: element `i` goes to bank `i / ceil(n/factor)`.
    Block,
    /// One bank per element along the dimension.
    Complete,
}

impl fmt::Display for PartitionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PartitionKind::Cyclic => "cyclic",
            PartitionKind::Block => "block",
            PartitionKind::Complete => "complete",
        })
    }
}

/// A `#pragma HLS …` directive as written in the source.
#[derive(Debug, Clone, PartialEq)]
pub enum SourcePragma {
    /// `#pragma HLS pipeline [II=n]`
    Pipeline {
        /// Requested initiation interval, if given.
        ii: Option<u32>,
    },
    /// `#pragma HLS unroll [factor=n]` (no factor = full unroll)
    Unroll {
        /// Unroll factor; `None` = full.
        factor: Option<u32>,
    },
    /// `#pragma HLS loop_flatten`
    LoopFlatten,
    /// `#pragma HLS array_partition variable=A <kind> factor=n dim=d`
    ArrayPartition {
        /// Target array name.
        variable: String,
        /// Partitioning flavour.
        kind: PartitionKind,
        /// Bank count (ignored for `complete`).
        factor: u32,
        /// 1-based dimension (0 = all dims).
        dim: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_count_computation() {
        let mk = |start, bound, step| ForLoop {
            var: "i".into(),
            start,
            bound,
            step,
            body: vec![],
            pragmas: vec![],
        };
        assert_eq!(mk(0, 10, 1).trip_count(), 10);
        assert_eq!(mk(0, 10, 3).trip_count(), 4);
        assert_eq!(mk(5, 5, 1).trip_count(), 0);
        assert_eq!(mk(2, 8, 2).trip_count(), 3);
    }

    #[test]
    fn param_helpers() {
        let scalar = Param {
            name: "n".into(),
            ty: Type::Int,
            dims: vec![],
        };
        let arr = Param {
            name: "a".into(),
            ty: Type::Float,
            dims: vec![4, 8],
        };
        assert!(!scalar.is_array());
        assert_eq!(scalar.num_elements(), 1);
        assert!(arr.is_array());
        assert_eq!(arr.num_elements(), 32);
    }

    #[test]
    fn comparison_predicate() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }
}
