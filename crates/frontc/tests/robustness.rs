//! Randomized robustness tests: the front-end must never panic, only
//! return errors.
//!
//! Formerly `proptest`-based; the offline build environment has no crates.io
//! access, so the same properties are now driven by the workspace's seeded
//! in-tree RNG. Cases are deterministic per seed, so failures reproduce.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Arbitrary ASCII soup must produce `Ok` or `Err`, never a panic.
#[test]
fn parser_never_panics_on_ascii() {
    let mut rng = StdRng::seed_from_u64(0xf0ff);
    for _ in 0..256 {
        let len = rng.gen_range(0..=200usize);
        let input: String = (0..len)
            .map(|_| {
                // the proptest char class was `[ -~\n\t]`
                match rng.gen_range(0..20u32) {
                    0 => '\n',
                    1 => '\t',
                    _ => char::from(rng.gen_range(b' '..=b'~')),
                }
            })
            .collect();
        let _ = frontc::parse(&input);
    }
}

/// Mutations of a valid kernel (byte deletions) must not panic either.
#[test]
fn parser_never_panics_on_mutations() {
    let src = "void k(float a[16], float b[16]) {\n    for (int i = 0; i < 16; i++) {\n        #pragma HLS pipeline\n        b[i] = a[i] * 2.0 + 1.5;\n    }\n}\n";
    let bytes = src.as_bytes();
    let mut rng = StdRng::seed_from_u64(0xcafe);
    for _ in 0..256 {
        let cut_start = rng.gen_range(0..200usize);
        let cut_len = rng.gen_range(0..40usize);
        let start = cut_start.min(bytes.len());
        let end = (start + cut_len).min(bytes.len());
        let mutated: Vec<u8> = bytes[..start]
            .iter()
            .chain(&bytes[end..])
            .copied()
            .collect();
        if let Ok(text) = std::str::from_utf8(&mutated) {
            let _ = frontc::parse(text);
        }
    }
}

/// Numeric literals round-trip through the lexer.
#[test]
fn int_literals_roundtrip() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..256 {
        let v = rng.gen_range(0i64..1_000_000);
        let toks = frontc::Lexer::new(&format!("{v}")).tokenize().unwrap();
        assert_eq!(&toks[0].kind, &frontc::TokenKind::Int(v));
    }
}

/// Identifier-shaped strings lex as single identifiers.
#[test]
fn identifiers_lex_whole() {
    let mut rng = StdRng::seed_from_u64(11);
    let first: Vec<char> = ('a'..='z').chain('A'..='Z').chain(['_']).collect();
    let rest: Vec<char> = first.iter().copied().chain('0'..='9').collect();
    for _ in 0..256 {
        let mut name = String::new();
        name.push(first[rng.gen_range(0..first.len())]);
        for _ in 0..rng.gen_range(0..=20usize) {
            name.push(rest[rng.gen_range(0..rest.len())]);
        }
        let toks = frontc::Lexer::new(&name).tokenize().unwrap();
        assert_eq!(toks.len(), 2, "ident + eof for {name:?}");
        match &toks[0].kind {
            frontc::TokenKind::Ident(s) => assert_eq!(s, &name),
            other => panic!("unexpected token {other:?} for {name:?}"),
        }
    }
}

/// A grammar-directed generator of valid kernels: everything it produces
/// must pass the full front-end.
#[test]
fn generated_valid_kernels_always_parse() {
    for seed in 0..40u64 {
        let src = kernels_like_source(seed);
        frontc::parse(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
    }
}

fn kernels_like_source(seed: u64) -> String {
    // tiny deterministic generator (LCG) over a safe template family
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = move |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    let n = [8, 16, 32][next(3) as usize];
    let op = ["+", "*", "-"][next(3) as usize];
    let pragma = [
        "",
        "#pragma HLS pipeline\n        ",
        "#pragma HLS unroll factor=2\n        ",
    ][next(3) as usize];
    let two = next(2) == 0;
    if two {
        format!(
            "void k(float a[{n}][{n}], float b[{n}][{n}]) {{\n    for (int i = 0; i < {n}; i++) {{\n        for (int j = 0; j < {n}; j++) {{\n        {pragma}b[i][j] = a[i][j] {op} 2.0;\n        }}\n    }}\n}}\n"
        )
    } else {
        format!(
            "void k(float a[{n}], float b[{n}]) {{\n    for (int i = 0; i < {n}; i++) {{\n        {pragma}b[i] = a[i] {op} 2.0;\n    }}\n}}\n"
        )
    }
}
