//! Property tests: the front-end must never panic, only return errors.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary ASCII soup must produce `Ok` or `Err`, never a panic.
    #[test]
    fn parser_never_panics_on_ascii(input in "[ -~\\n\\t]{0,200}") {
        let _ = frontc::parse(&input);
    }

    /// Mutations of a valid kernel (byte deletions) must not panic either.
    #[test]
    fn parser_never_panics_on_mutations(cut_start in 0usize..200, cut_len in 0usize..40) {
        let src = "void k(float a[16], float b[16]) {\n    for (int i = 0; i < 16; i++) {\n        #pragma HLS pipeline\n        b[i] = a[i] * 2.0 + 1.5;\n    }\n}\n";
        let bytes = src.as_bytes();
        let start = cut_start.min(bytes.len());
        let end = (start + cut_len).min(bytes.len());
        let mutated: Vec<u8> = bytes[..start].iter().chain(&bytes[end..]).copied().collect();
        if let Ok(text) = std::str::from_utf8(&mutated) {
            let _ = frontc::parse(text);
        }
    }

    /// Numeric literals round-trip through the lexer.
    #[test]
    fn int_literals_roundtrip(v in 0i64..1_000_000) {
        let toks = frontc::Lexer::new(&format!("{v}")).tokenize().unwrap();
        prop_assert_eq!(&toks[0].kind, &frontc::TokenKind::Int(v));
    }

    /// Identifier-shaped strings lex as single identifiers.
    #[test]
    fn identifiers_lex_whole(name in "[a-zA-Z_][a-zA-Z0-9_]{0,20}") {
        let toks = frontc::Lexer::new(&name).tokenize().unwrap();
        prop_assert_eq!(toks.len(), 2, "ident + eof");
        match &toks[0].kind {
            frontc::TokenKind::Ident(s) => prop_assert_eq!(s, &name),
            other => prop_assert!(false, "unexpected token {other:?}"),
        }
    }
}

/// A grammar-directed generator of valid kernels: everything it produces
/// must pass the full front-end.
#[test]
fn generated_valid_kernels_always_parse() {
    for seed in 0..40u64 {
        let src = kernels_like_source(seed);
        frontc::parse(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
    }
}

fn kernels_like_source(seed: u64) -> String {
    // tiny deterministic generator (LCG) over a safe template family
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut next = move |m: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    let n = [8, 16, 32][next(3) as usize];
    let op = ["+", "*", "-"][next(3) as usize];
    let pragma = ["", "#pragma HLS pipeline\n        ", "#pragma HLS unroll factor=2\n        "]
        [next(3) as usize];
    let two = next(2) == 0;
    if two {
        format!(
            "void k(float a[{n}][{n}], float b[{n}][{n}]) {{\n    for (int i = 0; i < {n}; i++) {{\n        for (int j = 0; j < {n}; j++) {{\n        {pragma}b[i][j] = a[i][j] {op} 2.0;\n        }}\n    }}\n}}\n"
        )
    } else {
        format!(
            "void k(float a[{n}], float b[{n}]) {{\n    for (int i = 0; i < {n}; i++) {{\n        {pragma}b[i] = a[i] {op} 2.0;\n    }}\n}}\n"
        )
    }
}
