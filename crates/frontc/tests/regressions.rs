//! Minimized reproducers for front-end panics found by the fuzz gate.
//!
//! Each case once crashed (stack overflow or arithmetic panic) somewhere in
//! `frontc::parse`; they are pinned here as typed-error regressions. The
//! companion acceptance cases pin that the resource limits sit *above*
//! realistic kernels, so hardening cannot silently shrink the language.

use frontc::{MAX_ARRAY_DIM, MAX_LOOP_TRIP, MAX_NEST_DEPTH};

fn reject(src: &str) -> String {
    frontc::parse(src)
        .err()
        .unwrap_or_else(|| panic!("must be rejected:\n{src}"))
        .to_string()
}

/// Deeply nested parenthesised expressions overflowed the parser stack.
#[test]
fn deep_expression_nesting_is_a_typed_error() {
    let deep = format!(
        "void f(float a[4]) {{ a[0] = {}1.0{}; }}",
        "(".repeat(MAX_NEST_DEPTH + 50),
        ")".repeat(MAX_NEST_DEPTH + 50)
    );
    let msg = reject(&deep);
    assert!(msg.contains("nesting deeper"), "{msg}");
}

/// Deeply nested `if` statements overflowed the statement recursion.
#[test]
fn deep_statement_nesting_is_a_typed_error() {
    let mut body = String::new();
    for _ in 0..MAX_NEST_DEPTH + 50 {
        body.push_str("if (1 < 2) { ");
    }
    body.push_str("a[0] = 1.0;");
    for _ in 0..MAX_NEST_DEPTH + 50 {
        body.push_str(" }");
    }
    let msg = reject(&format!("void f(float a[4]) {{ {body} }}"));
    assert!(msg.contains("nesting deeper"), "{msg}");
}

/// `i <= i64::MAX` once overflowed the inclusive→exclusive bound rewrite.
#[test]
fn inclusive_bound_overflow_is_a_typed_error() {
    let src = format!(
        "void f(float a[4]) {{ for (int i = 0; i <= {}; i++) {{ a[0] = 1.0; }} }}",
        i64::MAX
    );
    let msg = reject(&src);
    assert!(msg.contains("inclusive loop bound overflows"), "{msg}");
}

/// Huge-magnitude loop bounds once overflowed trip-count arithmetic; now
/// either the trip cap or the bound-magnitude cap rejects them before any
/// multiplication.
#[test]
fn extreme_loop_bounds_are_a_typed_error() {
    let src = format!(
        "void f(float a[4]) {{ for (int i = -{m}; i < {m}; i++) {{ a[0] = 1.0; }} }}",
        m = 1i64 << 40
    );
    let msg = reject(&src);
    assert!(msg.contains("trip count"), "{msg}");
    // a short loop placed far outside the bound-magnitude window
    let far = format!(
        "void f(float a[4]) {{ for (int i = {}; i < {}; i++) {{ a[0] = 1.0; }} }}",
        (1i64 << 25) - 10,
        1i64 << 25
    );
    let msg = reject(&far);
    assert!(msg.contains("bounds outside"), "{msg}");
}

/// A single loop above the trip cap is rejected with the cap in the message.
#[test]
fn oversized_trip_count_is_a_typed_error() {
    let src = format!(
        "void f(float a[4]) {{ for (int i = 0; i < {}; i++) {{ a[0] = 1.0; }} }}",
        MAX_LOOP_TRIP + 1
    );
    let msg = reject(&src);
    assert!(msg.contains("trip count"), "{msg}");
}

/// A nest whose per-loop trips are legal but whose product explodes is
/// rejected by the nest-iteration budget.
#[test]
fn oversized_nest_product_is_a_typed_error() {
    let n = 1 << 12; // 4096 per level; 4096^3 = 2^36 > MAX_NEST_ITERATIONS
    let src = format!(
        "void f(float a[4]) {{
            for (int i = 0; i < {n}; i++) {{
                for (int j = 0; j < {n}; j++) {{
                    for (int k = 0; k < {n}; k++) {{ a[0] = 1.0; }}
                }}
            }}
        }}"
    );
    let msg = reject(&src);
    assert!(msg.contains("iterations"), "{msg}");
}

/// Array dimension products above the element cap once overflowed `usize`
/// multiplication in layout code.
#[test]
fn oversized_array_is_a_typed_error() {
    let src = "void f(float a[1048576][1048576]) { a[0][0] = 1.0; }";
    let msg = reject(src);
    assert!(msg.contains("elements"), "{msg}");
    let too_wide = format!("void f(float a[{}]) {{ a[0] = 1.0; }}", MAX_ARRAY_DIM + 1);
    let msg = reject(&too_wide);
    assert!(msg.contains("dimension"), "{msg}");
}

/// Zero-trip and backwards loops are semantic errors, not silent no-ops.
#[test]
fn zero_trip_and_nonpositive_step_loops_are_typed_errors() {
    let msg = reject("void f(float a[4]) { for (int i = 5; i < 5; i++) { a[0] = 1.0; } }");
    assert!(msg.contains("zero trip count"), "{msg}");
    let msg = reject("void f(float a[4]) { for (int i = 0; i < 4; i += 0) { a[0] = 1.0; } }");
    assert!(msg.contains("step must be positive"), "{msg}");
}

/// Acceptance: realistic kernels sit far below every limit.
#[test]
fn limits_admit_realistic_kernels() {
    // a nest just inside the budget: 256 * 256 * 256 = 2^24 < 2^28
    let src = "void f(float a[256][256]) {
        for (int i = 0; i < 256; i++) {
            for (int j = 0; j < 256; j++) {
                for (int k = 0; k < 256; k++) { a[i][j] += 1.0; }
            }
        }
    }";
    frontc::parse(src).expect("in-budget nest must parse");
    // nesting just inside the depth cap
    let deep = format!(
        "void g(float a[4]) {{ a[0] = {}1.0{}; }}",
        "(".repeat(MAX_NEST_DEPTH / 3),
        ")".repeat(MAX_NEST_DEPTH / 3)
    );
    frontc::parse(&deep).expect("in-depth expression must parse");
}
