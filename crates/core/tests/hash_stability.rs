//! Cross-crate digest-stability contract for the workspace's single
//! FNV-1a implementation (`obs::hash`, re-exported as `qor_core::hash`).
//!
//! Digests produced by one crate are recomputed by others: pragma
//! fingerprints seed `hlsim` variance and key the session LRU, trace ids
//! cross HTTP, and the incremental database fingerprints dependency
//! values. These tests pin the byte streams so an accidental change to
//! any producer fails loudly instead of silently splitting caches or
//! corrupting artifacts.

use std::hash::Hasher;

use pragma::{ArrayPartition, LoopId, PartitionKind, PragmaConfig, Unroll};
use qor_core::hash::{fnv1a, Fnv1aHasher, FNV1A_OFFSET, FNV1A_PRIME};

/// Reference vectors for 64-bit FNV-1a, checked through the `qor_core`
/// re-export path (same symbols as `obs::hash`).
#[test]
fn reference_vectors_through_reexport() {
    assert_eq!(FNV1A_OFFSET, 0xcbf2_9ce4_8422_2325);
    assert_eq!(FNV1A_PRIME, 0x0000_0100_0000_01b3);
    assert_eq!(fnv1a(b""), FNV1A_OFFSET);
    assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    // the re-export and the origin are the same function, not a copy
    assert_eq!(fnv1a(b"qor"), obs::hash::fnv1a(b"qor"));
}

/// `PragmaConfig::fingerprint` follows its documented byte stream exactly,
/// reproduced here with a raw `Fnv1aHasher`. Fingerprints are embedded in
/// `.qorjob` snapshots and used as `incr` dependency-value fingerprints,
/// so the stream is a compatibility surface.
#[test]
fn pragma_fingerprint_matches_manual_stream() {
    let mut cfg = PragmaConfig::new();
    let l0 = LoopId::root().child(0);
    cfg.set_pipeline(l0.clone(), true);
    cfg.set_unroll(l0.clone(), Unroll::Factor(4));
    cfg.set_partition(
        "a",
        1,
        ArrayPartition {
            kind: PartitionKind::Cyclic,
            factor: 2,
        },
    );

    let mut h = Fnv1aHasher::new();
    for seg in l0.path() {
        h.write_u16(*seg);
    }
    h.write(&[1, 0]); // pipeline on, flatten off
    h.write(&[1]); // Unroll::Factor tag
    h.write_u32(4);
    h.write(&[0xfe]); // loop terminator
    h.write(b"a");
    h.write(&[1]); // PartitionKind::Cyclic tag
    h.write_u32(2);
    h.write(&[0xff]); // array terminator
    assert_eq!(cfg.fingerprint(), h.finish());
}

/// Trace-id derivation is length-prefixed-free but separator-terminated;
/// the stream must match a manual reconstruction so ids derived by `serve`
/// equal ids recomputed by log tooling.
#[test]
fn trace_derive_matches_manual_stream() {
    let id = obs::trace::derive(&[b"req", b"42"]);
    let mut h = Fnv1aHasher::new();
    h.write(b"req");
    h.write(&[0xff]);
    h.write(b"42");
    h.write(&[0xff]);
    assert_eq!(id.0, h.finish());
}

/// Multi-byte hasher writes commit to little-endian byte order — the
/// property that makes every digest above platform-independent.
#[test]
fn integer_writes_are_platform_independent() {
    let mut a = Fnv1aHasher::new();
    a.write_u64(1);
    a.write_u32(2);
    a.write_u16(3);
    let mut b = Fnv1aHasher::new();
    b.write(&[1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 3, 0]);
    assert_eq!(a.finish(), b.finish());
}
