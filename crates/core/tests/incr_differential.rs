//! Differential and invalidation-precision tests for the incremental
//! query engine.
//!
//! The engine's contract is to be invisible except for speed: for any
//! sequence of configurations, a [`Session`] routing prepares through the
//! per-model `QueryDb` must produce prepared designs byte-identical
//! (same [`PreparedDesign::digest`]) to `HierarchicalModel::prepare`
//! called from scratch. The invalidation tests pin the *precision* side:
//! editing one loop's pragma may recompute only that loop's region, and
//! returning to a previously seen configuration must be answered from the
//! version cache without re-executing any expensive query.
//!
//! `ci.sh` runs this suite at `QOR_THREADS=1` and `QOR_THREADS=4`; the
//! digests compared here must not depend on the worker count.
//!
//! [`PreparedDesign::digest`]: qor_core::PreparedDesign::digest

use std::collections::BTreeMap;
use std::sync::Arc;

use incr::KindStats;
use pragma::{PragmaConfig, Unroll};
use qor_core::{HierarchicalModel, InnerCategory, Session, SharedCache, TrainOptions};

fn model() -> HierarchicalModel {
    HierarchicalModel::new(&TrainOptions::quick().with_hidden(10).with_seed(7))
}

/// A session whose prepared-design LRU is off (capacity 0), so every
/// prepare exercises the query database.
fn incr_session(model: HierarchicalModel) -> Session {
    Session::with_shared(model, Arc::new(SharedCache::with_options(0, true)))
}

fn kind_stats(s: &Session) -> BTreeMap<&'static str, KindStats> {
    s.shared_cache().incr_kind_stats().into_iter().collect()
}

fn delta(
    before: &BTreeMap<&'static str, KindStats>,
    after: &BTreeMap<&'static str, KindStats>,
    kind: &str,
) -> KindStats {
    let b = before.get(kind).copied().unwrap_or_default();
    let a = after.get(kind).copied().unwrap_or_default();
    KindStats {
        hits: a.hits - b.hits,
        misses: a.misses - b.misses,
        recomputes: a.recomputes - b.recomputes,
        validated: a.validated - b.validated,
        reused: a.reused - b.reused,
    }
}

/// Every bundled kernel, over its enumerated design space: incremental
/// and from-scratch prepares are byte-identical. One session serves all
/// kernels, so this also exercises kernel-hash separation inside one
/// database.
#[test]
fn enumerated_configs_byte_identical_across_all_kernels() {
    let session = incr_session(model());
    for k in kernels::all() {
        let func = kernels::lower_kernel(k.name).expect("bundled kernel lowers");
        let space = kernels::design_space(&func);
        let arc = Arc::new(func);
        for cfg in space.enumerate_capped(6) {
            let (prepared, report) = session.prepare_kernel(k.name, &cfg).expect(k.name);
            let cold = session.model().prepare(arc.clone(), cfg.clone());
            assert_eq!(
                prepared.digest(),
                cold.digest(),
                "{} diverged at cfg {:016x}",
                k.name,
                cfg.fingerprint()
            );
            assert!(!report.prepared_cache_hit, "LRU is disabled in this test");
        }
    }
}

/// The `QOR_INCR=0` escape hatch and the engine agree byte-for-byte.
#[test]
fn engine_disabled_matches_engine_enabled() {
    let on = incr_session(model());
    let off = Session::with_shared(model(), Arc::new(SharedCache::with_options(0, false)));
    let func = kernels::lower_kernel("gemm").unwrap();
    for cfg in kernels::design_space(&func).enumerate_capped(8) {
        let (a, ra) = on.prepare_kernel("gemm", &cfg).unwrap();
        let (b, rb) = off.prepare_kernel("gemm", &cfg).unwrap();
        assert_eq!(a.digest(), b.digest());
        // the disabled path must not touch the database at all
        assert_eq!(rb.incr, qor_core::IncrCounts::default());
        assert!(ra.incr.misses + ra.incr.recomputes > 0);
    }
    assert!(off.shared_cache().incr_kind_stats().is_empty());
}

/// Picks a kernel whose trivial-config hierarchy has at least two inner
/// regions, one of them single-level (so a factor-2 unroll cannot move
/// loops between hierarchy levels).
fn multi_region_kernel() -> (&'static str, pragma::LoopId, usize) {
    for k in kernels::all() {
        let func = kernels::lower_kernel(k.name).unwrap();
        let h = qor_core::split_hierarchy(&func, &PragmaConfig::new());
        if h.inner.len() < 2 {
            continue;
        }
        if let Some(region) = h
            .inner
            .iter()
            .find(|r| r.category == InnerCategory::SingleLevel)
        {
            return (k.name, region.id.clone(), h.inner.len());
        }
    }
    panic!("no bundled kernel offers two regions with a single-level one");
}

/// Invalidation precision: editing one loop's unroll factor re-executes
/// exactly that loop's expensive region query; every other region
/// revalidates green.
#[test]
fn single_region_edit_recomputes_only_that_region() {
    let session = incr_session(model());
    let (name, region_id, regions) = multi_region_kernel();

    let base = PragmaConfig::new();
    session.prepare_kernel(name, &base).unwrap();
    let before = kind_stats(&session);

    let mut edited = base.clone();
    edited.set_unroll(region_id, Unroll::Factor(2));
    let (_, report) = session.prepare_kernel(name, &edited).unwrap();
    let after = kind_stats(&session);

    let lp = delta(&before, &after, "loop_prepared");
    assert_eq!(lp.recomputes, 1, "exactly the edited region re-executes");
    assert_eq!(lp.misses, 0, "no new region keys appear");
    assert_eq!(
        lp.hits,
        regions as u64 - 1,
        "all {} other regions stay green",
        regions - 1
    );
    // only the edited region's restricted config changed
    let rc = delta(&before, &after, "region_cfg");
    assert_eq!(rc.recomputes, 1);
    // and the per-request attribution in the report agrees with the
    // database-wide counters
    assert_eq!(report.incr.recomputes, {
        let all = ["hierarchy", "loop_role", "region_cfg", "loop_prepared"];
        all.iter()
            .map(|k| delta(&before, &after, k).recomputes)
            .sum()
    });
}

/// Returning to a previously seen configuration (A → B → A) is answered
/// from the version cache: no expensive query re-executes.
#[test]
fn version_cache_answers_reverted_edits_without_recompute() {
    let session = incr_session(model());
    let (name, region_id, _) = multi_region_kernel();

    let base = PragmaConfig::new();
    let mut edited = base.clone();
    edited.set_unroll(region_id, Unroll::Factor(2));

    let (a1, _) = session.prepare_kernel(name, &base).unwrap();
    session.prepare_kernel(name, &edited).unwrap();
    let before = kind_stats(&session);
    let (a2, report) = session.prepare_kernel(name, &base).unwrap();
    let after = kind_stats(&session);

    assert_eq!(a1.digest(), a2.digest());
    let lp = delta(&before, &after, "loop_prepared");
    assert_eq!(lp.recomputes, 0, "revert must not rebuild any region");
    assert_eq!(lp.misses, 0);
    assert!(
        lp.reused >= 1,
        "the reverted region comes from the version cache"
    );
    assert_eq!(report.incr.recomputes, 0);
}
