#![warn(missing_docs)]
//! The paper's contribution: hierarchical source-to-post-route QoR
//! prediction with GNNs.
//!
//! The crate wires the substrates together into the methodology of §III:
//!
//! 1. [`features`] — annotates CDFG nodes with the Table II features
//!    (optype one-hot, #invocation, degrees, #cycle, delay, LUT/DSP/FF from
//!    the operator library) and builds graph-level loop features (II from
//!    the analytic formula, TC from the IR).
//! 2. [`hierarchy`] — splits a configured design into **inner-hierarchy**
//!    loops (the paper's four categories) and the **outer hierarchy**.
//! 3. [`dataset`] — generates labeled datasets by sweeping pragma
//!    configurations through the simulated tool flow ([`hlsim`]).
//! 4. [`HierarchicalModel`] — `GNN_p` / `GNN_np` for pipelined and
//!    non-pipelined inner loops, super-node condensation, and `GNN_g` for
//!    the full application; hierarchical training (inner models frozen
//!    before the global model trains on their outputs) and end-to-end
//!    source-to-QoR inference.
//!
//! # Example
//!
//! ```no_run
//! use qor_core::{HierarchicalModel, TrainOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let opts = TrainOptions::quick();
//! let (model, stats) = HierarchicalModel::train_on_kernels(&opts)?;
//! println!("GNN_g latency MAPE: {:.2}%", stats.global.latency_mape);
//!
//! let func = kernels::lower_kernel("gemm")?;
//! let qor = model.predict(&func, &pragma::PragmaConfig::default());
//! println!("predicted latency: {} cycles", qor.latency);
//! # Ok(())
//! # }
//! ```

pub mod dataset;
pub mod error;
pub mod features;
pub mod hash;
pub mod hierarchy;
pub mod incr;
mod model;
mod session;
pub mod wire;

pub use dataset::{
    generate, generate_for, generate_from_functions, DataOptions, DesignSample, LabeledDesigns,
};
pub use error::QorError;
pub use features::{
    graph_aggregates, graph_to_gnn, loop_level_features, AGG_DIM, FEATURE_DIM, LOOP_FEATURE_DIM,
};
pub use hash::{fnv1a, Fnv1aHasher, FnvBuildHasher};
pub use hierarchy::{split_hierarchy, Hierarchy, InnerCategory, InnerLoop};
pub use incr::IncrCounts;
pub use model::{
    GlobalEval, HierarchicalModel, InnerEval, PreparedDesign, TrainOptions, TrainStats, BANKS,
};
pub use session::{CacheStats, PredictReport, Session, SharedCache, DEFAULT_CACHE_CAP};
