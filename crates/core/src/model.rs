//! The hierarchical model: `GNN_p`, `GNN_np`, `GNN_g` (paper §III-C/D).

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use cdfg::{GraphBuilder, GraphOptions, SuperFeatures};
use gnn::{mape, Batch, ConvKind, Encoder, EncoderConfig, GraphData, Mlp, Normalizer};
use hir::Function;
use hlsim::Qor;
use pragma::{LoopId, PragmaConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use tensor::{AdamConfig, GradSet, Matrix, ParamStore, Tape, Var};

use crate::dataset::{self, DataOptions, DesignSample, LabeledDesigns};
use crate::error::QorError;
use crate::features::{
    graph_aggregates, graph_to_gnn, loop_level_features, AGG_DIM, FEATURE_DIM, LOOP_FEATURE_DIM,
};
use crate::hierarchy::split_hierarchy;

fn log1p(v: f64) -> f32 {
    (v.max(0.0) + 1.0).ln() as f32
}

fn expm1(v: f32) -> f64 {
    (f64::from(v).exp() - 1.0).max(0.0)
}

/// Training options for the full hierarchical pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainOptions {
    /// Propagation-layer family for all three models.
    pub conv: ConvKind,
    /// Hidden width.
    pub hidden: usize,
    /// Epochs for `GNN_p`/`GNN_np`.
    pub inner_epochs: usize,
    /// Epochs for `GNN_g`.
    pub global_epochs: usize,
    /// Mini-batch size (graphs).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed for weight init and shuffling.
    pub seed: u64,
    /// Dataset-generation options.
    pub data: DataOptions,
    /// Node cap for graph construction.
    pub graph_max_nodes: usize,
    /// Progress print period in epochs (0 = silent).
    pub log_every: usize,
    /// Ablation switch: train a single inner model on pipelined and
    /// non-pipelined loops together instead of separate `GNN_p`/`GNN_np`
    /// (the paper found separate models more accurate).
    pub shared_inner: bool,
}

impl TrainOptions {
    /// Fast configuration for tests and CI (minutes end to end).
    pub fn quick() -> Self {
        TrainOptions {
            conv: ConvKind::Sage,
            hidden: 24,
            inner_epochs: 60,
            global_epochs: 60,
            batch_size: 24,
            lr: 4e-3,
            seed: 7,
            data: DataOptions {
                max_designs_per_kernel: 60,
                seed: 17,
            },
            graph_max_nodes: 320,
            log_every: 0,
            shared_inner: false,
        }
    }

    /// Paper-scale configuration (hundreds of designs per kernel, 250
    /// epochs).
    pub fn paper() -> Self {
        TrainOptions {
            conv: ConvKind::Sage,
            hidden: 48,
            inner_epochs: 250,
            global_epochs: 250,
            batch_size: 32,
            lr: 3e-3,
            seed: 7,
            data: DataOptions {
                max_designs_per_kernel: 400,
                seed: 17,
            },
            graph_max_nodes: 640,
            log_every: 25,
            shared_inner: false,
        }
    }

    /// Sets the epoch budget for **both** the inner models and `GNN_g`.
    #[must_use]
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.inner_epochs = epochs;
        self.global_epochs = epochs;
        self
    }

    /// Sets the weight-init/shuffle seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the propagation-layer family for all three models.
    #[must_use]
    pub fn with_conv(mut self, conv: ConvKind) -> Self {
        self.conv = conv;
        self
    }

    /// Sets the hidden width.
    #[must_use]
    pub fn with_hidden(mut self, hidden: usize) -> Self {
        self.hidden = hidden;
        self
    }

    /// Sets the mini-batch size (graphs).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the Adam learning rate.
    #[must_use]
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Sets the per-kernel design cap for dataset generation (0 = unlimited).
    #[must_use]
    pub fn with_max_designs(mut self, max_designs_per_kernel: usize) -> Self {
        self.data.max_designs_per_kernel = max_designs_per_kernel;
        self
    }

    /// Sets the dataset split/shuffle seed.
    #[must_use]
    pub fn with_data_seed(mut self, seed: u64) -> Self {
        self.data.seed = seed;
        self
    }

    /// Sets the progress print period in epochs (0 = silent).
    #[must_use]
    pub fn with_log_every(mut self, log_every: usize) -> Self {
        self.log_every = log_every;
        self
    }

    /// Toggles the shared-inner-model ablation.
    #[must_use]
    pub fn with_shared_inner(mut self, shared_inner: bool) -> Self {
        self.shared_inner = shared_inner;
        self
    }

    fn encoder_config(&self) -> EncoderConfig {
        EncoderConfig::new(self.conv, FEATURE_DIM, self.hidden)
    }

    fn graph_options(&self) -> GraphOptions {
        GraphOptions {
            max_nodes: self.graph_max_nodes,
        }
    }
}

/// Test-set MAPE of one inner model (Table III rows for `GNN_p`/`GNN_np`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct InnerEval {
    /// Loop latency MAPE (%).
    pub latency_mape: f32,
    /// Iteration-latency MAPE (%).
    pub il_mape: f32,
    /// DSP MAPE (%).
    pub dsp_mape: f32,
    /// LUT MAPE (%).
    pub lut_mape: f32,
    /// FF MAPE (%).
    pub ff_mape: f32,
    /// Test samples evaluated.
    pub n: usize,
}

/// Test-set MAPE of `GNN_g` (Table III rows for the application level).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GlobalEval {
    /// Application latency MAPE (%).
    pub latency_mape: f32,
    /// DSP MAPE (%).
    pub dsp_mape: f32,
    /// LUT MAPE (%).
    pub lut_mape: f32,
    /// FF MAPE (%).
    pub ff_mape: f32,
    /// Test designs evaluated.
    pub n: usize,
}

/// Training statistics (the numbers Table III reports).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrainStats {
    /// `GNN_p` test metrics.
    pub pipelined: InnerEval,
    /// `GNN_np` test metrics.
    pub non_pipelined: InnerEval,
    /// `GNN_g` test metrics.
    pub global: GlobalEval,
    /// Dataset sizes `(n_p, n_np, n_g)` after deduplication.
    pub dataset_sizes: (usize, usize, usize),
}

// ------------------------------------------------------------ inner model

/// `GNN_p` / `GNN_np`: encoder + iteration-latency head + latency head
/// (taking the predicted IL and the loop-level features) + resource head.
#[derive(Debug, Clone)]
struct InnerModel {
    encoder: Encoder,
    head_il: Mlp,
    head_lat: Mlp,
    head_res: Mlp,
}

impl InnerModel {
    fn new(store: &mut ParamStore, name: &str, cfg: &EncoderConfig, rng: &mut StdRng) -> Self {
        let encoder = Encoder::new(store, &format!("{name}.enc"), cfg, rng);
        let pooled = encoder.pooled_dim() + LOOP_FEATURE_DIM + AGG_DIM;
        InnerModel {
            head_il: Mlp::new(store, &format!("{name}.il"), &[pooled, cfg.hidden, 1], rng),
            head_lat: Mlp::new(
                store,
                &format!("{name}.lat"),
                &[1 + LOOP_FEATURE_DIM + AGG_DIM, cfg.hidden, 1],
                rng,
            ),
            head_res: Mlp::new(store, &format!("{name}.res"), &[pooled, cfg.hidden, 3], rng),
            encoder,
        }
    }

    /// Returns `(il, latency, resources)` prediction vars (log space).
    fn forward(&self, store: &ParamStore, t: &mut Tape, batch: &Batch) -> (Var, Var, Var) {
        let pooled = self.encoder.forward_pooled(store, t, batch);
        let gf = t.leaf(batch.g_feats.clone());
        let pooled_gf = t.concat_cols(&[pooled, gf]);
        let il = self.head_il.forward(store, t, pooled_gf);
        let lat_in = t.concat_cols(&[il, gf]);
        let lat = self.head_lat.forward(store, t, lat_in);
        let res = self.head_res.forward(store, t, pooled_gf);
        (il, lat, res)
    }
}

/// `GNN_g`: encoder + latency head + resource head over the condensed graph.
#[derive(Debug, Clone)]
struct GlobalModel {
    encoder: Encoder,
    head_lat: Mlp,
    head_res: Mlp,
}

impl GlobalModel {
    fn new(store: &mut ParamStore, cfg: &EncoderConfig, rng: &mut StdRng) -> Self {
        let encoder = Encoder::new(store, "g.enc", cfg, rng);
        let pooled = encoder.pooled_dim() + AGG_DIM;
        GlobalModel {
            head_lat: Mlp::new(store, "g.lat", &[pooled, cfg.hidden, 1], rng),
            head_res: Mlp::new(store, "g.res", &[pooled, cfg.hidden, 3], rng),
            encoder,
        }
    }

    fn forward(&self, store: &ParamStore, t: &mut Tape, batch: &Batch) -> (Var, Var) {
        let pooled = self.encoder.forward_pooled(store, t, batch);
        let gf = t.leaf(batch.g_feats.clone());
        let pooled_gf = t.concat_cols(&[pooled, gf]);
        (
            self.head_lat.forward(store, t, pooled_gf),
            self.head_res.forward(store, t, pooled_gf),
        )
    }
}

// --------------------------------------------------------------- samples

/// Inner-hierarchy training sample: subgraph + loop features + log targets
/// `[il, latency, lut, ff, dsp]`.
#[derive(Debug, Clone)]
struct InnerSample {
    graph: GraphData,
    y: [f32; 5],
}

#[derive(Debug, Clone)]
struct GlobalSample {
    graph: GraphData,
    /// `[latency, lut, ff, dsp]` in log space.
    y: [f32; 4],
}

/// Stable checkpoint bank names, in serialization order: `GNN_p`,
/// `GNN_np`, `GNN_g`.
pub const BANKS: [&str; 3] = ["gnn_p", "gnn_np", "gnn_g"];

// -------------------------------------------------------------- prepared

/// The weight-independent front half of one design's prediction: the
/// hierarchy split, per-inner-loop subgraph construction and feature
/// annotation, which dominate end-to-end inference cost.
///
/// Built once by [`HierarchicalModel::prepare`] and replayed by
/// [`HierarchicalModel::predict_prepared`], which only pays the GNN
/// forward passes. [`crate::Session`] memoizes these per
/// `(kernel source, pragma config)` for DSE-style repeated queries.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedDesign {
    pub(crate) func: Arc<Function>,
    pub(crate) cfg: PragmaConfig,
    pub(crate) inner: Vec<Arc<PreparedInner>>,
}

impl PreparedDesign {
    /// The lowered function this design was prepared from.
    pub fn function(&self) -> &Arc<Function> {
        &self.func
    }

    /// The pragma configuration baked into the prepared graphs.
    pub fn config(&self) -> &PragmaConfig {
        &self.cfg
    }

    /// Number of inner-hierarchy loops with prepared subgraphs.
    pub fn num_inner(&self) -> usize {
        self.inner.len()
    }

    /// Total prepared-graph nodes (rough memory-footprint proxy).
    pub fn num_nodes(&self) -> usize {
        self.inner.iter().map(|i| i.data.num_nodes()).sum()
    }

    /// Stable FNV-1a digest over every byte that feeds the back half:
    /// function identity, full pragma configuration and each prepared
    /// inner loop (graph tensors included). Two designs with equal digests
    /// predict identically; the differential tests and `qor-bench
    /// incr_sweep` use this to prove incremental == from-scratch.
    pub fn digest(&self) -> u64 {
        use std::hash::Hasher as _;
        let mut h = crate::hash::Fnv1aHasher::new();
        h.write(self.func.name.as_bytes());
        h.write_u64(self.cfg.fingerprint());
        h.write_usize(self.inner.len());
        for inner in &self.inner {
            h.write_u64(inner.digest());
        }
        h.finish()
    }
}

/// One inner loop's prepared subgraph plus the loop constants the
/// super-node condensation needs.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedInner {
    pub(crate) id: LoopId,
    pub(crate) pipelined: bool,
    pub(crate) data: GraphData,
    pub(crate) tc: u64,
    pub(crate) unroll: u64,
    pub(crate) ii: f64,
}

impl PreparedInner {
    /// Stable FNV-1a digest of every field, graph tensors included
    /// (float bits, not rounded values).
    pub(crate) fn digest(&self) -> u64 {
        use std::hash::Hasher as _;
        let mut h = crate::hash::Fnv1aHasher::new();
        for seg in self.id.path() {
            h.write_u16(*seg);
        }
        h.write(&[0xfe, u8::from(self.pipelined)]);
        h.write_u64(self.tc);
        h.write_u64(self.unroll);
        h.write_u64(self.ii.to_bits());
        h.write_usize(self.data.x.rows());
        h.write_usize(self.data.x.cols());
        for &v in self.data.x.as_slice() {
            h.write_u32(v.to_bits());
        }
        for &e in &self.data.src {
            h.write_u32(e);
        }
        for &e in &self.data.dst {
            h.write_u32(e);
        }
        for &v in &self.data.g_feats {
            h.write_u32(v.to_bits());
        }
        h.finish()
    }
}

/// Builds one inner loop's prepared subgraph, feature annotation and
/// analytic constants.
///
/// This is the unit of work the incremental pipeline memoizes per loop:
/// both [`HierarchicalModel::prepare`] and the `incr` `LoopPrepared` query
/// call this exact function, which is what makes incremental results
/// byte-identical to cold runs by construction.
pub(crate) fn prepare_one_inner(
    func: &Function,
    cfg: &PragmaConfig,
    id: &LoopId,
    pipelined: bool,
    opts: GraphOptions,
) -> PreparedInner {
    let graph = GraphBuilder::new(func, cfg)
        .options(opts)
        .subgraph(id.clone())
        .build();
    let mut data = graph_to_gnn(&graph);
    data.g_feats = loop_level_features(func, cfg, id, pipelined);
    data.g_feats.extend(graph_aggregates(&graph));
    let meta = func.loop_meta(id);
    let tc = meta.map(|m| m.trip_count).unwrap_or(1).max(1);
    let unroll = cfg.loop_pragma(id).unroll.factor(tc);
    PreparedInner {
        id: id.clone(),
        pipelined,
        data,
        tc,
        unroll,
        ii: hlsim::analytic_ii(func, cfg, id) as f64,
    }
}

// ----------------------------------------------------------------- model

/// The full hierarchical source-to-post-route QoR predictor.
///
/// See the [crate docs](crate) for the end-to-end flow and
/// [`TrainOptions`] for knobs.
#[derive(Debug)]
pub struct HierarchicalModel {
    opts: TrainOptions,
    store_p: ParamStore,
    model_p: InnerModel,
    norm_p: Normalizer,
    store_np: ParamStore,
    model_np: InnerModel,
    norm_np: Normalizer,
    store_g: ParamStore,
    model_g: GlobalModel,
    norm_g: Normalizer,
}

impl HierarchicalModel {
    /// Creates an untrained model.
    pub fn new(opts: &TrainOptions) -> Self {
        let enc_cfg = opts.encoder_config();
        let mut rng = tensor::init::seeded_rng(opts.seed);
        let mut store_p = ParamStore::new();
        let model_p = InnerModel::new(&mut store_p, "p", &enc_cfg, &mut rng);
        let mut store_np = ParamStore::new();
        let model_np = InnerModel::new(&mut store_np, "np", &enc_cfg, &mut rng);
        let mut store_g = ParamStore::new();
        let model_g = GlobalModel::new(&mut store_g, &enc_cfg, &mut rng);
        HierarchicalModel {
            opts: *opts,
            store_p,
            model_p,
            norm_p: Normalizer::identity(5),
            store_np,
            model_np,
            norm_np: Normalizer::identity(5),
            store_g,
            model_g,
            norm_g: Normalizer::identity(4),
        }
    }

    /// Generates the dataset from the 12 training kernels and trains the
    /// three models hierarchically.
    ///
    /// # Errors
    ///
    /// Propagates dataset-generation failures.
    pub fn train_on_kernels(opts: &TrainOptions) -> Result<(Self, TrainStats), QorError> {
        let designs = dataset::generate(&opts.data)?;
        Self::train_with_designs(opts, &designs)
    }

    /// Trains on an existing labeled dataset (used by the benchmark
    /// binaries to reuse one sweep across model variants).
    ///
    /// # Errors
    ///
    /// Returns [`QorError::UnknownKernel`] if a design references a kernel
    /// the dataset never registered.
    pub fn train_with_designs(
        opts: &TrainOptions,
        designs: &LabeledDesigns,
    ) -> Result<(Self, TrainStats), QorError> {
        let mut model = Self::new(opts);
        let stats = model.fit(designs)?;
        Ok((model, stats))
    }

    /// Trains this model in place, returning test metrics.
    ///
    /// # Errors
    ///
    /// Returns [`QorError::UnknownKernel`] if a design references a kernel
    /// the dataset never registered.
    pub fn fit(&mut self, designs: &LabeledDesigns) -> Result<TrainStats, QorError> {
        let fit_sp = obs::span("fit");
        fit_sp.attr("designs", designs.len());
        let opts = self.opts;
        // 1. inner datasets, deduplicated across designs AND across splits
        // (an inner region already seen in training must not re-appear in
        // the test set)
        let mut seen = HashSet::new();
        let (p_train, np_train) = self.inner_samples(designs, &designs.train, &mut seen)?;
        let (p_val, np_val) = self.inner_samples(designs, &designs.val, &mut seen)?;
        let (p_test, np_test) = self.inner_samples(designs, &designs.test, &mut seen)?;

        // 2. fit target normalizers, train GNN_p and GNN_np, then freeze
        self.norm_p = Normalizer::fit(&p_train.iter().map(|s| s.y.to_vec()).collect::<Vec<_>>());
        self.norm_np = Normalizer::fit(&np_train.iter().map(|s| s.y.to_vec()).collect::<Vec<_>>());
        let mut rng = tensor::init::seeded_rng(opts.seed ^ 0xabcd);
        if opts.shared_inner {
            // ablation: one model for all inner loops (both dispatch paths
            // share the same trained weights)
            let combined: Vec<InnerSample> =
                p_train.iter().chain(np_train.iter()).cloned().collect();
            self.norm_p =
                Normalizer::fit(&combined.iter().map(|s| s.y.to_vec()).collect::<Vec<_>>());
            self.norm_np = self.norm_p.clone();
            train_inner(
                &mut self.store_p,
                &self.model_p,
                &combined,
                &self.norm_p,
                &opts,
                &mut rng,
                "GNN_shared",
            );
            // np inference routes through the shared model (see
            // `inner_model_for`); nothing to copy
        } else {
            train_inner(
                &mut self.store_p,
                &self.model_p,
                &p_train,
                &self.norm_p,
                &opts,
                &mut rng,
                "GNN_p",
            );
            train_inner(
                &mut self.store_np,
                &self.model_np,
                &np_train,
                &self.norm_np,
                &opts,
                &mut rng,
                "GNN_np",
            );
        }
        let _ = (&p_val, &np_val); // early stopping is handled by epochs here

        // 3. global dataset from frozen inner predictions
        let g_train = self.global_samples(designs, &designs.train)?;
        let g_test = self.global_samples(designs, &designs.test)?;
        self.norm_g = Normalizer::fit(&g_train.iter().map(|s| s.y.to_vec()).collect::<Vec<_>>());
        train_global(
            &mut self.store_g,
            &self.model_g,
            &g_train,
            &self.norm_g,
            &opts,
            &mut rng,
        );

        let (np_store, np_model, np_norm) = self.inner_model_for(false);
        Ok(TrainStats {
            pipelined: self.eval_inner(&self.store_p, &self.model_p, &self.norm_p, &p_test),
            non_pipelined: self.eval_inner(np_store, np_model, np_norm, &np_test),
            global: self.eval_global(&g_test),
            dataset_sizes: (
                p_train.len() + p_test.len() + p_val.len(),
                np_train.len() + np_test.len() + np_val.len(),
                designs.len(),
            ),
        })
    }

    /// End-to-end source-to-post-route prediction for one configured design
    /// — no tool flow involved.
    pub fn predict(&self, func: &Function, cfg: &PragmaConfig) -> Qor {
        obs::metrics::counter_add("qor/predictions", 1);
        let inner = self.prepare_inner(func, cfg);
        self.forward_design(func, cfg, &inner)
    }

    /// Builds the weight-independent front half of a prediction: the
    /// hierarchy split plus every inner loop's subgraph and feature
    /// annotation.
    ///
    /// The result depends only on the function, the pragma configuration
    /// and the model's `graph_max_nodes` option — never on the weights —
    /// so it can be cached across queries and replayed with
    /// [`HierarchicalModel::predict_prepared`] for a bit-identical result.
    pub fn prepare(&self, func: Arc<Function>, cfg: PragmaConfig) -> PreparedDesign {
        let inner = self.prepare_inner(&func, &cfg);
        PreparedDesign { func, cfg, inner }
    }

    /// Stable fingerprint of every option [`HierarchicalModel::prepare`]
    /// reads (today only `graph_max_nodes`).
    ///
    /// Two models with equal fingerprints produce bit-identical
    /// [`PreparedDesign`]s for the same `(function, config)`, so a shared
    /// prepared-design cache may serve both; models with different
    /// fingerprints must never share entries. The version tag guards
    /// against silently reusing stale cache keys if `prepare` ever grows
    /// another option dependency.
    pub fn prepare_fingerprint(&self) -> u64 {
        use std::hash::Hasher as _;
        let mut h = crate::hash::Fnv1aHasher::new();
        h.write(b"prepare-v1");
        h.write_u64(self.opts.graph_max_nodes as u64);
        h.finish()
    }

    /// Predicts from a prepared front half, paying only the GNN forward
    /// passes (inner models, condensation, global model).
    ///
    /// Bit-identical to [`HierarchicalModel::predict`] on the same
    /// function/configuration: both run exactly the same graph
    /// construction and floating-point operations in the same order.
    pub fn predict_prepared(&self, prepared: &PreparedDesign) -> Qor {
        obs::metrics::counter_add("qor/predictions", 1);
        self.forward_design(&prepared.func, &prepared.cfg, &prepared.inner)
    }

    /// Predicts the QoR of every inner-hierarchy loop and packages it as
    /// super-node features (the condensation inputs).
    pub fn predict_supers(
        &self,
        func: &Function,
        cfg: &PragmaConfig,
    ) -> BTreeMap<LoopId, SuperFeatures> {
        self.supers_of(&self.prepare_inner(func, cfg))
    }

    /// The front half shared by [`HierarchicalModel::predict`] and
    /// [`HierarchicalModel::prepare`]: subgraph construction + feature
    /// annotation + the analytic loop constants, all weight-independent.
    fn prepare_inner(&self, func: &Function, cfg: &PragmaConfig) -> Vec<Arc<PreparedInner>> {
        let hierarchy = split_hierarchy(func, cfg);
        hierarchy
            .inner
            .iter()
            .map(|inner| {
                Arc::new(prepare_one_inner(
                    func,
                    cfg,
                    &inner.id,
                    inner.pipelined,
                    self.opts.graph_options(),
                ))
            })
            .collect()
    }

    /// Inner-model forward passes over prepared subgraphs, producing the
    /// super-node features.
    fn supers_of(&self, inner: &[Arc<PreparedInner>]) -> BTreeMap<LoopId, SuperFeatures> {
        let mut out = BTreeMap::new();
        for pi in inner {
            let (store, model, norm) = self.inner_model_for(pi.pipelined);
            let batch = Batch::from_graphs(&[&pi.data], true);
            let mut t = Tape::new();
            let (il, lat, res) = model.forward(store, &mut t, &batch);
            let resm = t.value(res).clone();
            let mut y = [
                t.value(il)[(0, 0)],
                t.value(lat)[(0, 0)],
                resm[(0, 0)],
                resm[(0, 1)],
                resm[(0, 2)],
            ];
            norm.inverse(&mut y);
            out.insert(
                pi.id.clone(),
                SuperFeatures {
                    latency: expm1(y[1]),
                    il: expm1(y[0]),
                    ii: pi.ii,
                    tc: pi.tc.div_ceil(pi.unroll.max(1)) as f64,
                    lut: expm1(y[2]),
                    ff: expm1(y[3]),
                    dsp: expm1(y[4]),
                },
            );
        }
        out
    }

    /// The weight-dependent back half: inner forwards, condensation and the
    /// global model.
    fn forward_design(
        &self,
        func: &Function,
        cfg: &PragmaConfig,
        inner: &[Arc<PreparedInner>],
    ) -> Qor {
        let supers = self.supers_of(inner);
        let graph = GraphBuilder::new(func, cfg)
            .options(self.opts.graph_options())
            .condense(supers)
            .build();
        let mut data = graph_to_gnn(&graph);
        data.g_feats = graph_aggregates(&graph);
        let batch = Batch::from_graphs(&[&data], true);
        let mut t = Tape::new();
        let (lat, res) = self.model_g.forward(&self.store_g, &mut t, &batch);
        let resm = t.value(res).clone();
        let mut y = [
            t.value(lat)[(0, 0)],
            resm[(0, 0)],
            resm[(0, 1)],
            resm[(0, 2)],
        ];
        self.norm_g.inverse(&mut y);
        Qor {
            latency: expm1(y[0]).round() as u64,
            lut: expm1(y[1]).round() as u64,
            ff: expm1(y[2]).round() as u64,
            dsp: expm1(y[3]).round() as u64,
        }
    }

    /// The training options this model was built with.
    pub fn options(&self) -> &TrainOptions {
        &self.opts
    }

    /// The three parameter banks as `(name, store)`, in [`BANKS`] order.
    ///
    /// Checkpoint serializers iterate this; the names are part of the
    /// on-disk format and must stay stable.
    pub fn banks(&self) -> [(&'static str, &ParamStore); 3] {
        [
            (BANKS[0], &self.store_p),
            (BANKS[1], &self.store_np),
            (BANKS[2], &self.store_g),
        ]
    }

    /// Mutable bank access, in [`BANKS`] order (checkpoint restore).
    pub fn banks_mut(&mut self) -> [(&'static str, &mut ParamStore); 3] {
        [
            (BANKS[0], &mut self.store_p),
            (BANKS[1], &mut self.store_np),
            (BANKS[2], &mut self.store_g),
        ]
    }

    /// The target normalizer attached to a bank of [`BANKS`].
    pub fn normalizer(&self, bank: &str) -> Option<&Normalizer> {
        match bank {
            b if b == BANKS[0] => Some(&self.norm_p),
            b if b == BANKS[1] => Some(&self.norm_np),
            b if b == BANKS[2] => Some(&self.norm_g),
            _ => None,
        }
    }

    /// Replaces the target normalizer of a bank (checkpoint restore).
    ///
    /// # Errors
    ///
    /// [`QorError::Corrupt`] for an unknown bank name and
    /// [`QorError::Shape`] when the normalizer dimension does not match the
    /// bank's target width (5 for the inner models, 4 for `GNN_g`).
    pub fn set_normalizer(&mut self, bank: &str, norm: Normalizer) -> Result<(), QorError> {
        let slot = match bank {
            b if b == BANKS[0] => &mut self.norm_p,
            b if b == BANKS[1] => &mut self.norm_np,
            b if b == BANKS[2] => &mut self.norm_g,
            _ => return Err(QorError::Corrupt(format!("unknown bank {bank:?}"))),
        };
        if norm.dim() != slot.dim() {
            return Err(QorError::Shape(format!(
                "normalizer for bank {bank:?} has dim {}, expected {}",
                norm.dim(),
                slot.dim()
            )));
        }
        *slot = norm;
        Ok(())
    }

    /// Selects the inner model for a loop: `GNN_p`, `GNN_np`, or the shared
    /// model when the `shared_inner` ablation is active.
    fn inner_model_for(&self, pipelined: bool) -> (&ParamStore, &InnerModel, &Normalizer) {
        if pipelined || self.opts.shared_inner {
            (&self.store_p, &self.model_p, &self.norm_p)
        } else {
            (&self.store_np, &self.model_np, &self.norm_np)
        }
    }

    /// Saves the three parameter stores and target normalizers to a
    /// directory (created if needed).
    ///
    /// # Errors
    ///
    /// Returns any filesystem error.
    pub fn save(&self, dir: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        for (name, store) in [
            ("gnn_p.params", &self.store_p),
            ("gnn_np.params", &self.store_np),
            ("gnn_g.params", &self.store_g),
        ] {
            let mut f = std::fs::File::create(dir.join(name))?;
            store.save(&mut f)?;
        }
        let mut norms = String::new();
        for (tag, norm) in [
            ("p", &self.norm_p),
            ("np", &self.norm_np),
            ("g", &self.norm_g),
        ] {
            norms.push_str(tag);
            for v in norm.mean().iter().chain(norm.std()) {
                norms.push_str(&format!(" {v}"));
            }
            norms.push('\n');
        }
        std::fs::write(dir.join("normalizers.txt"), norms)
    }

    /// Restores parameters and normalizers saved by
    /// [`HierarchicalModel::save`] into a model built with the **same**
    /// [`TrainOptions`] architecture.
    ///
    /// # Errors
    ///
    /// Returns filesystem or format errors (including architecture
    /// mismatches).
    pub fn load(&mut self, dir: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        use std::io::BufReader;
        let dir = dir.as_ref();
        for (name, store) in [
            ("gnn_p.params", &mut self.store_p),
            ("gnn_np.params", &mut self.store_np),
            ("gnn_g.params", &mut self.store_g),
        ] {
            let f = std::fs::File::open(dir.join(name))?;
            store.load(BufReader::new(f))?;
        }
        let text = std::fs::read_to_string(dir.join("normalizers.txt"))?;
        let bad = || std::io::Error::new(std::io::ErrorKind::InvalidData, "bad normalizer file");
        for line in text.lines() {
            let mut it = line.split_whitespace();
            let tag = it.next().ok_or_else(bad)?;
            let vals: Vec<f32> = it.filter_map(|v| v.parse().ok()).collect();
            if !vals.len().is_multiple_of(2) || vals.is_empty() {
                return Err(bad());
            }
            let width = vals.len() / 2;
            let norm = Normalizer::from_stats(vals[..width].to_vec(), vals[width..].to_vec());
            match tag {
                "p" => self.norm_p = norm,
                "np" => self.norm_np = norm,
                "g" => self.norm_g = norm,
                _ => return Err(bad()),
            }
        }
        Ok(())
    }

    // -------------------------------------------------------- internals

    fn inner_samples(
        &self,
        designs: &LabeledDesigns,
        subset: &[DesignSample],
        seen: &mut HashSet<u64>,
    ) -> Result<(Vec<InnerSample>, Vec<InnerSample>), QorError> {
        let mut p = Vec::new();
        let mut np = Vec::new();
        for sample in subset {
            let func = designs.function_of(sample)?;
            let hierarchy = split_hierarchy(func, &sample.config);
            for inner in &hierarchy.inner {
                let Some(lq) = sample.report.loops.get(&inner.id) else {
                    continue;
                };
                let key = region_key(func, &sample.config, &inner.id, &sample.kernel);
                if !seen.insert(key) {
                    continue;
                }
                let graph = GraphBuilder::new(func, &sample.config)
                    .options(self.opts.graph_options())
                    .subgraph(inner.id.clone())
                    .build();
                let mut data = graph_to_gnn(&graph);
                data.g_feats =
                    loop_level_features(func, &sample.config, &inner.id, inner.pipelined);
                data.g_feats.extend(graph_aggregates(&graph));
                let s = InnerSample {
                    graph: data,
                    y: [
                        log1p(lq.il as f64),
                        log1p(lq.qor.latency as f64),
                        log1p(lq.qor.lut as f64),
                        log1p(lq.qor.ff as f64),
                        log1p(lq.qor.dsp as f64),
                    ],
                };
                if inner.pipelined {
                    p.push(s);
                } else {
                    np.push(s);
                }
            }
        }
        Ok((p, np))
    }

    fn global_samples(
        &self,
        designs: &LabeledDesigns,
        subset: &[DesignSample],
    ) -> Result<Vec<GlobalSample>, QorError> {
        // inner inference per design is pure given the frozen inner models,
        // so the condensation sweep fans out
        par::try_map("core/global_samples", subset, |_, sample| {
            let func = designs.function_of(sample)?;
            let supers = self.predict_supers(func, &sample.config);
            let graph = GraphBuilder::new(func, &sample.config)
                .options(self.opts.graph_options())
                .condense(supers)
                .build();
            let mut data = graph_to_gnn(&graph);
            data.g_feats = graph_aggregates(&graph);
            Ok(GlobalSample {
                graph: data,
                y: [
                    log1p(sample.report.top.latency as f64),
                    log1p(sample.report.top.lut as f64),
                    log1p(sample.report.top.ff as f64),
                    log1p(sample.report.top.dsp as f64),
                ],
            })
        })
    }

    fn eval_inner(
        &self,
        store: &ParamStore,
        model: &InnerModel,
        norm: &Normalizer,
        test: &[InnerSample],
    ) -> InnerEval {
        if test.is_empty() {
            return InnerEval::default();
        }
        let sp = obs::span("eval_inner");
        sp.attr("samples", test.len());
        let mut pred = vec![Vec::new(); 5];
        let mut truth = vec![Vec::new(); 5];
        for chunk in test.chunks(64) {
            let graphs: Vec<&GraphData> = chunk.iter().map(|s| &s.graph).collect();
            let batch = Batch::from_graphs(&graphs, true);
            let mut t = Tape::new();
            let (il, lat, res) = model.forward(store, &mut t, &batch);
            let ilm = t.value(il).clone();
            let latm = t.value(lat).clone();
            let resm = t.value(res).clone();
            for (r, s) in chunk.iter().enumerate() {
                let mut outs = [
                    ilm[(r, 0)],
                    latm[(r, 0)],
                    resm[(r, 0)],
                    resm[(r, 1)],
                    resm[(r, 2)],
                ];
                norm.inverse(&mut outs);
                for m in 0..5 {
                    pred[m].push(expm1(outs[m]) as f32);
                    truth[m].push(expm1(s.y[m]) as f32);
                }
            }
        }
        InnerEval {
            il_mape: mape(&pred[0], &truth[0]),
            latency_mape: mape(&pred[1], &truth[1]),
            lut_mape: mape(&pred[2], &truth[2]),
            ff_mape: mape(&pred[3], &truth[3]),
            dsp_mape: mape(&pred[4], &truth[4]),
            n: test.len(),
        }
    }

    fn eval_global(&self, test: &[GlobalSample]) -> GlobalEval {
        if test.is_empty() {
            return GlobalEval::default();
        }
        let sp = obs::span("eval_global");
        sp.attr("samples", test.len());
        let mut pred = vec![Vec::new(); 4];
        let mut truth = vec![Vec::new(); 4];
        for chunk in test.chunks(64) {
            let graphs: Vec<&GraphData> = chunk.iter().map(|s| &s.graph).collect();
            let batch = Batch::from_graphs(&graphs, true);
            let mut t = Tape::new();
            let (lat, res) = self.model_g.forward(&self.store_g, &mut t, &batch);
            let latm = t.value(lat).clone();
            let resm = t.value(res).clone();
            for (r, s) in chunk.iter().enumerate() {
                let mut outs = [latm[(r, 0)], resm[(r, 0)], resm[(r, 1)], resm[(r, 2)]];
                self.norm_g.inverse(&mut outs);
                for m in 0..4 {
                    pred[m].push(expm1(outs[m]) as f32);
                    truth[m].push(expm1(s.y[m]) as f32);
                }
            }
        }
        GlobalEval {
            latency_mape: mape(&pred[0], &truth[0]),
            lut_mape: mape(&pred[1], &truth[1]),
            ff_mape: mape(&pred[2], &truth[2]),
            dsp_mape: mape(&pred[3], &truth[3]),
            n: test.len(),
        }
    }
}

/// Step learning-rate schedule: full rate for the first 60% of epochs,
/// then 0.3x, then 0.1x for the final 15%.
fn lr_decay(epoch: usize, total: usize) -> f32 {
    let frac = (epoch as f32 + 0.5) / total.max(1) as f32;
    if frac < 0.6 {
        1.0
    } else if frac < 0.85 {
        0.3
    } else {
        0.1
    }
}

/// Dedup key for an inner region: kernel + loop + the pragma entries that
/// can influence the region (its subtree and touched arrays).
fn region_key(func: &Function, cfg: &PragmaConfig, id: &LoopId, kernel: &str) -> u64 {
    let mut restricted = PragmaConfig::new();
    for (lid, p) in cfg.loops() {
        if id.contains(lid) {
            restricted.set_pipeline(lid.clone(), p.pipeline);
            restricted.set_unroll(lid.clone(), p.unroll);
            restricted.set_flatten(lid.clone(), p.flatten);
        }
    }
    for use_ in hir::array_uses(func, id, true) {
        if let Some(info) = func.array(&use_.array) {
            for d in 1..=info.dims.len() as u32 {
                restricted.set_partition(use_.array.clone(), d, cfg.partition(&use_.array, d));
            }
        }
    }
    let mut h = restricted.fingerprint();
    for b in kernel.bytes() {
        h = h.rotate_left(7) ^ u64::from(b);
    }
    for seg in id.path() {
        h = h.rotate_left(11) ^ u64::from(*seg);
    }
    h
}

fn train_inner(
    store: &mut ParamStore,
    model: &InnerModel,
    train: &[InnerSample],
    norm: &Normalizer,
    opts: &TrainOptions,
    rng: &mut StdRng,
    tag: &str,
) {
    if train.is_empty() {
        return;
    }
    let sp = obs::span("train_inner");
    sp.attr("model", tag);
    sp.attr("samples", train.len());
    sp.attr("epochs", opts.inner_epochs);
    let mut order: Vec<usize> = (0..train.len()).collect();
    for epoch in 0..opts.inner_epochs {
        let adam = AdamConfig {
            clip: 2.0,
            ..AdamConfig::with_lr(opts.lr * lr_decay(epoch, opts.inner_epochs))
        };
        order.shuffle(rng);
        let mut total = 0.0;
        let mut batches = 0;
        let mut ape_sum = 0.0f64;
        let mut ape_n = 0usize;
        for chunk in order.chunks(opts.batch_size.max(1)) {
            // fixed micro-batch geometry: the same chunks are formed for any
            // worker count, and losses/gradients are merged in chunk order,
            // so the update is bit-identical to the sequential path
            let micros: Vec<&[usize]> = chunk.chunks(gnn::MICRO_BATCH).collect();
            let weight = chunk.len() as f32;
            let shared: &ParamStore = store;
            let parts = par::map("core/train_inner", &micros, |_, ids| {
                let graphs: Vec<&GraphData> = ids.iter().map(|&i| &train[i].graph).collect();
                let batch = Batch::from_graphs(&graphs, true);
                let mut y_il = Matrix::zeros(ids.len(), 1);
                let mut y_lat = Matrix::zeros(ids.len(), 1);
                let mut y_res = Matrix::zeros(ids.len(), 3);
                for (r, &i) in ids.iter().enumerate() {
                    let mut y = train[i].y;
                    norm.transform(&mut y);
                    y_il[(r, 0)] = y[0];
                    y_lat[(r, 0)] = y[1];
                    y_res[(r, 0)] = y[2];
                    y_res[(r, 1)] = y[3];
                    y_res[(r, 2)] = y[4];
                }
                let mut t = Tape::new();
                let (il, lat, res) = model.forward(shared, &mut t, &batch);
                let t_il = t.leaf(y_il);
                let t_lat = t.leaf(y_lat);
                let t_res = t.leaf(y_res);
                let l1 = t.mse(il, t_il);
                let l2 = t.mse(lat, t_lat);
                let l3 = t.mse(res, t_res);
                let l12 = t.add(l1, l2);
                let l123 = t.add(l12, l3);
                let loss = t.scale(l123, ids.len() as f32 / weight);
                let mut micro_ape = (0.0f64, 0usize);
                if obs::collecting() {
                    // per-epoch latency MAPE in normalized (log) space, from
                    // the predictions already on the tape — free when obs is
                    // off
                    let latm = t.value(lat);
                    let latt = t.value(t_lat);
                    for r in 0..ids.len() {
                        let truth = f64::from(latt[(r, 0)]);
                        micro_ape.0 +=
                            f64::from((latm[(r, 0)] - latt[(r, 0)]).abs()) / truth.abs().max(1e-6);
                        micro_ape.1 += 1;
                    }
                }
                t.backward(loss);
                (t.value(loss).item(), micro_ape, shared.grads_of(&t))
            });
            let mut grads: Option<GradSet> = None;
            for (l, (a_sum, a_n), g) in parts {
                total += l;
                ape_sum += a_sum;
                ape_n += a_n;
                match &mut grads {
                    Some(acc) => acc.accumulate(&g),
                    slot @ None => *slot = Some(g),
                }
            }
            batches += 1;
            if let Some(g) = grads {
                store.adam_step_with(g, &adam);
            }
        }
        let epoch_loss = total / batches.max(1) as f32;
        obs::metrics::series_push(
            &format!("train/{tag}/loss"),
            epoch as u64,
            f64::from(epoch_loss),
        );
        if ape_n > 0 {
            obs::metrics::series_push(
                &format!("train/{tag}/latency_mape"),
                epoch as u64,
                100.0 * ape_sum / ape_n as f64,
            );
        }
        if opts.log_every > 0 && epoch % opts.log_every == 0 {
            obs::tracef!(1, "{tag} epoch {epoch}: loss {epoch_loss:.4}");
        }
    }
}

fn train_global(
    store: &mut ParamStore,
    model: &GlobalModel,
    train: &[GlobalSample],
    norm: &Normalizer,
    opts: &TrainOptions,
    rng: &mut StdRng,
) {
    if train.is_empty() {
        return;
    }
    let sp = obs::span("train_global");
    sp.attr("model", "GNN_g");
    sp.attr("samples", train.len());
    sp.attr("epochs", opts.global_epochs);
    let mut order: Vec<usize> = (0..train.len()).collect();
    for epoch in 0..opts.global_epochs {
        let adam = AdamConfig {
            clip: 2.0,
            ..AdamConfig::with_lr(opts.lr * lr_decay(epoch, opts.global_epochs))
        };
        order.shuffle(rng);
        let mut total = 0.0;
        let mut batches = 0;
        let mut ape_sum = 0.0f64;
        let mut ape_n = 0usize;
        for chunk in order.chunks(opts.batch_size.max(1)) {
            // same fixed-geometry micro-batching as `train_inner`
            let micros: Vec<&[usize]> = chunk.chunks(gnn::MICRO_BATCH).collect();
            let weight = chunk.len() as f32;
            let shared: &ParamStore = store;
            let parts = par::map("core/train_global", &micros, |_, ids| {
                let graphs: Vec<&GraphData> = ids.iter().map(|&i| &train[i].graph).collect();
                let batch = Batch::from_graphs(&graphs, true);
                let mut y_lat = Matrix::zeros(ids.len(), 1);
                let mut y_res = Matrix::zeros(ids.len(), 3);
                for (r, &i) in ids.iter().enumerate() {
                    let mut y = train[i].y;
                    norm.transform(&mut y);
                    y_lat[(r, 0)] = y[0];
                    y_res[(r, 0)] = y[1];
                    y_res[(r, 1)] = y[2];
                    y_res[(r, 2)] = y[3];
                }
                let mut t = Tape::new();
                let (lat, res) = model.forward(shared, &mut t, &batch);
                let t_lat = t.leaf(y_lat);
                let t_res = t.leaf(y_res);
                let l1 = t.mse(lat, t_lat);
                let l2 = t.mse(res, t_res);
                let l12 = t.add(l1, l2);
                let loss = t.scale(l12, ids.len() as f32 / weight);
                let mut micro_ape = (0.0f64, 0usize);
                if obs::collecting() {
                    let latm = t.value(lat);
                    let latt = t.value(t_lat);
                    for r in 0..ids.len() {
                        let truth = f64::from(latt[(r, 0)]);
                        micro_ape.0 +=
                            f64::from((latm[(r, 0)] - latt[(r, 0)]).abs()) / truth.abs().max(1e-6);
                        micro_ape.1 += 1;
                    }
                }
                t.backward(loss);
                (t.value(loss).item(), micro_ape, shared.grads_of(&t))
            });
            let mut grads: Option<GradSet> = None;
            for (l, (a_sum, a_n), g) in parts {
                total += l;
                ape_sum += a_sum;
                ape_n += a_n;
                match &mut grads {
                    Some(acc) => acc.accumulate(&g),
                    slot @ None => *slot = Some(g),
                }
            }
            batches += 1;
            if let Some(g) = grads {
                store.adam_step_with(g, &adam);
            }
        }
        let epoch_loss = total / batches.max(1) as f32;
        obs::metrics::series_push("train/GNN_g/loss", epoch as u64, f64::from(epoch_loss));
        if ape_n > 0 {
            obs::metrics::series_push(
                "train/GNN_g/latency_mape",
                epoch as u64,
                100.0 * ape_sum / ape_n as f64,
            );
        }
        if opts.log_every > 0 && epoch % opts.log_every == 0 {
            obs::tracef!(1, "GNN_g epoch {epoch}: loss {epoch_loss:.4}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> TrainOptions {
        TrainOptions {
            inner_epochs: 8,
            global_epochs: 8,
            hidden: 12,
            data: DataOptions {
                max_designs_per_kernel: 8,
                seed: 5,
            },
            ..TrainOptions::quick()
        }
    }

    #[test]
    fn untrained_model_predicts_something_finite() {
        let model = HierarchicalModel::new(&tiny_opts());
        let func = kernels::lower_kernel("gemm").unwrap();
        let qor = model.predict(&func, &PragmaConfig::default());
        // untrained output is arbitrary but must be well-formed
        let _ = qor.as_array();
    }

    #[test]
    fn training_pipeline_runs_end_to_end() {
        let opts = tiny_opts();
        let k: Vec<_> = kernels::training_kernels().take(3).collect();
        let designs = dataset::generate_for(&k, &opts.data).unwrap();
        let (model, stats) = HierarchicalModel::train_with_designs(&opts, &designs).unwrap();
        assert!(stats.dataset_sizes.2 > 0);
        assert!(stats.global.n > 0);
        assert!(stats.global.latency_mape.is_finite());

        // prediction after training works for an unseen config
        let func = kernels::lower_kernel("gemm").unwrap();
        let mut cfg = PragmaConfig::default();
        cfg.set_pipeline(LoopId::from_path(&[0, 0, 0]), true);
        let qor = model.predict(&func, &cfg);
        assert!(qor.latency > 0);
    }

    #[test]
    fn supers_cover_every_inner_loop() {
        let model = HierarchicalModel::new(&tiny_opts());
        let func = kernels::lower_kernel("mvt").unwrap();
        let cfg = PragmaConfig::default();
        let supers = model.predict_supers(&func, &cfg);
        let hierarchy = split_hierarchy(&func, &cfg);
        assert_eq!(supers.len(), hierarchy.inner.len());
        for inner in &hierarchy.inner {
            assert!(supers.contains_key(&inner.id));
        }
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let opts = tiny_opts();
        let model = HierarchicalModel::new(&opts);
        let func = kernels::lower_kernel("gemm").unwrap();
        let cfg = PragmaConfig::default();
        let before = model.predict(&func, &cfg);

        let dir = std::env::temp_dir().join("hier_hls_qor_model_test");
        model.save(&dir).unwrap();
        let mut restored = HierarchicalModel::new(&TrainOptions {
            seed: 99, // different init; load must overwrite it
            ..opts
        });
        restored.load(&dir).unwrap();
        let after = restored.predict(&func, &cfg);
        assert_eq!(before, after);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prepared_prediction_is_bit_identical_to_direct() {
        let model = HierarchicalModel::new(&tiny_opts());
        let func = Arc::new(kernels::lower_kernel("mvt").unwrap());
        let mut cfg = PragmaConfig::default();
        cfg.set_pipeline(LoopId::from_path(&[0, 0]), true);
        let direct = model.predict(&func, &cfg);
        let prepared = model.prepare(func.clone(), cfg.clone());
        assert!(prepared.num_inner() > 0);
        assert!(prepared.num_nodes() > 0);
        assert_eq!(model.predict_prepared(&prepared), direct);
        // replay is stable
        assert_eq!(model.predict_prepared(&prepared), direct);
    }

    #[test]
    fn banks_and_normalizers_are_addressable() {
        let mut model = HierarchicalModel::new(&tiny_opts());
        let names: Vec<&str> = model.banks().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, BANKS.to_vec());
        for (_, store) in model.banks() {
            assert!(!store.is_empty());
        }
        assert_eq!(model.normalizer("gnn_p").unwrap().dim(), 5);
        assert_eq!(model.normalizer("gnn_g").unwrap().dim(), 4);
        assert!(model.normalizer("nope").is_none());

        let norm = Normalizer::identity(4);
        model.set_normalizer("gnn_g", norm.clone()).unwrap();
        assert!(matches!(
            model.set_normalizer("gnn_p", norm.clone()),
            Err(QorError::Shape(_))
        ));
        assert!(matches!(
            model.set_normalizer("bogus", norm),
            Err(QorError::Corrupt(_))
        ));
    }

    #[test]
    fn region_key_ignores_unrelated_pragmas() {
        let func = kernels::lower_kernel("mvt").unwrap();
        let first_inner = LoopId::from_path(&[0, 0]);
        let cfg1 = PragmaConfig::default();
        let mut cfg2 = PragmaConfig::default();
        // pragma on the *second* nest must not change the first nest's key
        cfg2.set_pipeline(LoopId::from_path(&[1, 0]), true);
        assert_eq!(
            region_key(&func, &cfg1, &first_inner, "mvt"),
            region_key(&func, &cfg2, &first_inner, "mvt"),
        );
        // but a pragma on the first nest does
        let mut cfg3 = PragmaConfig::default();
        cfg3.set_pipeline(first_inner.clone(), true);
        assert_ne!(
            region_key(&func, &cfg1, &first_inner, "mvt"),
            region_key(&func, &cfg3, &first_inner, "mvt"),
        );
    }
}
