//! Stable, seed-free FNV-1a hashing (re-export of [`obs::hash`]).
//!
//! The implementation lives in `obs::hash` — the one crate every other
//! workspace crate already depends on — so that the session cache, the
//! `serve` checkpoint/wire checksums, pragma fingerprints, trace-id
//! derivation and the `incr` dependency keys all share a single digest
//! contract. This module re-exports it under the historical
//! `qor_core::hash` path; downstream crates (`serve`, `search`, `bench`)
//! keep importing from here.
//!
//! # Example
//!
//! ```
//! // Known FNV-1a 64-bit vector: the empty input hashes to the offset basis.
//! assert_eq!(qor_core::fnv1a(b""), 0xcbf2_9ce4_8422_2325);
//! ```

pub use obs::hash::{fnv1a, Fnv1aHasher, FnvBuildHasher, FNV1A_OFFSET, FNV1A_PRIME};
