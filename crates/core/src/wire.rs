//! Shared little-endian record encoding for persisted artifacts.
//!
//! Both the model checkpoint format (`serve::checkpoint`, `.qorckpt`-style
//! streams) and the search-job format (`search::job`, `.qorjob` files) are
//! built from the same primitives:
//!
//! * a fixed 13-byte frame — 8 magic bytes, a `u32` format version, and a
//!   `u8` record kind,
//! * little-endian integers and raw IEEE-754 float bits (so round-trips
//!   are bit-exact),
//! * length-prefixed UTF-8 strings (`u16` length),
//! * a trailing FNV-1a checksum over every preceding byte.
//!
//! [`open`] verifies magic, version, and checksum **before** any record is
//! parsed, so truncation and bit flips surface as [`QorError::Corrupt`]
//! (and future versions as [`QorError::UnsupportedVersion`]) instead of
//! misparsed payloads. The bounds-checked [`Cursor`] then guarantees the
//! payload readers never panic on malformed input that slipped past a
//! caller-specific check.

use crate::error::QorError;
use crate::hash::fnv1a;

// ------------------------------------------------------------------ encode

/// Appends a little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends the raw IEEE-754 bits of an `f32`.
pub fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends the raw IEEE-754 bits of an `f64`.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u16`-length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "name too long for format");
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

/// Starts a record stream: magic, format version, and kind byte.
pub fn header(magic: &[u8; 8], version: u32, kind: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(magic);
    put_u32(&mut out, version);
    out.push(kind);
    out
}

/// Appends the FNV-1a checksum over everything written so far, completing
/// the stream.
pub fn seal(mut out: Vec<u8>) -> Vec<u8> {
    let sum = fnv1a(&out);
    put_u64(&mut out, sum);
    out
}

// ------------------------------------------------------------------ decode

/// A bounds-checked reader over a verified payload.
#[derive(Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps raw payload bytes (normally produced by [`open`]).
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Takes the next `n` bytes, or a typed truncation error.
    ///
    /// # Errors
    ///
    /// [`QorError::Corrupt`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], QorError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                QorError::Corrupt(format!("truncated record: {what} at offset {}", self.pos))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`QorError::Corrupt`] on truncation.
    pub fn u8(&mut self, what: &str) -> Result<u8, QorError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`QorError::Corrupt`] on truncation.
    pub fn u16(&mut self, what: &str) -> Result<u16, QorError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`QorError::Corrupt`] on truncation.
    pub fn u32(&mut self, what: &str) -> Result<u32, QorError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`QorError::Corrupt`] on truncation.
    pub fn u64(&mut self, what: &str) -> Result<u64, QorError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Reads an `f32` from raw bits.
    ///
    /// # Errors
    ///
    /// [`QorError::Corrupt`] on truncation.
    pub fn f32(&mut self, what: &str) -> Result<f32, QorError> {
        Ok(f32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Reads an `f64` from raw bits.
    ///
    /// # Errors
    ///
    /// [`QorError::Corrupt`] on truncation.
    pub fn f64(&mut self, what: &str) -> Result<f64, QorError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Reads `n` consecutive `f32`s.
    ///
    /// # Errors
    ///
    /// [`QorError::Corrupt`] on truncation or element-count overflow.
    pub fn f32s(&mut self, n: usize, what: &str) -> Result<Vec<f32>, QorError> {
        let bytes = self.take(
            n.checked_mul(4)
                .ok_or_else(|| QorError::Corrupt(format!("{what}: element count overflow")))?,
            what,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Reads a `u16`-length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`QorError::Corrupt`] on truncation or non-UTF-8 bytes.
    pub fn str(&mut self, what: &str) -> Result<&'a str, QorError> {
        let len = self.u16(what)? as usize;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes)
            .map_err(|_| QorError::Corrupt(format!("{what}: name is not UTF-8")))
    }

    /// Whether every payload byte has been consumed.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Unconsumed payload bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Verifies magic, version and the trailing checksum; returns the `kind`
/// byte and a [`Cursor`] over the payload.
///
/// # Errors
///
/// [`QorError::Corrupt`] for short streams, bad magic, or a checksum
/// mismatch; [`QorError::UnsupportedVersion`] for any version other than
/// `version`.
pub fn open<'a>(
    bytes: &'a [u8],
    magic: &[u8; 8],
    version: u32,
) -> Result<(u8, Cursor<'a>), QorError> {
    let (_, kind, cursor) = open_range(bytes, magic, version, version)?;
    Ok((kind, cursor))
}

/// [`open`] for formats that accept a window of versions: returns the
/// version actually found alongside the kind byte and payload cursor, so
/// readers can branch on older layouts while still rejecting future ones.
///
/// # Errors
///
/// [`QorError::Corrupt`] for short streams, bad magic, or a checksum
/// mismatch; [`QorError::UnsupportedVersion`] for versions outside
/// `min_version..=max_version`.
pub fn open_range<'a>(
    bytes: &'a [u8],
    magic: &[u8; 8],
    min_version: u32,
    max_version: u32,
) -> Result<(u32, u8, Cursor<'a>), QorError> {
    let min = magic.len() + 4 + 1 + 8;
    if bytes.len() < min {
        return Err(QorError::Corrupt(format!(
            "record stream too short: {} bytes, need at least {min}",
            bytes.len()
        )));
    }
    if &bytes[..magic.len()] != magic {
        return Err(QorError::Corrupt("bad magic".into()));
    }
    let found = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if found < min_version || found > max_version {
        return Err(QorError::UnsupportedVersion(found));
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    let actual = fnv1a(body);
    if stored != actual {
        return Err(QorError::Corrupt(format!(
            "checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
        )));
    }
    let kind = bytes[12];
    Ok((found, kind, Cursor::new(&body[13..])))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 8] = *b"QORTEST\0";

    fn sample() -> Vec<u8> {
        let mut out = header(&MAGIC, 1, 7);
        put_u16(&mut out, 300);
        put_u32(&mut out, 70_000);
        put_u64(&mut out, u64::MAX - 1);
        put_f32(&mut out, -1.5);
        put_f64(&mut out, std::f64::consts::PI);
        put_str(&mut out, "hello");
        seal(out)
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let bytes = sample();
        let (kind, mut c) = open(&bytes, &MAGIC, 1).unwrap();
        assert_eq!(kind, 7);
        assert_eq!(c.u16("a").unwrap(), 300);
        assert_eq!(c.u32("b").unwrap(), 70_000);
        assert_eq!(c.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(c.f32("d").unwrap(), -1.5);
        assert_eq!(c.f64("e").unwrap(), std::f64::consts::PI);
        assert_eq!(c.str("f").unwrap(), "hello");
        assert!(c.done());
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn every_byte_flip_is_detected() {
        let bytes = sample();
        for offset in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[offset] ^= 0xff;
            let result = open(&corrupt, &MAGIC, 1);
            assert!(
                matches!(
                    result,
                    Err(QorError::Corrupt(_) | QorError::UnsupportedVersion(_))
                ),
                "flip at {offset} was accepted"
            );
        }
    }

    #[test]
    fn truncations_and_short_streams_are_corrupt() {
        let bytes = sample();
        for len in 0..bytes.len() {
            assert!(matches!(
                open(&bytes[..len], &MAGIC, 1),
                Err(QorError::Corrupt(_) | QorError::UnsupportedVersion(_))
            ));
        }
    }

    #[test]
    fn version_mismatch_is_typed() {
        let bytes = sample();
        match open(&bytes, &MAGIC, 2) {
            Err(QorError::UnsupportedVersion(1)) => {}
            other => panic!("expected UnsupportedVersion(1), got {other:?}"),
        }
    }

    #[test]
    fn open_range_accepts_the_window_and_reports_the_found_version() {
        let bytes = sample(); // written as version 1
        let (found, kind, _) = open_range(&bytes, &MAGIC, 1, 2).unwrap();
        assert_eq!((found, kind), (1, 7));
        match open_range(&bytes, &MAGIC, 2, 3) {
            Err(QorError::UnsupportedVersion(1)) => {}
            other => panic!("expected UnsupportedVersion(1), got {other:?}"),
        }
    }

    #[test]
    fn cursor_reads_past_the_end_fail_typed() {
        let mut c = Cursor::new(&[1, 2]);
        assert!(c.u64("x").is_err());
        assert_eq!(c.u16("y").unwrap(), 0x0201);
        assert!(c.u8("z").is_err());
        assert!(Cursor::new(&[0xff, 0xff]).str("s").is_err());
    }
}
