//! Dataset generation: pragma sweeps labeled by the simulated tool flow.

use std::collections::BTreeMap;

use hir::Function;
use hlsim::QorReport;
use pragma::PragmaConfig;
use rand::seq::SliceRandom;

use crate::error::QorError;

/// Dataset-generation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataOptions {
    /// Cap on enumerated designs per kernel (0 = unlimited).
    pub max_designs_per_kernel: usize,
    /// Shuffling seed for the 80/10/10 split.
    pub seed: u64,
}

impl Default for DataOptions {
    fn default() -> Self {
        DataOptions {
            max_designs_per_kernel: 120,
            seed: 17,
        }
    }
}

/// One labeled design point.
#[derive(Debug, Clone)]
pub struct DesignSample {
    /// Kernel name.
    pub kernel: String,
    /// Pragma configuration.
    pub config: PragmaConfig,
    /// Ground truth from the simulated tool flow.
    pub report: QorReport,
}

/// Labeled designs split 80/10/10 per kernel, plus the lowered functions.
#[derive(Debug, Clone, Default)]
pub struct LabeledDesigns {
    /// Training designs.
    pub train: Vec<DesignSample>,
    /// Validation designs.
    pub val: Vec<DesignSample>,
    /// Held-out test designs.
    pub test: Vec<DesignSample>,
    /// Lowered functions by kernel name.
    pub functions: BTreeMap<String, Function>,
}

impl LabeledDesigns {
    /// Total number of labeled designs.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The function of a sample.
    ///
    /// # Errors
    ///
    /// Returns [`QorError::UnknownKernel`] if the sample's kernel was never
    /// registered (cannot happen for datasets built by [`generate`]).
    pub fn function_of(&self, sample: &DesignSample) -> Result<&Function, QorError> {
        self.functions
            .get(&sample.kernel)
            .ok_or_else(|| QorError::UnknownKernel(sample.kernel.clone()))
    }
}

/// Generates the labeled dataset for the 12 training kernels.
///
/// Every design in each kernel's (capped) pragma space is pushed through the
/// simulated C-to-bitstream flow; the 80/10/10 split is per kernel so all
/// kernels appear in every split (the paper's setup — DSE kernels are held
/// out entirely instead).
///
/// # Errors
///
/// Propagates kernel lowering or evaluation failures.
pub fn generate(opts: &DataOptions) -> Result<LabeledDesigns, QorError> {
    let kernels: Vec<_> = kernels::training_kernels().collect();
    generate_for(&kernels, opts)
}

/// Generates a labeled dataset for an explicit kernel list.
///
/// # Errors
///
/// Propagates kernel lowering or evaluation failures.
pub fn generate_for(
    kernel_list: &[&kernels::Kernel],
    opts: &DataOptions,
) -> Result<LabeledDesigns, QorError> {
    let mut pairs = Vec::with_capacity(kernel_list.len());
    for k in kernel_list {
        let func = kernels::lower_kernel(k.name)?;
        let space = kernels::design_space(&func);
        let configs = if opts.max_designs_per_kernel > 0 {
            space.enumerate_capped(opts.max_designs_per_kernel)
        } else {
            space.enumerate()
        };
        pairs.push((k.name.to_string(), func, configs));
    }
    generate_from_functions(pairs, opts)
}

/// Generates a labeled dataset from explicit `(name, function, configs)`
/// triples — used for synthetic (pragma-free) program corpora and custom
/// sweeps.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn generate_from_functions(
    pairs: Vec<(String, Function, Vec<PragmaConfig>)>,
    opts: &DataOptions,
) -> Result<LabeledDesigns, QorError> {
    let sp = obs::span("dataset_generate");
    sp.attr("programs", pairs.len());
    let mut out = LabeledDesigns::default();
    let mut rng = tensor::init::seeded_rng(opts.seed);
    for (name, func, mut configs) in pairs {
        // all RNG draws stay on this sequential path so the stream is
        // identical for any worker count; only the pure per-config
        // evaluations below fan out
        configs.shuffle(&mut rng);
        let n = configs.len();
        // single-config programs (synthetic corpora) are split across
        // programs rather than within
        if n == 1 {
            use rand::Rng;
            let bucket = rng.gen_range(0..10);
            let config = configs.pop().expect("one config");
            let report = hlsim::evaluate(&func, &config)?;
            let sample = DesignSample {
                kernel: name.clone(),
                config,
                report,
            };
            match bucket {
                0..=7 => out.train.push(sample),
                8 => out.val.push(sample),
                _ => out.test.push(sample),
            }
            out.functions.insert(name, func);
            continue;
        }
        let reports = par::try_map("dataset/evaluate", &configs, |_, config| {
            hlsim::evaluate(&func, config).map_err(QorError::from)
        })?;
        let n_train = (n * 8) / 10;
        let n_val = (n * 9) / 10 - n_train;
        for (i, (config, report)) in configs.into_iter().zip(reports).enumerate() {
            let sample = DesignSample {
                kernel: name.clone(),
                config,
                report,
            };
            if i < n_train {
                out.train.push(sample);
            } else if i < n_train + n_val {
                out.val.push(sample);
            } else {
                out.test.push(sample);
            }
        }
        out.functions.insert(name, func);
    }
    sp.attr("samples", out.len());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_proportions_hold() {
        let opts = DataOptions {
            max_designs_per_kernel: 20,
            seed: 1,
        };
        let k: Vec<_> = kernels::training_kernels().take(2).collect();
        let data = generate_for(&k, &opts).unwrap();
        assert_eq!(data.len(), 40);
        assert_eq!(data.train.len(), 32);
        assert_eq!(data.val.len(), 2 * 2);
        assert_eq!(data.test.len(), 2 * 2);
        assert_eq!(data.functions.len(), 2);
    }

    #[test]
    fn labels_vary_across_configs() {
        let opts = DataOptions {
            max_designs_per_kernel: 15,
            seed: 2,
        };
        let k: Vec<_> = kernels::training_kernels()
            .filter(|k| k.name == "gemm")
            .collect();
        let data = generate_for(&k, &opts).unwrap();
        let latencies: std::collections::HashSet<u64> =
            data.train.iter().map(|s| s.report.top.latency).collect();
        assert!(
            latencies.len() > 3,
            "configs must induce different latencies, got {latencies:?}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let opts = DataOptions {
            max_designs_per_kernel: 10,
            seed: 3,
        };
        let k: Vec<_> = kernels::training_kernels().take(1).collect();
        let a = generate_for(&k, &opts).unwrap();
        let b = generate_for(&k, &opts).unwrap();
        let fa: Vec<u64> = a.train.iter().map(|s| s.config.fingerprint()).collect();
        let fb: Vec<u64> = b.train.iter().map(|s| s.config.fingerprint()).collect();
        assert_eq!(fa, fb);
    }
}
