//! Inner/outer hierarchy split (paper §III-C).

use hir::{Function, HirLoop, Item};
use pragma::{LoopId, PragmaConfig};

/// The four inner-hierarchy loop categories of §III-C.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InnerCategory {
    /// ① a single-level loop.
    SingleLevel,
    /// ② a nested loop pipelined at its outermost level (inner sub-loops
    /// fully unrolled).
    PipelinedNest,
    /// ③ a perfect nest flattened and pipelined at the innermost level.
    FlattenedPipeline,
    /// ④ a nested loop with all inner sub-loops fully unrolled (no
    /// pipelining).
    FullyUnrolledNest,
}

/// One loop assigned to the inner hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InnerLoop {
    /// Root loop of the inner region.
    pub id: LoopId,
    /// Category (① – ④).
    pub category: InnerCategory,
    /// Whether the region executes as a pipeline (decides `GNN_p` vs
    /// `GNN_np`).
    pub pipelined: bool,
}

/// The hierarchy split of one configured design.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Hierarchy {
    /// Inner-hierarchy regions, in pre-order.
    pub inner: Vec<InnerLoop>,
}

impl Hierarchy {
    /// Inner loops that run pipelined (handled by `GNN_p`).
    pub fn pipelined(&self) -> impl Iterator<Item = &InnerLoop> {
        self.inner.iter().filter(|l| l.pipelined)
    }

    /// Inner loops that run sequentially (handled by `GNN_np`).
    pub fn non_pipelined(&self) -> impl Iterator<Item = &InnerLoop> {
        self.inner.iter().filter(|l| !l.pipelined)
    }
}

/// Splits a configured design into inner regions and the outer hierarchy.
///
/// Walking the loop tree top-down, a subtree becomes an inner region when
/// it matches one of the paper's four categories; everything above stays in
/// the outer hierarchy and is later modeled by `GNN_g` over the condensed
/// graph.
pub fn split_hierarchy(func: &Function, cfg: &PragmaConfig) -> Hierarchy {
    let mut inner = Vec::new();
    for item in &func.body.items {
        if let Item::Loop(l) = item {
            classify(func, cfg, l, &mut inner);
        }
    }
    Hierarchy { inner }
}

fn classify(func: &Function, cfg: &PragmaConfig, l: &HirLoop, out: &mut Vec<InnerLoop>) {
    let p = cfg.loop_pragma(&l.id);
    let children: Vec<&HirLoop> = l.children().collect();

    // ③ flattened perfect chain pipelined at the innermost level
    if p.flatten && l.is_perfect_level() && flatten_chain_pipelined(cfg, l) {
        out.push(InnerLoop {
            id: l.id.clone(),
            category: InnerCategory::FlattenedPipeline,
            pipelined: true,
        });
        return;
    }

    // ② pipelining here forces full unrolling below: whole subtree is inner
    if p.pipeline {
        let category = if children.is_empty() {
            InnerCategory::SingleLevel
        } else {
            InnerCategory::PipelinedNest
        };
        out.push(InnerLoop {
            id: l.id.clone(),
            category,
            pipelined: true,
        });
        return;
    }

    // ① single-level loop
    if children.is_empty() {
        out.push(InnerLoop {
            id: l.id.clone(),
            category: InnerCategory::SingleLevel,
            pipelined: false,
        });
        return;
    }

    // ④ nested loop whose sub-loops are all fully unrolled
    if subtree_fully_unrolled(cfg, &children) {
        out.push(InnerLoop {
            id: l.id.clone(),
            category: InnerCategory::FullyUnrolledNest,
            pipelined: false,
        });
        return;
    }

    // outer hierarchy: recurse
    for c in children {
        classify(func, cfg, c, out);
    }
    let _ = func;
}

fn flatten_chain_pipelined(cfg: &PragmaConfig, l: &HirLoop) -> bool {
    let mut cur = l;
    loop {
        let children: Vec<&HirLoop> = cur.children().collect();
        if children.len() != 1 {
            return false;
        }
        let child = children[0];
        let cp = cfg.loop_pragma(&child.id);
        if child.children().next().is_none() {
            return cp.pipeline;
        }
        if !cp.flatten || !child.is_perfect_level() {
            return false;
        }
        cur = child;
    }
}

fn subtree_fully_unrolled(cfg: &PragmaConfig, children: &[&HirLoop]) -> bool {
    children.iter().all(|c| {
        let p = cfg.loop_pragma(&c.id);
        p.unroll.is_full(c.trip_count().max(1))
            && subtree_fully_unrolled(cfg, &c.children().collect::<Vec<_>>())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pragma::Unroll;

    fn gemm() -> Function {
        kernels::lower_kernel("gemm").unwrap()
    }

    #[test]
    fn default_config_inner_is_innermost() {
        let f = gemm();
        let h = split_hierarchy(&f, &PragmaConfig::default());
        assert_eq!(h.inner.len(), 1);
        assert_eq!(h.inner[0].id, LoopId::from_path(&[0, 0, 0]));
        assert_eq!(h.inner[0].category, InnerCategory::SingleLevel);
        assert!(!h.inner[0].pipelined);
    }

    #[test]
    fn pipelined_middle_loop_becomes_pipelined_nest() {
        let f = gemm();
        let mut cfg = PragmaConfig::default();
        cfg.set_pipeline(LoopId::from_path(&[0, 0]), true);
        cfg.set_unroll(LoopId::from_path(&[0, 0, 0]), Unroll::Full);
        let h = split_hierarchy(&f, &cfg);
        assert_eq!(h.inner.len(), 1);
        assert_eq!(h.inner[0].id, LoopId::from_path(&[0, 0]));
        assert_eq!(h.inner[0].category, InnerCategory::PipelinedNest);
        assert!(h.inner[0].pipelined);
    }

    #[test]
    fn fully_unrolled_inner_nest_is_category_four() {
        let f = gemm();
        let mut cfg = PragmaConfig::default();
        cfg.set_unroll(LoopId::from_path(&[0, 0, 0]), Unroll::Full);
        let h = split_hierarchy(&f, &cfg);
        // the j-loop now has all sub-loops fully unrolled
        assert_eq!(h.inner[0].id, LoopId::from_path(&[0, 0]));
        assert_eq!(h.inner[0].category, InnerCategory::FullyUnrolledNest);
        assert!(!h.inner[0].pipelined);
    }

    #[test]
    fn flatten_chain_detected() {
        let src = "void copy(float a[8][8], float b[8][8]) {
            for (int i = 0; i < 8; i++) {
                for (int j = 0; j < 8; j++) {
                    b[i][j] = a[i][j];
                }
            }
        }";
        let m = hir::lower(&frontc::parse(src).unwrap()).unwrap();
        let f = m.function("copy").unwrap();
        let mut cfg = PragmaConfig::default();
        cfg.set_flatten(LoopId::from_path(&[0]), true);
        cfg.set_flatten(LoopId::from_path(&[0, 0]), true);
        cfg.set_pipeline(LoopId::from_path(&[0, 0]), true);
        let h = split_hierarchy(f, &cfg);
        assert_eq!(h.inner.len(), 1);
        assert_eq!(h.inner[0].category, InnerCategory::FlattenedPipeline);
    }

    #[test]
    fn multiple_nests_split_independently() {
        let f = kernels::lower_kernel("mvt").unwrap();
        let mut cfg = PragmaConfig::default();
        cfg.set_pipeline(LoopId::from_path(&[0, 0]), true);
        // second nest left alone: its innermost j-loop is inner
        let h = split_hierarchy(&f, &cfg);
        assert_eq!(h.inner.len(), 2);
        assert!(h.inner[0].pipelined);
        assert!(!h.inner[1].pipelined);
        assert_eq!(h.pipelined().count(), 1);
        assert_eq!(h.non_pipelined().count(), 1);
    }
}
