//! Inference sessions: a trained model plus memoized front halves.
//!
//! End-to-end prediction splits into an expensive, weight-independent
//! front half (`lower` → hierarchy split → CDFG subgraph construction →
//! feature annotation; see [`HierarchicalModel::prepare`]) and a cheap GNN
//! forward pass. DSE-style workloads query the same kernel under thousands
//! of pragma configurations — and frequently revisit configurations — so a
//! [`Session`] memoizes both layers in a [`SharedCache`]:
//!
//! * **Kernel cache** — lowered [`Function`]s keyed by an FNV-1a hash of
//!   `(top name, source)`. Unbounded: a serving process sees a handful of
//!   kernels, each a few kilobytes of IR. Model-independent.
//! * **Prepared cache** — [`PreparedDesign`] front halves keyed by an
//!   FNV-1a hash of `(model prepare fingerprint, kernel hash, pragma
//!   fingerprint)`, with least-recently-used eviction. Capacity comes
//!   from the `QOR_CACHE_CAP` environment variable (default
//!   [`DEFAULT_CACHE_CAP`]; `0` disables caching).
//!
//! Because the front half never reads model *weights* (only the graph
//! construction options, folded into the prepare fingerprint), one
//! `SharedCache` can back **many sessions**: a model registry serving
//! several named model versions — or hot-swapping one version for a
//! retrain of the same architecture — keeps every memoized design warm
//! across the swap. [`Session::with_shared`] wires a session onto an
//! existing cache; the single-model constructors allocate a private one.
//!
//! Both hash layers use [`crate::Fnv1aHasher`], so keys are stable across
//! processes (std's `RandomState` is randomized per process and would make
//! hit patterns irreproducible).
//!
//! Hit/miss/eviction counts are kept in cache-local atomics (exported by
//! [`Session::stats`] / [`SharedCache::stats`]) and mirrored into the
//! `obs` metrics registry under `session/cache/*` and `session/kernel/*`
//! whenever collection is on.
//!
//! A `Session` is `Sync`: the caches sit behind a mutex, the model is
//! immutable, and prepared designs are shared as [`Arc`]s — so a server
//! (or `par::map` fan-out) can serve predictions from many threads.

use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use hir::Function;
use hlsim::Qor;
use obs::log::Level;
use obs::Json;
use pragma::PragmaConfig;

use crate::error::QorError;
use crate::hash::{Fnv1aHasher, FnvBuildHasher};
use crate::incr::{IncrCounts, PipelineDb};
use crate::model::{HierarchicalModel, PreparedDesign};

/// Prepared-cache capacity when `QOR_CACHE_CAP` is not set.
pub const DEFAULT_CACHE_CAP: usize = 256;

/// Point-in-time cache statistics of a [`SharedCache`].
///
/// When several sessions share one cache the counters aggregate over all
/// of them — that is the point: the statistics describe the memo store,
/// not any single model version reading it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Prepared-design cache hits.
    pub hits: u64,
    /// Prepared-design cache misses (front half recomputed).
    pub misses: u64,
    /// Prepared designs evicted by the LRU policy.
    pub evictions: u64,
    /// Lowered-kernel cache hits.
    pub kernel_hits: u64,
    /// Lowered-kernel cache misses (parse + lower paid).
    pub kernel_misses: u64,
    /// Prepared designs currently cached.
    pub len: usize,
    /// Prepared-cache capacity (0 = caching disabled).
    pub capacity: usize,
    /// Incremental queries answered from memo (all query kinds).
    pub incr_hits: u64,
    /// Incremental queries computed for the first time.
    pub incr_misses: u64,
    /// Incremental queries re-executed after an input changed.
    pub incr_recomputes: u64,
}

impl CacheStats {
    /// Fraction of all lookups (both cache layers) answered from cache,
    /// in `0..=1`; zero when nothing was looked up yet.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits + self.kernel_hits;
        let total = hits + self.misses + self.kernel_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// One prediction plus where its time went and which caches answered.
///
/// Returned by [`Session::predict_kernel_report`] /
/// [`Session::predict_source_report`]; servers turn this into per-stage
/// flight-recorder timings and cache hit/miss counts without a second
/// stats diff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictReport {
    /// The predicted quality of result.
    pub qor: Qor,
    /// Whether the lowered kernel came from the kernel cache.
    pub kernel_cache_hit: bool,
    /// Whether the front half came from the prepared cache.
    pub prepared_cache_hit: bool,
    /// Microseconds spent parsing + lowering (0 on a kernel-cache hit).
    pub lower_us: u64,
    /// Microseconds spent preparing the front half (0 on a cache hit).
    pub prepare_us: u64,
    /// Microseconds spent in the GNN forward pass.
    pub infer_us: u64,
    /// Incremental query hit/miss/recompute counts of this prediction's
    /// prepare (all zero on a prepared-cache hit or with `QOR_INCR=0`).
    pub incr: IncrCounts,
}

impl PredictReport {
    /// Cache hits in this prediction (0..=2, one per cache layer).
    pub fn cache_hits(&self) -> u64 {
        u64::from(self.kernel_cache_hit) + u64::from(self.prepared_cache_hit)
    }

    /// Cache misses in this prediction (0..=2, one per cache layer).
    pub fn cache_misses(&self) -> u64 {
        2 - self.cache_hits()
    }
}

#[derive(Default)]
struct State {
    /// LRU tick; strictly increasing under the lock, so eviction order is
    /// total and deterministic.
    tick: u64,
    prepared: HashMap<u64, (u64, Arc<PreparedDesign>), FnvBuildHasher>,
    kernels: HashMap<u64, Arc<Function>, FnvBuildHasher>,
}

/// The memoization store behind one or more [`Session`]s: lowered kernels
/// plus LRU-bounded prepared front halves (see the [module docs](self)).
///
/// Create one with [`SharedCache::new`] / [`SharedCache::with_capacity`]
/// and hand clones of the `Arc` to [`Session::with_shared`]; every session
/// on the cache shares both memo layers and the statistics counters.
pub struct SharedCache {
    capacity: usize,
    state: Mutex<State>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    kernel_hits: AtomicU64,
    kernel_misses: AtomicU64,
    /// `QOR_INCR != "0"`: whether prepared-cache misses go through the
    /// incremental query database instead of a from-scratch prepare.
    incr_enabled: bool,
    /// One pipeline query database per prepare fingerprint. Sessions with
    /// incompatible graph-construction options never share memos; hot
    /// model swaps of the same architecture keep the whole database warm.
    incr: Mutex<HashMap<u64, Arc<Mutex<PipelineDb>>, FnvBuildHasher>>,
    incr_hits: AtomicU64,
    incr_misses: AtomicU64,
    incr_recomputes: AtomicU64,
}

impl std::fmt::Debug for SharedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        write!(
            f,
            "SharedCache {{ capacity: {}, cached: {}, hits: {}, misses: {} }}",
            stats.capacity, stats.len, stats.hits, stats.misses
        )
    }
}

impl Default for SharedCache {
    fn default() -> Self {
        SharedCache::new()
    }
}

impl SharedCache {
    /// A cache with the capacity from `QOR_CACHE_CAP` (default
    /// [`DEFAULT_CACHE_CAP`]).
    ///
    /// `QOR_CACHE_CAP=0` is a *valid* setting, not an error: it cleanly
    /// disables the prepared cache — every lookup misses, nothing is
    /// stored, and the LRU eviction path never runs — while the kernel
    /// cache stays active. Unset or unparsable values fall back to the
    /// default.
    pub fn new() -> Self {
        Self::with_capacity(env_cache_cap())
    }

    /// A cache with an explicit prepared-design capacity (`0` disables the
    /// prepared cache; the kernel cache always runs).
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_options(capacity, env_incr_enabled())
    }

    /// A cache with an explicit prepared-design capacity and an explicit
    /// incremental-path switch, ignoring `QOR_INCR` — benchmarks use this
    /// to pit the LRU-only and query-database paths against each other in
    /// one process.
    pub fn with_options(capacity: usize, incr_enabled: bool) -> Self {
        SharedCache {
            capacity,
            state: Mutex::new(State::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            kernel_hits: AtomicU64::new(0),
            kernel_misses: AtomicU64::new(0),
            incr_enabled,
            incr: Mutex::new(HashMap::default()),
            incr_hits: AtomicU64::new(0),
            incr_misses: AtomicU64::new(0),
            incr_recomputes: AtomicU64::new(0),
        }
    }

    /// Current statistics, aggregated over every session on this cache.
    pub fn stats(&self) -> CacheStats {
        let len = self.state.lock().unwrap().prepared.len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            kernel_hits: self.kernel_hits.load(Ordering::Relaxed),
            kernel_misses: self.kernel_misses.load(Ordering::Relaxed),
            len,
            capacity: self.capacity,
            incr_hits: self.incr_hits.load(Ordering::Relaxed),
            incr_misses: self.incr_misses.load(Ordering::Relaxed),
            incr_recomputes: self.incr_recomputes.load(Ordering::Relaxed),
        }
    }

    /// Per-query-kind incremental counters, aggregated over every pipeline
    /// database this cache owns (one per prepare fingerprint), sorted by
    /// kind name. Servers export these as
    /// `qor_incr_query_{hits,misses,recomputes}_total{kind=...}`.
    pub fn incr_kind_stats(&self) -> Vec<(&'static str, ::incr::KindStats)> {
        let mut agg: std::collections::BTreeMap<&'static str, ::incr::KindStats> =
            std::collections::BTreeMap::new();
        let dbs: Vec<Arc<Mutex<PipelineDb>>> =
            self.incr.lock().unwrap().values().cloned().collect();
        for db in dbs {
            for (kind, stats) in db.lock().unwrap().stats() {
                agg.entry(kind).or_default().absorb(&stats);
            }
        }
        agg.into_iter().collect()
    }

    /// The pipeline query database for one prepare fingerprint (created on
    /// first use).
    fn incr_db(&self, prepare_fp: u64) -> Arc<Mutex<PipelineDb>> {
        self.incr
            .lock()
            .unwrap()
            .entry(prepare_fp)
            .or_insert_with(|| Arc::new(Mutex::new(crate::incr::new_db())))
            .clone()
    }

    /// Drops every cached kernel, prepared design and incremental query
    /// database (counters are kept: they are cumulative over the cache's
    /// lifetime).
    pub fn clear(&self) {
        let mut state = self.state.lock().unwrap();
        state.prepared.clear();
        state.kernels.clear();
        drop(state);
        self.incr.lock().unwrap().clear();
    }
}

/// A loaded model plus memoized inference front halves (see the
/// [module docs](self)).
pub struct Session {
    model: HierarchicalModel,
    /// Folds the prepare-affecting model options into prepared-cache keys,
    /// so sessions with different graph construction never share entries.
    prepare_fp: u64,
    cache: Arc<SharedCache>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        write!(
            f,
            "Session {{ capacity: {}, cached: {}, hits: {}, misses: {} }}",
            stats.capacity, stats.len, stats.hits, stats.misses
        )
    }
}

impl Session {
    /// Wraps a model with a private cache sized from `QOR_CACHE_CAP`
    /// (default [`DEFAULT_CACHE_CAP`]; see [`SharedCache::new`]).
    pub fn new(model: HierarchicalModel) -> Self {
        Self::with_shared(model, Arc::new(SharedCache::new()))
    }

    /// Wraps a model with a private cache of explicit capacity
    /// (`0` disables the prepared cache; the kernel cache always runs).
    pub fn with_capacity(model: HierarchicalModel, capacity: usize) -> Self {
        Self::with_shared(model, Arc::new(SharedCache::with_capacity(capacity)))
    }

    /// Wraps a model onto an existing [`SharedCache`], sharing memoized
    /// kernels and prepared designs with every other session on it.
    pub fn with_shared(model: HierarchicalModel, cache: Arc<SharedCache>) -> Self {
        Session {
            prepare_fp: model.prepare_fingerprint(),
            model,
            cache,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &HierarchicalModel {
        &self.model
    }

    /// The cache this session reads and writes (shared or private).
    pub fn shared_cache(&self) -> &Arc<SharedCache> {
        &self.cache
    }

    /// Current cache statistics (aggregated across sessions when the cache
    /// is shared).
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every cached kernel and prepared design (counters are kept:
    /// they are cumulative over the cache's lifetime).
    pub fn clear(&self) {
        self.cache.clear();
    }

    /// Predicts the QoR of a bundled benchmark kernel under `cfg`.
    ///
    /// # Errors
    ///
    /// [`QorError::UnknownKernel`] when the name is not in the bundled
    /// set; otherwise as [`Session::predict_source`].
    pub fn predict_kernel(&self, kernel: &str, cfg: &PragmaConfig) -> Result<Qor, QorError> {
        Ok(self.predict_kernel_report(kernel, cfg)?.qor)
    }

    /// As [`Session::predict_kernel`], but also reports per-stage timings
    /// and cache hit/miss flags.
    ///
    /// # Errors
    ///
    /// As [`Session::predict_kernel`].
    pub fn predict_kernel_report(
        &self,
        kernel: &str,
        cfg: &PragmaConfig,
    ) -> Result<PredictReport, QorError> {
        let source = kernels::kernel_source(kernel)
            .ok_or_else(|| QorError::UnknownKernel(kernel.to_string()))?;
        self.predict_source_report(kernel, source, cfg)
    }

    /// Predicts the QoR of `top` in an arbitrary HLS-C `source` under
    /// `cfg`, caching the lowered function and the prepared front half.
    ///
    /// # Errors
    ///
    /// Front-end/lowering errors for broken sources and
    /// [`QorError::UnknownKernel`] when `source` does not define `top`.
    pub fn predict_source(
        &self,
        top: &str,
        source: &str,
        cfg: &PragmaConfig,
    ) -> Result<Qor, QorError> {
        Ok(self.predict_source_report(top, source, cfg)?.qor)
    }

    /// As [`Session::predict_source`], but also reports per-stage timings
    /// and cache hit/miss flags.
    ///
    /// Emits one `session.predict` debug event (see [`obs::log`]) carrying
    /// the active trace context, so a request trace can be followed from
    /// the HTTP layer into the cache layers.
    ///
    /// # Errors
    ///
    /// As [`Session::predict_source`].
    pub fn predict_source_report(
        &self,
        top: &str,
        source: &str,
        cfg: &PragmaConfig,
    ) -> Result<PredictReport, QorError> {
        let khash = kernel_key(top, source);
        let (func, kernel_cache_hit, lower_us) = self.function_cached(khash, top, source)?;
        let (prepared, prepared_cache_hit, prepare_us, incr) =
            self.prepared_cached(khash, &func, cfg);
        let t = Instant::now();
        let qor = self.model.predict_prepared(&prepared);
        let infer_us = t.elapsed().as_micros() as u64;
        let report = PredictReport {
            qor,
            kernel_cache_hit,
            prepared_cache_hit,
            lower_us,
            prepare_us,
            infer_us,
            incr,
        };
        if obs::log::enabled(Level::Debug) {
            obs::log::event(
                Level::Debug,
                "session.predict",
                &[
                    ("top", Json::str(top)),
                    ("kernel_hit", Json::Bool(kernel_cache_hit)),
                    ("prepared_hit", Json::Bool(prepared_cache_hit)),
                    ("lower_us", Json::UInt(lower_us)),
                    ("prepare_us", Json::UInt(prepare_us)),
                    ("infer_us", Json::UInt(infer_us)),
                ],
            );
        }
        Ok(report)
    }

    /// The lowered function of a bundled kernel, from cache when warm
    /// (DSE oracles need the [`Function`] itself).
    ///
    /// # Errors
    ///
    /// [`QorError::UnknownKernel`] for names outside the bundled set.
    pub fn kernel_function(&self, kernel: &str) -> Result<Arc<Function>, QorError> {
        let source = kernels::kernel_source(kernel)
            .ok_or_else(|| QorError::UnknownKernel(kernel.to_string()))?;
        let (func, _, _) = self.function_cached(kernel_key(kernel, source), kernel, source)?;
        Ok(func)
    }

    /// Looks up (or lowers) the kernel; returns the function, whether the
    /// cache answered, and the microseconds spent lowering on a miss.
    fn function_cached(
        &self,
        khash: u64,
        top: &str,
        source: &str,
    ) -> Result<(Arc<Function>, bool, u64), QorError> {
        let cache = &*self.cache;
        if let Some(func) = cache.state.lock().unwrap().kernels.get(&khash) {
            cache.kernel_hits.fetch_add(1, Ordering::Relaxed);
            obs::metrics::counter_add("session/kernel/hits", 1);
            return Ok((func.clone(), true, 0));
        }
        // lower outside the lock: parsing is the expensive part, and two
        // racing threads produce identical functions anyway
        cache.kernel_misses.fetch_add(1, Ordering::Relaxed);
        obs::metrics::counter_add("session/kernel/misses", 1);
        let t = Instant::now();
        let program = frontc::parse(source)?;
        let module = hir::lower(&program)?;
        let func = Arc::new(
            module
                .function(top)
                .ok_or_else(|| QorError::UnknownKernel(top.to_string()))?
                .clone(),
        );
        let lower_us = t.elapsed().as_micros() as u64;
        cache
            .state
            .lock()
            .unwrap()
            .kernels
            .entry(khash)
            .or_insert_with(|| func.clone());
        Ok((func, false, lower_us))
    }

    /// Looks up (or builds) the prepared front half; returns the design,
    /// whether the cache answered, the microseconds spent preparing on a
    /// miss, and the incremental query counts of that build.
    fn prepared_cached(
        &self,
        khash: u64,
        func: &Arc<Function>,
        cfg: &PragmaConfig,
    ) -> (Arc<PreparedDesign>, bool, u64, IncrCounts) {
        let cache = &*self.cache;
        let key = design_key(self.prepare_fp, khash, cfg);
        if cache.capacity > 0 {
            let mut state = cache.state.lock().unwrap();
            state.tick += 1;
            let tick = state.tick;
            if let Some((last_used, prepared)) = state.prepared.get_mut(&key) {
                *last_used = tick;
                let prepared = prepared.clone();
                drop(state);
                cache.hits.fetch_add(1, Ordering::Relaxed);
                obs::metrics::counter_add("session/cache/hits", 1);
                return (prepared, true, 0, IncrCounts::default());
            }
        }
        cache.misses.fetch_add(1, Ordering::Relaxed);
        obs::metrics::counter_add("session/cache/misses", 1);
        // prepare outside the LRU lock so whole-design lookups don't
        // serialize behind it; the incremental path serializes per
        // pipeline database, which is what lets neighbors share memos.
        // Either way racing threads compute bit-identical designs.
        let t = Instant::now();
        let (prepared, incr) = self.build_prepared(khash, func, cfg);
        let prepare_us = t.elapsed().as_micros() as u64;
        if cache.capacity > 0 {
            let mut state = cache.state.lock().unwrap();
            state.tick += 1;
            let tick = state.tick;
            state.prepared.insert(key, (tick, prepared.clone()));
            while state.prepared.len() > cache.capacity {
                // O(len) scan; capacities are small enough that a heap
                // would cost more in bookkeeping than it saves
                let oldest = state
                    .prepared
                    .iter()
                    .min_by_key(|(_, (last_used, _))| *last_used)
                    .map(|(k, _)| *k)
                    .expect("non-empty map");
                state.prepared.remove(&oldest);
                cache.evictions.fetch_add(1, Ordering::Relaxed);
                obs::metrics::counter_add("session/cache/evictions", 1);
            }
            obs::metrics::gauge_set("session/cache/size", state.prepared.len() as f64);
        }
        (prepared, false, prepare_us, incr)
    }

    /// Builds a prepared front half on a prepared-cache miss.
    ///
    /// With incremental queries enabled (`QOR_INCR != "0"`, the default)
    /// this runs through the per-prepare-fingerprint [`PipelineDb`], so
    /// pragma-neighbor configurations reuse every per-loop subgraph whose
    /// read support did not change. `QOR_INCR=0` falls back to a
    /// from-scratch [`HierarchicalModel::prepare`]. Both paths produce
    /// byte-identical designs; the differential tests pin that.
    fn build_prepared(
        &self,
        khash: u64,
        func: &Arc<Function>,
        cfg: &PragmaConfig,
    ) -> (Arc<PreparedDesign>, IncrCounts) {
        let cache = &*self.cache;
        if !cache.incr_enabled {
            return (
                Arc::new(self.model.prepare(func.clone(), cfg.clone())),
                IncrCounts::default(),
            );
        }
        let db = cache.incr_db(self.prepare_fp);
        let mut db = db.lock().unwrap();
        let (prepared, incr) = crate::incr::prepare_design(
            &mut db,
            khash,
            func,
            cfg,
            self.model.options().graph_max_nodes,
        );
        drop(db);
        cache.incr_hits.fetch_add(incr.hits, Ordering::Relaxed);
        cache.incr_misses.fetch_add(incr.misses, Ordering::Relaxed);
        cache
            .incr_recomputes
            .fetch_add(incr.recomputes, Ordering::Relaxed);
        obs::metrics::counter_add("incr/hits", incr.hits);
        obs::metrics::counter_add("incr/misses", incr.misses);
        obs::metrics::counter_add("incr/recomputes", incr.recomputes);
        (Arc::new(prepared), incr)
    }

    /// Builds (or fetches) the prepared front half of a bundled kernel
    /// without running inference; returns the design and a report whose
    /// `qor` is zeroed and `infer_us` is 0.
    ///
    /// This is the benchmarking entry point: `qor-bench incr_sweep` uses
    /// it to time prepare cost in isolation and to compare incremental
    /// against from-scratch designs by [`PreparedDesign::digest`].
    ///
    /// # Errors
    ///
    /// [`QorError::UnknownKernel`] when the name is not in the bundled
    /// set; otherwise front-end/lowering errors.
    pub fn prepare_kernel(
        &self,
        kernel: &str,
        cfg: &PragmaConfig,
    ) -> Result<(Arc<PreparedDesign>, PredictReport), QorError> {
        let source = kernels::kernel_source(kernel)
            .ok_or_else(|| QorError::UnknownKernel(kernel.to_string()))?;
        let khash = kernel_key(kernel, source);
        let (func, kernel_cache_hit, lower_us) = self.function_cached(khash, kernel, source)?;
        let (prepared, prepared_cache_hit, prepare_us, incr) =
            self.prepared_cached(khash, &func, cfg);
        let report = PredictReport {
            qor: Qor::default(),
            kernel_cache_hit,
            prepared_cache_hit,
            lower_us,
            prepare_us,
            infer_us: 0,
            incr,
        };
        Ok((prepared, report))
    }
}

/// Prepared-cache capacity from the `QOR_CACHE_CAP` environment variable.
///
/// `"0"` deliberately parses to a capacity of zero (caching disabled);
/// only an unset or unparsable value falls back to [`DEFAULT_CACHE_CAP`].
fn env_cache_cap() -> usize {
    match std::env::var("QOR_CACHE_CAP") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(DEFAULT_CACHE_CAP),
        Err(_) => DEFAULT_CACHE_CAP,
    }
}

/// Whether prepared-cache misses run through the incremental query
/// database, from the `QOR_INCR` environment variable. On by default;
/// only an explicit `QOR_INCR=0` selects the from-scratch prepare path.
fn env_incr_enabled() -> bool {
    match std::env::var("QOR_INCR") {
        Ok(v) => v.trim() != "0",
        Err(_) => true,
    }
}

/// Stable key of a kernel: FNV-1a over `top NUL source`.
fn kernel_key(top: &str, source: &str) -> u64 {
    let mut h = Fnv1aHasher::new();
    h.write(top.as_bytes());
    h.write(&[0]);
    h.write(source.as_bytes());
    h.finish()
}

/// Stable key of a `(model prepare options, kernel, pragma config)`
/// triple.
fn design_key(prepare_fp: u64, khash: u64, cfg: &PragmaConfig) -> u64 {
    let mut h = Fnv1aHasher::new();
    h.write_u64(prepare_fp);
    h.write_u64(khash);
    h.write_u64(cfg.fingerprint());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TrainOptions;
    use pragma::LoopId;

    fn tiny_session(capacity: usize) -> Session {
        let opts = TrainOptions::quick().with_hidden(12).with_epochs(1);
        Session::with_capacity(HierarchicalModel::new(&opts), capacity)
    }

    #[test]
    fn repeated_queries_hit_the_cache_and_match() {
        let session = tiny_session(8);
        let cfg = PragmaConfig::default();
        let first = session.predict_kernel("gemm", &cfg).unwrap();
        let second = session.predict_kernel("gemm", &cfg).unwrap();
        assert_eq!(first, second);
        let stats = session.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.kernel_misses, 1);
        assert_eq!(stats.kernel_hits, 1);
        assert!(stats.hit_rate() > 0.4);
    }

    #[test]
    fn cached_prediction_matches_direct_model_path() {
        let session = tiny_session(8);
        let func = kernels::lower_kernel("mvt").unwrap();
        let mut cfg = PragmaConfig::default();
        cfg.set_pipeline(LoopId::from_path(&[0, 0]), true);
        let direct = session.model().predict(&func, &cfg);
        // twice: once through the miss path, once through the hit path
        assert_eq!(session.predict_kernel("mvt", &cfg).unwrap(), direct);
        assert_eq!(session.predict_kernel("mvt", &cfg).unwrap(), direct);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let session = tiny_session(2);
        let space = kernels::design_space(&kernels::lower_kernel("mvt").unwrap());
        let configs = space.enumerate_capped(3);
        assert_eq!(configs.len(), 3);
        session.predict_kernel("mvt", &configs[0]).unwrap(); // {0}
        session.predict_kernel("mvt", &configs[1]).unwrap(); // {0,1}
        session.predict_kernel("mvt", &configs[0]).unwrap(); // touch 0
        session.predict_kernel("mvt", &configs[2]).unwrap(); // evicts 1
        session.predict_kernel("mvt", &configs[0]).unwrap(); // still cached
        let stats = session.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.len, 2);
        // config 1 was evicted: querying it again misses
        session.predict_kernel("mvt", &configs[1]).unwrap();
        assert_eq!(session.stats().misses, 4);
    }

    #[test]
    fn zero_capacity_disables_the_prepared_cache() {
        let session = tiny_session(0);
        let cfg = PragmaConfig::default();
        let a = session.predict_kernel("gemm", &cfg).unwrap();
        let b = session.predict_kernel("gemm", &cfg).unwrap();
        assert_eq!(a, b);
        let stats = session.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.len, 0);
        assert_eq!(stats.kernel_hits, 1, "kernel cache still active");
    }

    #[test]
    fn cache_cap_env_var_zero_disables_caching_without_churn() {
        // the only test in this binary that touches QOR_CACHE_CAP or calls
        // Session::new, so the process-global env var cannot race; all
        // sub-cases run sequentially inside this one test for the same
        // reason
        let opts = TrainOptions::quick().with_hidden(12).with_epochs(1);
        let model = || HierarchicalModel::new(&opts);

        std::env::set_var("QOR_CACHE_CAP", "0");
        let session = Session::new(model());
        assert_eq!(session.stats().capacity, 0);
        let cfg = PragmaConfig::default();
        let a = session.predict_kernel("gemm", &cfg).unwrap();
        let b = session.predict_kernel("gemm", &cfg).unwrap();
        assert_eq!(a, b, "disabled cache must not change predictions");
        let stats = session.stats();
        assert_eq!(stats.hits, 0, "all lookups must miss");
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 0, "no eviction churn with cap 0");
        assert_eq!(stats.len, 0, "nothing may be stored");

        std::env::set_var("QOR_CACHE_CAP", " 3 ");
        assert_eq!(Session::new(model()).stats().capacity, 3);

        std::env::set_var("QOR_CACHE_CAP", "not-a-number");
        assert_eq!(Session::new(model()).stats().capacity, DEFAULT_CACHE_CAP);

        std::env::remove_var("QOR_CACHE_CAP");
        assert_eq!(Session::new(model()).stats().capacity, DEFAULT_CACHE_CAP);
    }

    #[test]
    fn unknown_kernel_and_missing_top_are_typed() {
        let session = tiny_session(4);
        assert!(matches!(
            session.predict_kernel("nope", &PragmaConfig::default()),
            Err(QorError::UnknownKernel(_))
        ));
        let src = "void f(float a[4]) { for (int i = 0; i < 4; i++) { a[i] = a[i]; } }";
        assert!(matches!(
            session.predict_source("g", src, &PragmaConfig::default()),
            Err(QorError::UnknownKernel(_))
        ));
    }

    #[test]
    fn arbitrary_sources_are_cached_by_content() {
        let session = tiny_session(4);
        let src =
            "void f(float a[8], float b[8]) { for (int i = 0; i < 8; i++) { b[i] = a[i] * 2.0; } }";
        let cfg = PragmaConfig::default();
        let q1 = session.predict_source("f", src, &cfg).unwrap();
        let q2 = session.predict_source("f", src, &cfg).unwrap();
        assert_eq!(q1, q2);
        assert_eq!(session.stats().kernel_hits, 1);
        // same top name, different body: a distinct cache entry
        let src2 =
            "void f(float a[8], float b[8]) { for (int i = 0; i < 8; i++) { b[i] = a[i] + 1.0; } }";
        session.predict_source("f", src2, &cfg).unwrap();
        assert_eq!(session.stats().kernel_misses, 2);
    }

    #[test]
    fn clear_empties_caches_but_keeps_counters() {
        let session = tiny_session(4);
        let cfg = PragmaConfig::default();
        session.predict_kernel("gemm", &cfg).unwrap();
        session.clear();
        assert_eq!(session.stats().len, 0);
        session.predict_kernel("gemm", &cfg).unwrap();
        let stats = session.stats();
        assert_eq!(stats.misses, 2, "cleared entry must be recomputed");
        assert_eq!(stats.kernel_misses, 2);
    }

    #[test]
    fn sessions_share_prepared_designs_through_one_cache() {
        let opts = TrainOptions::quick().with_hidden(12).with_epochs(1);
        let cache = Arc::new(SharedCache::with_capacity(16));
        // two model versions with identical prepare options (different
        // weight seeds): the second session's first query must be a hit
        let a = Session::with_shared(HierarchicalModel::new(&opts), cache.clone());
        let b = Session::with_shared(HierarchicalModel::new(&opts.with_seed(99)), cache.clone());
        let cfg = PragmaConfig::default();
        a.predict_kernel("gemm", &cfg).unwrap();
        b.predict_kernel("gemm", &cfg).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "front half computed once: {stats:?}");
        assert_eq!(stats.hits, 1, "second session reuses it: {stats:?}");
        assert_eq!(stats.kernel_misses, 1);
        assert_eq!(stats.kernel_hits, 1);
    }

    #[test]
    fn prepare_fingerprint_splits_incompatible_models() {
        let opts = TrainOptions::quick().with_hidden(12).with_epochs(1);
        let mut other = opts;
        other.graph_max_nodes = 64; // different graph construction
        let cache = Arc::new(SharedCache::with_capacity(16));
        let a = Session::with_shared(HierarchicalModel::new(&opts), cache.clone());
        let b = Session::with_shared(HierarchicalModel::new(&other), cache.clone());
        assert_ne!(
            a.model().prepare_fingerprint(),
            b.model().prepare_fingerprint()
        );
        let cfg = PragmaConfig::default();
        a.predict_kernel("gemm", &cfg).unwrap();
        b.predict_kernel("gemm", &cfg).unwrap();
        let stats = cache.stats();
        assert_eq!(
            stats.misses, 2,
            "incompatible prepare options must not share entries: {stats:?}"
        );
        assert_eq!(stats.hits, 0);
    }
}
