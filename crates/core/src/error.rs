//! Workspace-wide error type for the QoR-prediction pipeline.
//!
//! Every fallible public entry point in `qor-core` (and the crates layered
//! on top of it) returns [`QorError`] instead of `Box<dyn Error>`, so
//! callers can match on the failure mode and the error stays `Send + Sync`
//! for the parallel executor.

use std::fmt;

/// Any failure produced by the source-to-post-route pipeline.
#[derive(Debug)]
pub enum QorError {
    /// HLS-C front-end failure (lexing, parsing, or semantic analysis).
    Parse(frontc::FrontError),
    /// HIR lowering failure.
    Lower(hir::LowerError),
    /// Simulated tool-flow evaluation failure.
    Eval(hlsim::EvalError),
    /// A kernel name that is not registered (bundled set or dataset).
    UnknownKernel(String),
    /// Filesystem failure (report/artifact I/O).
    Io(std::io::Error),
    /// Tensor/graph dimension mismatch.
    Shape(String),
    /// A persisted artifact (checkpoint) is malformed: bad magic, truncated
    /// records, or a content-checksum mismatch.
    Corrupt(String),
    /// A persisted artifact was written by a format version this build does
    /// not understand.
    UnsupportedVersion(u32),
    /// A distributed-search dispatch failure: no live workers, or a work
    /// unit exhausted its retry budget across the fleet.
    Fleet(String),
}

impl fmt::Display for QorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QorError::Parse(e) => write!(f, "front-end: {e}"),
            QorError::Lower(e) => write!(f, "lowering: {e}"),
            QorError::Eval(e) => write!(f, "evaluation: {e}"),
            QorError::UnknownKernel(name) => write!(f, "unknown kernel {name:?}"),
            QorError::Io(e) => write!(f, "io: {e}"),
            QorError::Shape(msg) => write!(f, "shape mismatch: {msg}"),
            QorError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
            QorError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            QorError::Fleet(msg) => write!(f, "fleet: {msg}"),
        }
    }
}

impl std::error::Error for QorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QorError::Parse(e) => Some(e),
            QorError::Lower(e) => Some(e),
            QorError::Eval(e) => Some(e),
            QorError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<frontc::FrontError> for QorError {
    fn from(e: frontc::FrontError) -> Self {
        QorError::Parse(e)
    }
}

impl From<hir::LowerError> for QorError {
    fn from(e: hir::LowerError) -> Self {
        QorError::Lower(e)
    }
}

impl From<hlsim::EvalError> for QorError {
    fn from(e: hlsim::EvalError) -> Self {
        QorError::Eval(e)
    }
}

impl From<std::io::Error> for QorError {
    fn from(e: std::io::Error) -> Self {
        QorError::Io(e)
    }
}

impl From<tensor::ImportError> for QorError {
    fn from(e: tensor::ImportError) -> Self {
        match e {
            tensor::ImportError::ShapeMismatch { .. } => QorError::Shape(e.to_string()),
            tensor::ImportError::UnknownParam(_) => QorError::Corrupt(e.to_string()),
        }
    }
}

impl From<kernels::KernelError> for QorError {
    fn from(e: kernels::KernelError) -> Self {
        match e {
            kernels::KernelError::UnknownKernel(n) => QorError::UnknownKernel(n),
            kernels::KernelError::MissingFunction(n) => QorError::UnknownKernel(n),
            kernels::KernelError::Front(e) => QorError::Parse(e),
            kernels::KernelError::Lower(e) => QorError::Lower(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_error_maps_by_variant() {
        let e: QorError = kernels::KernelError::UnknownKernel("nope".into()).into();
        assert!(matches!(e, QorError::UnknownKernel(ref n) if n == "nope"));
        assert_eq!(e.to_string(), "unknown kernel \"nope\"");
    }

    #[test]
    fn import_error_maps_by_variant() {
        let e: QorError = tensor::ImportError::UnknownParam("w".into()).into();
        assert!(matches!(e, QorError::Corrupt(_)));
        let e: QorError = tensor::ImportError::ShapeMismatch {
            name: "w".into(),
            expected: (2, 2),
            found: (1, 1),
        }
        .into();
        assert!(matches!(e, QorError::Shape(_)));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e = QorError::Eval(hlsim::EvalError {
            message: "bad".into(),
        });
        assert!(e.source().is_some());
        let e = QorError::Shape("3x4 vs 4x3".into());
        assert!(e.source().is_none());
    }
}
