//! The source→features pipeline expressed as incremental queries.
//!
//! This module instantiates the generic [`incr::QueryDb`] with the
//! concrete key/value types of the prepare pipeline, turning
//! [`HierarchicalModel::prepare`](crate::HierarchicalModel::prepare) into
//! a dependency-tracked computation where a one-pragma edit recomputes
//! only the loop subtree that reads it.
//!
//! # Key scheme
//!
//! Inputs (set by [`prepare_design`] from the full `PragmaConfig` before
//! every query; unchanged sets are no-ops):
//!
//! * [`PipeKey::Opts`] — `graph_max_nodes` (constant per database; the
//!   owning [`SharedCache`](crate::SharedCache) shards databases by
//!   prepare fingerprint).
//! * [`PipeKey::Func`] — the lowered HIR, keyed by the session's
//!   content-addressed kernel hash.
//! * [`PipeKey::LoopCfg`] — one loop's [`LoopPragma`] (explicit defaults
//!   included, one input per loop in the function).
//! * [`PipeKey::ArrayCfg`] — one array's per-dimension partitions.
//!
//! Derived queries:
//!
//! * [`PipeKey::Hierarchy`] — the §III-C.1 hierarchy split. Reads every
//!   loop pragma; cheap, and *backdates* when a pragma edit does not move
//!   any loop between hierarchy levels.
//! * [`PipeKey::LoopRole`] — one loop's slice of the hierarchy (is it an
//!   inner region root, and is it pipelined). A narrow projection so that
//!   downstream per-loop queries do not depend on the whole hierarchy
//!   value.
//! * [`PipeKey::RegionCfg`] — the restricted pragma configuration a
//!   loop's region can observe: its subtree's loop pragmas plus the
//!   partitions of arrays used in the subtree. This mirrors the training
//!   dedup key (`region_key` in `model.rs`) and is the precision lever:
//!   editing loop `L` leaves every other loop's `RegionCfg` value equal,
//!   so their `LoopPrepared` memos stay green.
//! * [`PipeKey::LoopPrepared`] — the expensive query: CDFG subgraph +
//!   GNN feature tensors + analytic II for one inner loop, computed by
//!   the *same function* (`prepare_one_inner`) the batch path calls,
//!   against the restricted config. Byte-identity with the full config is
//!   guaranteed by the restriction being exactly the region's read
//!   support (and enforced by the differential test suite).
//!
//! [`prepare_design`] then assembles a [`PreparedDesign`] from the
//! hierarchy order and the per-loop `Arc`s — no tensor is copied — and
//! stamps it with the *caller's* full configuration, since the
//! weight-dependent back half (super-node condensation) reads outer-loop
//! pragmas the per-region queries deliberately do not.

use std::hash::Hasher;
use std::sync::Arc;

use cdfg::GraphOptions;
use hir::Function;
use incr::{Key, KindStats, QueryDb, Value};
use pragma::{ArrayPartition, LoopId, LoopPragma, PragmaConfig};

use crate::hash::Fnv1aHasher;
use crate::hierarchy::{split_hierarchy, Hierarchy};
use crate::model::{prepare_one_inner, PreparedDesign, PreparedInner};

/// Query keys of the prepare pipeline. `khash` is the session's
/// content-addressed kernel hash (FNV over `top NUL source`), so one
/// database serves many kernels without cross-talk.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PipeKey {
    /// Input: `graph_max_nodes`.
    Opts,
    /// Input: lowered HIR of kernel `khash`.
    Func(u64),
    /// Input: one loop's pragma entry.
    LoopCfg(u64, LoopId),
    /// Input: one array's per-dimension partitions.
    ArrayCfg(u64, String),
    /// Derived: the hierarchy split.
    Hierarchy(u64),
    /// Derived: one loop's role in the hierarchy.
    LoopRole(u64, LoopId),
    /// Derived: the restricted config observable by one loop's region.
    RegionCfg(u64, LoopId),
    /// Derived: one inner loop's prepared subgraph + features.
    LoopPrepared(u64, LoopId),
}

impl Key for PipeKey {
    fn kind(&self) -> &'static str {
        match self {
            PipeKey::Opts => "opts",
            PipeKey::Func(_) => "func",
            PipeKey::LoopCfg(..) => "loop_cfg",
            PipeKey::ArrayCfg(..) => "array_cfg",
            PipeKey::Hierarchy(_) => "hierarchy",
            PipeKey::LoopRole(..) => "loop_role",
            PipeKey::RegionCfg(..) => "region_cfg",
            PipeKey::LoopPrepared(..) => "loop_prepared",
        }
    }

    fn fingerprint(&self) -> u64 {
        let mut h = Fnv1aHasher::new();
        let (tag, khash, lid, name): (u8, u64, Option<&LoopId>, Option<&str>) = match self {
            PipeKey::Opts => (0, 0, None, None),
            PipeKey::Func(k) => (1, *k, None, None),
            PipeKey::LoopCfg(k, id) => (2, *k, Some(id), None),
            PipeKey::ArrayCfg(k, name) => (3, *k, None, Some(name)),
            PipeKey::Hierarchy(k) => (4, *k, None, None),
            PipeKey::LoopRole(k, id) => (5, *k, Some(id), None),
            PipeKey::RegionCfg(k, id) => (6, *k, Some(id), None),
            PipeKey::LoopPrepared(k, id) => (7, *k, Some(id), None),
        };
        h.write(&[tag]);
        h.write_u64(khash);
        if let Some(id) = lid {
            for seg in id.path() {
                h.write_u16(*seg);
            }
        }
        if let Some(name) = name {
            h.write(name.as_bytes());
        }
        h.finish()
    }
}

/// Query values. Large payloads are `Arc`-wrapped (clones are pointer
/// bumps) and expensive content fingerprints are computed once at
/// construction and carried alongside.
#[derive(Debug, Clone)]
pub enum PipeVal {
    /// `graph_max_nodes`.
    Opts(u64),
    /// Lowered HIR plus its content-addressed kernel hash.
    Func(Arc<Function>, u64),
    /// One loop's pragma.
    LoopCfg(LoopPragma),
    /// One array's partitions, dimension-indexed from 0.
    ArrayCfg(Arc<Vec<ArrayPartition>>),
    /// The hierarchy split.
    Hierarchy(Arc<Hierarchy>),
    /// `Some(pipelined)` when the loop is an inner region root.
    LoopRole(Option<bool>),
    /// Restricted region config plus its fingerprint.
    RegionCfg(Arc<PragmaConfig>, u64),
    /// Prepared inner loop plus an input-derived identity fingerprint
    /// (the value is a pure function of its query inputs).
    LoopPrepared(Arc<PreparedInner>, u64),
}

impl Value for PipeVal {
    fn eq_value(&self, other: &Self) -> bool {
        match (self, other) {
            (PipeVal::Opts(a), PipeVal::Opts(b)) => a == b,
            (PipeVal::Func(fa, ka), PipeVal::Func(fb, kb)) => {
                ka == kb && (Arc::ptr_eq(fa, fb) || fa == fb)
            }
            (PipeVal::LoopCfg(a), PipeVal::LoopCfg(b)) => a == b,
            (PipeVal::ArrayCfg(a), PipeVal::ArrayCfg(b)) => a == b,
            (PipeVal::Hierarchy(a), PipeVal::Hierarchy(b)) => a == b,
            (PipeVal::LoopRole(a), PipeVal::LoopRole(b)) => a == b,
            (PipeVal::RegionCfg(a, _), PipeVal::RegionCfg(b, _)) => a == b,
            // Digest first (cheap), then deep equality: backdating must
            // never conflate designs on a 64-bit collision, or memo hits
            // could return non-identical bytes.
            (PipeVal::LoopPrepared(a, fa), PipeVal::LoopPrepared(b, fb)) => fa == fb && a == b,
            _ => false,
        }
    }

    fn fingerprint(&self) -> u64 {
        match self {
            PipeVal::Opts(n) => *n,
            PipeVal::Func(_, khash) => *khash,
            PipeVal::LoopCfg(p) => {
                let mut h = Fnv1aHasher::new();
                h.write(&[u8::from(p.pipeline), u8::from(p.flatten)]);
                match p.unroll {
                    pragma::Unroll::Off => h.write(&[0]),
                    pragma::Unroll::Factor(f) => {
                        h.write(&[1]);
                        h.write_u32(f);
                    }
                    pragma::Unroll::Full => h.write(&[2]),
                }
                h.finish()
            }
            PipeVal::ArrayCfg(parts) => {
                let mut h = Fnv1aHasher::new();
                for p in parts.iter() {
                    h.write(&[p.kind as u8 + 1]);
                    h.write_u32(p.factor);
                }
                h.finish()
            }
            PipeVal::Hierarchy(hier) => {
                let mut h = Fnv1aHasher::new();
                for inner in &hier.inner {
                    for seg in inner.id.path() {
                        h.write_u16(*seg);
                    }
                    h.write(&[0xfe, inner.category as u8, u8::from(inner.pipelined)]);
                }
                h.finish()
            }
            PipeVal::LoopRole(role) => match role {
                None => 0,
                Some(false) => 1,
                Some(true) => 2,
            },
            PipeVal::RegionCfg(_, fp) | PipeVal::LoopPrepared(_, fp) => *fp,
        }
    }
}

/// The pipeline's query database. One per prepare fingerprint, owned by
/// [`SharedCache`](crate::SharedCache) behind a mutex.
pub type PipelineDb = QueryDb<PipeKey, PipeVal>;

/// Default bound on the cross-revision version cache, overridable with
/// `QOR_INCR_CAP` (0 disables cross-revision reuse but keeps red-green
/// validation).
pub const DEFAULT_VERSION_CAP: usize = 4096;

/// A fresh pipeline database honoring `QOR_INCR_CAP`.
pub fn new_db() -> PipelineDb {
    let cap = std::env::var("QOR_INCR_CAP")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_VERSION_CAP);
    PipelineDb::new(cap)
}

fn unwrap_func(v: PipeVal) -> Arc<Function> {
    match v {
        PipeVal::Func(f, _) => f,
        _ => unreachable!("incr: Func key holds non-Func value"),
    }
}

fn unwrap_loop_cfg(v: PipeVal) -> LoopPragma {
    match v {
        PipeVal::LoopCfg(p) => p,
        _ => unreachable!("incr: LoopCfg key holds non-LoopCfg value"),
    }
}

/// Executes one derived query. Every read goes back through `db` so the
/// engine records it as a dependency edge.
fn execute(db: &mut PipelineDb, key: &PipeKey) -> PipeVal {
    match key {
        PipeKey::Opts | PipeKey::Func(_) | PipeKey::LoopCfg(..) | PipeKey::ArrayCfg(..) => {
            unreachable!(
                "incr: input query '{}' fetched before prepare_design seeded it",
                key.kind()
            )
        }
        PipeKey::Hierarchy(k) => {
            let func = unwrap_func(db.get(&PipeKey::Func(*k), &execute));
            let mut cfg = PragmaConfig::new();
            for meta in func.loops() {
                let p = unwrap_loop_cfg(db.get(&PipeKey::LoopCfg(*k, meta.id.clone()), &execute));
                cfg.set_pipeline(meta.id.clone(), p.pipeline);
                cfg.set_unroll(meta.id.clone(), p.unroll);
                cfg.set_flatten(meta.id.clone(), p.flatten);
            }
            PipeVal::Hierarchy(Arc::new(split_hierarchy(&func, &cfg)))
        }
        PipeKey::LoopRole(k, id) => {
            let hier = match db.get(&PipeKey::Hierarchy(*k), &execute) {
                PipeVal::Hierarchy(h) => h,
                _ => unreachable!("incr: Hierarchy key holds non-Hierarchy value"),
            };
            PipeVal::LoopRole(
                hier.inner
                    .iter()
                    .find(|inner| inner.id == *id)
                    .map(|inner| inner.pipelined),
            )
        }
        PipeKey::RegionCfg(k, id) => {
            let func = unwrap_func(db.get(&PipeKey::Func(*k), &execute));
            let mut restricted = PragmaConfig::new();
            for meta in func.loops() {
                if id.contains(&meta.id) {
                    let p =
                        unwrap_loop_cfg(db.get(&PipeKey::LoopCfg(*k, meta.id.clone()), &execute));
                    restricted.set_pipeline(meta.id.clone(), p.pipeline);
                    restricted.set_unroll(meta.id.clone(), p.unroll);
                    restricted.set_flatten(meta.id.clone(), p.flatten);
                }
            }
            for use_ in hir::array_uses(&func, id, true) {
                let parts = match db.get(&PipeKey::ArrayCfg(*k, use_.array.clone()), &execute) {
                    PipeVal::ArrayCfg(p) => p,
                    _ => unreachable!("incr: ArrayCfg key holds non-ArrayCfg value"),
                };
                for (d, p) in parts.iter().enumerate() {
                    restricted.set_partition(use_.array.clone(), d as u32 + 1, *p);
                }
            }
            let fp = restricted.fingerprint();
            PipeVal::RegionCfg(Arc::new(restricted), fp)
        }
        PipeKey::LoopPrepared(k, id) => {
            let max_nodes = match db.get(&PipeKey::Opts, &execute) {
                PipeVal::Opts(n) => n as usize,
                _ => unreachable!("incr: Opts key holds non-Opts value"),
            };
            let func = unwrap_func(db.get(&PipeKey::Func(*k), &execute));
            let pipelined = match db.get(&PipeKey::LoopRole(*k, id.clone()), &execute) {
                PipeVal::LoopRole(role) => role.unwrap_or(false),
                _ => unreachable!("incr: LoopRole key holds non-LoopRole value"),
            };
            let (rcfg, rcfg_fp) = match db.get(&PipeKey::RegionCfg(*k, id.clone()), &execute) {
                PipeVal::RegionCfg(c, fp) => (c, fp),
                _ => unreachable!("incr: RegionCfg key holds non-RegionCfg value"),
            };
            let inner = prepare_one_inner(&func, &rcfg, id, pipelined, GraphOptions { max_nodes });
            // the value is a pure function of its inputs, so its identity
            // fingerprint is derived from the input fingerprints — hashing
            // the tensors themselves would cost a fraction of rebuilding
            // them on every recompute
            let mut h = Fnv1aHasher::new();
            h.write_u64(key.fingerprint());
            h.write_u64(*k);
            h.write_u64(max_nodes as u64);
            h.write(&[u8::from(pipelined)]);
            h.write_u64(rcfg_fp);
            let fp = h.finish();
            PipeVal::LoopPrepared(Arc::new(inner), fp)
        }
    }
}

/// Per-prepare incremental counters (the [`KindStats`] totals delta of
/// one [`prepare_design`] call).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrCounts {
    /// Queries answered from memo.
    pub hits: u64,
    /// First-ever query computations.
    pub misses: u64,
    /// Query re-executions after an input actually changed.
    pub recomputes: u64,
}

impl IncrCounts {
    /// Element-wise sum.
    pub fn absorb(&mut self, other: &IncrCounts) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.recomputes += other.recomputes;
    }

    fn from_totals(after: &KindStats, before: &KindStats) -> IncrCounts {
        let d = after.delta(before);
        IncrCounts {
            hits: d.hits,
            misses: d.misses,
            recomputes: d.recomputes,
        }
    }
}

/// Builds a [`PreparedDesign`] through the query database: seeds the
/// inputs from `(func, cfg)`, fetches the hierarchy and each inner loop's
/// prepared subgraph (memoized), and assembles the result around the
/// caller's full configuration.
///
/// Byte-identical to `HierarchicalModel::prepare` with the same
/// `graph_max_nodes` — on a cold database because both run
/// `prepare_one_inner` on equivalent inputs, and on a warm one because
/// memo hits replay values those exact executions produced.
///
/// Returns the design and the hit/miss/recompute delta of this call.
pub fn prepare_design(
    db: &mut PipelineDb,
    khash: u64,
    func: &Arc<Function>,
    cfg: &PragmaConfig,
    max_nodes: usize,
) -> (PreparedDesign, IncrCounts) {
    let before = db.totals();
    db.set_input(PipeKey::Opts, PipeVal::Opts(max_nodes as u64));
    db.set_input(PipeKey::Func(khash), PipeVal::Func(func.clone(), khash));
    for meta in func.loops() {
        db.set_input(
            PipeKey::LoopCfg(khash, meta.id.clone()),
            PipeVal::LoopCfg(cfg.loop_pragma(&meta.id)),
        );
    }
    for info in &func.arrays {
        let parts: Vec<ArrayPartition> = (1..=info.dims.len() as u32)
            .map(|d| cfg.partition(&info.name, d))
            .collect();
        db.set_input(
            PipeKey::ArrayCfg(khash, info.name.clone()),
            PipeVal::ArrayCfg(Arc::new(parts)),
        );
    }
    let hier = match db.get(&PipeKey::Hierarchy(khash), &execute) {
        PipeVal::Hierarchy(h) => h,
        _ => unreachable!("incr: Hierarchy key holds non-Hierarchy value"),
    };
    let inner: Vec<Arc<PreparedInner>> = hier
        .inner
        .iter()
        .map(
            |i| match db.get(&PipeKey::LoopPrepared(khash, i.id.clone()), &execute) {
                PipeVal::LoopPrepared(p, _) => p,
                _ => unreachable!("incr: LoopPrepared key holds non-LoopPrepared value"),
            },
        )
        .collect();
    let design = PreparedDesign {
        func: func.clone(),
        cfg: cfg.clone(),
        inner,
    };
    (design, IncrCounts::from_totals(&db.totals(), &before))
}
