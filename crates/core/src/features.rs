//! Node and loop-level feature annotation (paper §III-B, Table II).

use cdfg::{Graph, NodeKind};
use gnn::GraphData;
use hir::Function;
use hlsim::{OpCost, OpLibrary};
use pragma::{LoopId, PragmaConfig};
use tensor::Matrix;

/// Operation mnemonics in one-hot order.
pub const MNEMONICS: &[&str] = &[
    "add", "sub", "mul", "div", "rem", "fadd", "fsub", "fmul", "fdiv", "icmp", "fcmp", "and", "or",
    "not", "select", "sqrt", "exp", "abs", "max", "min", "cast", "load", "store", "phi", "param",
    "br", "port", "super",
];

/// Numeric features appended after the one-hot optype:
/// `#invocation, in-degree, out-degree, #cycle, delay, LUT, FF, DSP,
/// super-latency, super-TC, super-II, hardware-weight` (all compressed
/// with `log1p` except delay, which is normalized by the clock period).
pub const NUM_FEATURES: usize = 12;

/// Total node-feature dimension.
pub const FEATURE_DIM: usize = MNEMONICS.len() + NUM_FEATURES;

/// Loop-level (graph-level) features for the inner-hierarchy models:
/// `log1p(II), log1p(TC), pipelined flag, log1p(unroll factor),
/// log1p(II*TC)` — the last being the dominant term of a pipelined loop's
/// latency `IL + II*(TC-1)`.
pub const LOOP_FEATURE_DIM: usize = 5;

/// Graph-level aggregate features (see [`graph_aggregates`]).
pub const AGG_DIM: usize = 9;

fn log1p(v: f64) -> f32 {
    (v.max(0.0) + 1.0).ln() as f32
}

/// Cost features of a node by mnemonic (zero for ports/supers/synthetic
/// control, per the paper's treatment of non-arithmetic operations).
fn mnemonic_cost(lib: &OpLibrary, mnemonic: &str) -> OpCost {
    use hir::{AccessPattern, CmpOp, OpKind};
    let kind = match mnemonic {
        "add" => OpKind::Add,
        "sub" => OpKind::Sub,
        "mul" => OpKind::Mul,
        "div" => OpKind::Div,
        "rem" => OpKind::Rem,
        "fadd" => OpKind::FAdd,
        "fsub" => OpKind::FSub,
        "fmul" => OpKind::FMul,
        "fdiv" => OpKind::FDiv,
        "icmp" | "br" => OpKind::ICmp(CmpOp::Lt),
        "fcmp" => OpKind::FCmp(CmpOp::Lt),
        "and" => OpKind::And,
        "or" => OpKind::Or,
        "not" => OpKind::Not,
        "select" => OpKind::Select,
        "sqrt" => OpKind::Sqrt,
        "exp" => OpKind::Exp,
        "abs" => OpKind::Abs,
        "max" => OpKind::Max,
        "min" => OpKind::Min,
        "cast" => OpKind::Cast,
        "load" => OpKind::Load {
            array: String::new(),
            access: AccessPattern::Dynamic { rank: 1 },
        },
        "store" => OpKind::Store {
            array: String::new(),
            access: AccessPattern::Dynamic { rank: 1 },
        },
        "phi" => OpKind::Phi,
        _ => OpKind::Phi, // param/port/super: zero-cost placeholder
    };
    lib.cost(&kind)
}

/// Converts a [`Graph`] into GNN input, annotating every node with the
/// Table II features.
///
/// Extra columns carry super-node annotations (predicted latency/TC/II) and
/// are zero for ordinary nodes; super nodes place their predicted LUT/FF/DSP
/// in the same columns ordinary nodes use for operator costs — exactly the
/// paper's "super nodes hold a complete set of node features" design.
pub fn graph_to_gnn(graph: &Graph) -> GraphData {
    let lib = OpLibrary::zcu102();
    let n = graph.num_nodes();
    let in_deg = graph.in_degrees();
    let out_deg = graph.out_degrees();
    let mut x = Matrix::zeros(n, FEATURE_DIM);

    for (i, node) in graph.nodes.iter().enumerate() {
        // one-hot optype
        if let Some(pos) = MNEMONICS.iter().position(|m| *m == node.mnemonic) {
            x[(i, pos)] = 1.0;
        }
        let base = MNEMONICS.len();
        x[(i, base)] = log1p(node.invocations as f64);
        x[(i, base + 1)] = log1p(f64::from(in_deg[i]));
        x[(i, base + 2)] = log1p(f64::from(out_deg[i]));
        x[(i, base + 11)] = log1p(node.hw_weight as f64);

        match &node.kind {
            NodeKind::Super { features, .. } => {
                x[(i, base + 3)] = log1p(features.il);
                x[(i, base + 4)] = (features.ii / 64.0) as f32;
                x[(i, base + 5)] = log1p(features.lut);
                x[(i, base + 6)] = log1p(features.ff);
                x[(i, base + 7)] = log1p(features.dsp);
                x[(i, base + 8)] = log1p(features.latency);
                x[(i, base + 9)] = log1p(features.tc);
                x[(i, base + 10)] = log1p(features.ii);
            }
            _ => {
                let c = mnemonic_cost(&lib, node.mnemonic);
                x[(i, base + 3)] = log1p(f64::from(c.cycles));
                x[(i, base + 4)] = c.delay_ns / lib.clock_ns;
                x[(i, base + 5)] = log1p(f64::from(c.lut));
                x[(i, base + 6)] = log1p(f64::from(c.ff));
                x[(i, base + 7)] = log1p(f64::from(c.dsp));
                // super-only columns stay zero
            }
        }
    }

    let src: Vec<u32> = graph.edges.iter().map(|e| e.src).collect();
    let dst: Vec<u32> = graph.edges.iter().map(|e| e.dst).collect();
    GraphData::new(x, src, dst)
}

/// Graph-level aggregates, all `log1p`-compressed:
/// `[#nodes, #edges, Σ invocations, Σ cycles, Σ LUT, Σ FF, Σ DSP,
///   Σ invocations·cycles (total work), Σ super-node latency]`.
///
/// These are exactly the quantities a sum-pooling readout would expose;
/// providing them explicitly keeps the learned embedding magnitudes
/// size-independent (mean ⊕ max pooling) without losing the extensive
/// signals that resource totals depend on.
pub fn graph_aggregates(graph: &Graph) -> Vec<f32> {
    let lib = OpLibrary::zcu102();
    let (mut inv, mut cycles, mut lut, mut ff, mut dsp) = (0f64, 0f64, 0f64, 0f64, 0f64);
    let (mut work, mut super_lat) = (0f64, 0f64);
    for node in &graph.nodes {
        let hw = node.hw_weight as f64;
        inv += node.invocations as f64 * hw;
        match &node.kind {
            NodeKind::Super { features, .. } => {
                lut += features.lut * hw;
                ff += features.ff * hw;
                dsp += features.dsp * hw;
                super_lat += features.latency * node.invocations as f64;
            }
            _ => {
                let c = mnemonic_cost(&lib, node.mnemonic);
                cycles += f64::from(c.cycles);
                lut += f64::from(c.lut) * hw;
                ff += f64::from(c.ff) * hw;
                dsp += f64::from(c.dsp) * hw;
                work += node.invocations as f64 * hw * f64::from(c.cycles.max(1));
            }
        }
    }
    vec![
        log1p(graph.num_nodes() as f64),
        log1p(graph.num_edges() as f64),
        log1p(inv),
        log1p(cycles),
        log1p(lut),
        log1p(ff),
        log1p(dsp),
        log1p(work),
        log1p(super_lat),
    ]
}

/// Loop-level features of one inner-hierarchy loop under `cfg`:
/// `[log1p(II), log1p(TC), pipelined, log1p(unroll)]`.
///
/// II comes from the analytic formula (`hlsim::analytic_ii`), TC from the
/// IR — both available without running any tool flow, as the paper
/// requires. IL is the learned quantity and is *not* part of this vector.
pub fn loop_level_features(
    func: &Function,
    cfg: &PragmaConfig,
    loop_id: &LoopId,
    pipelined: bool,
) -> Vec<f32> {
    let ii = hlsim::analytic_ii(func, cfg, loop_id);
    let meta = func.loop_meta(loop_id);
    let tc = meta.map(|m| m.trip_count).unwrap_or(1);
    let unroll = cfg.loop_pragma(loop_id).unroll.factor(tc.max(1));
    vec![
        log1p(ii as f64),
        log1p(tc as f64),
        f32::from(u8::from(pipelined)),
        log1p(unroll as f64),
        log1p(ii as f64 * tc.div_ceil(unroll.max(1)) as f64),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::GraphBuilder;

    fn sample() -> (Function, PragmaConfig) {
        let f = kernels::lower_kernel("gemm").unwrap();
        (f, PragmaConfig::default())
    }

    #[test]
    fn feature_matrix_shape_and_onehot() {
        let (f, cfg) = sample();
        let g = GraphBuilder::new(&f, &cfg).build();
        let data = graph_to_gnn(&g);
        assert_eq!(data.feat_dim(), FEATURE_DIM);
        assert_eq!(data.num_nodes(), g.num_nodes());
        // every node has exactly one active one-hot slot
        for i in 0..data.num_nodes() {
            let hot: f32 = data.x.row(i)[..MNEMONICS.len()].iter().sum();
            assert_eq!(hot, 1.0, "node {i} one-hot malformed");
        }
    }

    #[test]
    fn degrees_enter_features() {
        let (f, cfg) = sample();
        let g = GraphBuilder::new(&f, &cfg).build();
        let data = graph_to_gnn(&g);
        let in_col = MNEMONICS.len() + 1;
        let any_nonzero = (0..data.num_nodes()).any(|i| data.x[(i, in_col)] > 0.0);
        assert!(any_nonzero, "in-degree feature never set");
    }

    #[test]
    fn fadd_nodes_carry_library_costs() {
        let (f, cfg) = sample();
        let g = GraphBuilder::new(&f, &cfg).build();
        let data = graph_to_gnn(&g);
        let fadd_pos = MNEMONICS.iter().position(|m| *m == "fadd").unwrap();
        let lut_col = MNEMONICS.len() + 5;
        for i in 0..data.num_nodes() {
            if data.x[(i, fadd_pos)] == 1.0 {
                assert!(data.x[(i, lut_col)] > 0.0, "fadd LUT feature missing");
            }
        }
    }

    #[test]
    fn loop_features_reflect_pragmas() {
        let f = kernels::lower_kernel("gemm").unwrap();
        let inner = LoopId::from_path(&[0, 0, 0]);
        let mut cfg = PragmaConfig::default();
        cfg.set_pipeline(inner.clone(), true);
        let lf = loop_level_features(&f, &cfg, &inner, true);
        assert_eq!(lf.len(), LOOP_FEATURE_DIM);
        assert!(lf[0] > 0.0, "II feature");
        assert!((lf[1] - ((16.0f64 + 1.0).ln() as f32)).abs() < 1e-5, "TC");
        assert_eq!(lf[2], 1.0, "pipelined flag");
    }

    #[test]
    fn mnemonic_table_covers_graph_nodes() {
        for k in kernels::all() {
            let f = kernels::lower_kernel(k.name).unwrap();
            let g = GraphBuilder::new(&f, &PragmaConfig::default()).build();
            for node in &g.nodes {
                assert!(
                    MNEMONICS.contains(&node.mnemonic),
                    "{}: mnemonic {:?} missing from table",
                    k.name,
                    node.mnemonic
                );
            }
        }
    }
}
