//! Multi-process fleet integration: a library-level coordinator drives
//! real `qor-serve` worker *processes* over the HTTP wire and must stay
//! byte-identical to a single-process run — including across a worker
//! kill with a `.qorjob` resume that re-spends no budget.
//!
//! Workers are the stock binary (`--no-batch`, untrained default model);
//! the coordinator builds the same untrained model in-process, so both
//! sides score with identical weights.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use fleet::{run_digest, FleetEval, FleetOptions, FleetStats, Roster};
use qor_core::{HierarchicalModel, Session, TrainOptions};
use search::{BatchEvaluate, SearchOptions, SearchRun, SessionEval, StrategyKind};
use serve::HttpTransport;

/// One worker process; killed on drop so a failing test leaks nothing.
struct Worker {
    child: Child,
    addr: String,
}

impl Worker {
    /// Spawns `qor-serve --addr 127.0.0.1:0 --no-batch` and waits for its
    /// `listening on http://ADDR` line to learn the ephemeral port.
    fn spawn() -> Worker {
        let mut child = Command::new(env!("CARGO_BIN_EXE_qor-serve"))
            .args(["--addr", "127.0.0.1:0", "--no-batch"])
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn qor-serve worker");
        let stderr = child.stderr.take().expect("worker stderr");
        let mut lines = BufReader::new(stderr).lines();
        let mut addr = None;
        for line in lines.by_ref() {
            let line = line.expect("read worker stderr");
            if let Some(rest) = line.strip_prefix("listening on http://") {
                addr = Some(rest.trim().to_string());
                break;
            }
        }
        let addr = addr.expect("worker never printed its listen address");
        // keep draining so the worker never blocks on a full pipe
        std::thread::spawn(move || for _ in lines {});
        Worker { child, addr }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.kill();
    }
}

/// The coordinator's session: same untrained weights as the workers'
/// default-model path in `qor-serve` (`TrainOptions::quick()`, no seed or
/// hidden override).
fn coordinator_session() -> Arc<Session> {
    let model = HierarchicalModel::new(&TrainOptions::quick());
    Arc::new(Session::with_capacity(model, 256))
}

fn search_opts() -> SearchOptions {
    SearchOptions::new("bicg", StrategyKind::Genetic, 16)
        .with_seed(77)
        .with_batch(6)
        .with_unroll_factors(vec![1, 4])
}

fn fleet_eval(roster: &Arc<Roster>, stats: &Arc<FleetStats>) -> FleetEval {
    let transport: Arc<dyn fleet::Transport> =
        Arc::new(HttpTransport::with_timeout(Duration::from_secs(10)));
    FleetEval::new(
        Arc::clone(&transport),
        Arc::clone(roster),
        "bicg",
        "mp-test",
    )
    .with_unroll_factors(Some(vec![1, 4]))
    .with_options(FleetOptions {
        unit_size: 2,
        max_attempts: 3,
    })
    .with_stats(Arc::clone(stats))
}

#[test]
fn fleet_of_processes_matches_single_process_at_1_2_4_workers() {
    let session = coordinator_session();
    let mut solo = SearchRun::for_kernel(search_opts()).unwrap();
    let expected = solo.run(&SessionEval::new(session, "bicg")).unwrap();
    let solo_digest = run_digest(&solo);

    let workers: Vec<Worker> = (0..4).map(|_| Worker::spawn()).collect();
    for n in [1usize, 2, 4] {
        let roster = Arc::new(Roster::new(2));
        for w in &workers[..n] {
            roster.register(&w.addr);
        }
        let stats = Arc::new(FleetStats::default());
        let eval = fleet_eval(&roster, &stats);
        let mut run = SearchRun::for_kernel(search_opts()).unwrap();
        let outcome = run.run_with(&eval).unwrap();
        assert_eq!(outcome, expected, "{n} worker processes diverged");
        assert_eq!(
            run_digest(&run),
            solo_digest,
            "{n}-worker ledger digest diverged"
        );
        let counters = stats.snapshot();
        assert!(counters.dispatched > 0, "no units crossed the wire");
        assert_eq!(
            counters.completed, counters.dispatched,
            "a unit was orphaned"
        );
    }
}

#[test]
fn fleet_survives_worker_kill_and_resumes_from_qorjob_without_respending() {
    let session = coordinator_session();
    let mut solo = SearchRun::for_kernel(search_opts()).unwrap();
    let expected = solo.run(&SessionEval::new(session, "bicg")).unwrap();
    let solo_digest = run_digest(&solo);

    let mut victim = Worker::spawn();
    let survivor = Worker::spawn();
    let roster = Arc::new(Roster::new(2));
    roster.register(&victim.addr);
    roster.register(&survivor.addr);
    let stats = Arc::new(FleetStats::default());
    let eval = fleet_eval(&roster, &stats);

    // run part of the job with both workers, then checkpoint it
    let mut run = SearchRun::for_kernel(search_opts()).unwrap();
    while !run.is_done() && run.spent() < 8 {
        run.step_with(&eval).unwrap();
    }
    let spent_before = run.spent();
    assert!(
        spent_before > 0 && !run.is_done(),
        "kill point must be mid-job"
    );
    run.set_fleet(eval.assignment());
    let dir = std::env::temp_dir().join(format!("qor_fleet_mp_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("job.qorjob");
    search::save_job_file(&run, &path).unwrap();

    // the coordinator "restarts": a fresh run + roster restored from disk
    victim.kill();
    let mut resumed = search::load_job_file(&path).unwrap();
    assert_eq!(
        resumed.spent(),
        spent_before,
        "checkpoint lost spent budget"
    );
    let roster2 = Arc::new(Roster::new(2));
    let stats2 = Arc::new(FleetStats::default());
    roster2.register(&victim.addr);
    roster2.register(&survivor.addr);
    if let Some(assignment) = resumed.fleet() {
        roster2.adopt(assignment);
        stats2.adopt(assignment);
    } else {
        panic!("v2 checkpoint carried no fleet assignment");
    }
    let eval2 = fleet_eval(&roster2, &stats2);
    let outcome = resumed.run_with(&eval2).unwrap();

    // identical front, exact budget: nothing was re-evaluated
    assert_eq!(outcome, expected, "resumed fleet run diverged from solo");
    assert_eq!(run_digest(&resumed), solo_digest);
    assert_eq!(outcome.spent, search_opts().budget, "budget was re-spent");
    assert_eq!(
        resumed.ledger().len() as u64,
        search_opts().budget,
        "ledger shows re-evaluated candidates"
    );
    // the dead worker took at least one failure on the resumed half
    let record = roster2.list();
    let dead = record.iter().find(|w| w.addr == victim.addr).unwrap();
    assert!(dead.failures > 0, "dead worker never failed a dispatch");
    std::fs::remove_dir_all(&dir).ok();
}
