//! Hot-reload under load: concurrent `/v1/predict` clients hammer the
//! server while the registry swaps the default model between two
//! checkpoints. The contract:
//!
//! * zero failed requests — a swap never drops an in-flight connection;
//! * every prediction is bit-exact for *some* registered generation, and
//!   the generation it claims maps to exactly the checkpoint that
//!   produced those bits (no half-swapped weights);
//! * zero mixed-version batches — all items sharing a batch id were
//!   served by one generation.

use std::collections::BTreeMap;
use std::sync::Arc;

use pragma::{LoopId, PragmaConfig, Unroll};
use qor_core::{HierarchicalModel, TrainOptions};
use serve::http::client_request;
use serve::{json, ModelRegistry, Server, ServerConfig};

fn model(seed: u64) -> HierarchicalModel {
    HierarchicalModel::new(&TrainOptions::quick().with_hidden(12).with_seed(seed))
}

/// The request bodies the clients cycle through, with the matching
/// library-path configs.
fn workload() -> Vec<(String, PragmaConfig)> {
    let plain = (r#"{"kernel":"mvt"}"#.to_string(), PragmaConfig::default());
    let mut piped = (
        r#"{"kernel":"mvt","config":{"loops":[{"loop":[0],"pipeline":true}]}}"#.to_string(),
        PragmaConfig::default(),
    );
    piped.1.set_pipeline(LoopId::from_path(&[0]), true);
    let mut unrolled = (
        r#"{"kernel":"mvt","config":{"loops":[{"loop":[0],"unroll":4}]}}"#.to_string(),
        PragmaConfig::default(),
    );
    unrolled
        .1
        .set_unroll(LoopId::from_path(&[0]), Unroll::Factor(4));
    vec![plain, piped, unrolled]
}

#[test]
fn hot_reload_under_concurrent_load_never_fails_or_mixes_versions() {
    let dir = std::env::temp_dir().join(format!("qor-hot-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path_a = dir.join("a.qorckpt");
    let path_b = dir.join("b.qorckpt");
    let model_a = model(4);
    let model_b = model(99);
    serve::save_model_file(&path_a, &model_a).unwrap();
    serve::save_model_file(&path_b, &model_b).unwrap();

    // per-checkpoint expected predictions for every workload config
    let func = Arc::new(kernels::lower_kernel("mvt").unwrap());
    let workload = workload();
    let expect_a: Vec<_> = workload
        .iter()
        .map(|(_, c)| model_a.predict(&func, c))
        .collect();
    let expect_b: Vec<_> = workload
        .iter()
        .map(|(_, c)| model_b.predict(&func, c))
        .collect();
    assert_ne!(
        expect_a, expect_b,
        "the two checkpoints must be distinguishable for this test to mean anything"
    );

    let registry = Arc::new(ModelRegistry::with_default(model_a, 64));
    let handle = Server::bind_with("127.0.0.1:0", registry, ServerConfig::default())
        .unwrap()
        .spawn()
        .unwrap();
    let addr = handle.addr();

    const CLIENTS: usize = 6;
    const REQUESTS_PER_CLIENT: usize = 30;
    const SWAPS: usize = 12;

    // (config index, generation, batch id, qor) per successful response
    type Served = (usize, u64, u64, (u64, u64, u64, u64));
    let (sources, results): (BTreeMap<u64, &'static str>, Vec<Served>) =
        std::thread::scope(|scope| {
            // the swapper: alternate the default model between the two
            // checkpoints while the clients run, recording which checkpoint
            // each new generation came from
            let swapper = scope.spawn(|| {
                let mut sources = BTreeMap::from([(1u64, "a")]); // startup install
                for i in 0..SWAPS {
                    let (path, tag) = if i % 2 == 0 {
                        (&path_b, "b")
                    } else {
                        (&path_a, "a")
                    };
                    let body = format!("{{\"checkpoint\":{:?}}}", path.display().to_string());
                    let (status, response) =
                        client_request(addr, "PUT", "/v1/models/default", Some(&body)).unwrap();
                    assert_eq!(status, 200, "swap {i}: {response}");
                    let doc = json::parse(&response).unwrap();
                    let generation = json::field(&doc, "model")
                        .and_then(|m| json::field(m, "generation"))
                        .and_then(json::as_u64)
                        .unwrap();
                    sources.insert(generation, tag);
                    std::thread::sleep(std::time::Duration::from_millis(3));
                }
                sources
            });
            let clients: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let workload = &workload;
                    scope.spawn(move || {
                        let mut served: Vec<Served> = Vec::new();
                        for r in 0..REQUESTS_PER_CLIENT {
                            let idx = (c + r) % workload.len();
                            let (status, response) =
                                client_request(addr, "POST", "/v1/predict", Some(&workload[idx].0))
                                    .unwrap();
                            assert_eq!(
                                status, 200,
                                "client {c} request {r} failed during reload: {response}"
                            );
                            let doc = json::parse(&response).unwrap();
                            let qor = json::field(&doc, "qor").unwrap();
                            let get = |k: &str| json::field(qor, k).and_then(json::as_u64).unwrap();
                            let generation = json::field(&doc, "model")
                                .and_then(|m| json::field(m, "generation"))
                                .and_then(json::as_u64)
                                .unwrap();
                            let batch_id = json::field(&doc, "batch")
                                .and_then(|b| json::field(b, "id"))
                                .and_then(json::as_u64)
                                .unwrap();
                            served.push((
                                idx,
                                generation,
                                batch_id,
                                (get("latency"), get("lut"), get("ff"), get("dsp")),
                            ));
                        }
                        served
                    })
                })
                .collect();
            let results = clients
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            (swapper.join().unwrap(), results)
        });
    handle.shutdown();

    assert_eq!(results.len(), CLIENTS * REQUESTS_PER_CLIENT);
    let qor_tuple = |q: &hlsim::Qor| (q.latency, q.lut, q.ff, q.dsp);
    let mut generations_seen = std::collections::BTreeSet::new();
    for (idx, generation, _, qor) in &results {
        // the claimed generation maps to a known checkpoint, and the bits
        // are exactly that checkpoint's prediction — never a blend
        let source = sources
            .get(generation)
            .unwrap_or_else(|| panic!("response claims unknown generation {generation}"));
        let expected = match *source {
            "a" => qor_tuple(&expect_a[*idx]),
            _ => qor_tuple(&expect_b[*idx]),
        };
        assert_eq!(
            *qor, expected,
            "generation {generation} (checkpoint {source}) served foreign bits"
        );
        generations_seen.insert(*generation);
    }
    assert!(
        generations_seen.len() >= 2,
        "the load must actually span a reload (saw {generations_seen:?})"
    );

    // zero mixed-version batches: one generation per batch id
    let mut generation_of_batch: BTreeMap<u64, u64> = BTreeMap::new();
    for (_, generation, batch_id, _) in &results {
        let prior = generation_of_batch.insert(*batch_id, *generation);
        if let Some(prior) = prior {
            assert_eq!(
                prior, *generation,
                "batch {batch_id} mixed generations {prior} and {generation}"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
