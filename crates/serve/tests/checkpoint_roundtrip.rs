//! Differential round-trip tests: a checkpointed model must predict
//! bit-identically to the in-memory model it was saved from — for each of
//! the three GNN banks individually and for the full hierarchical
//! composition. This suite is the CI checkpoint gate.

use std::sync::Arc;

use gnn::Normalizer;
use pragma::{LoopId, PragmaConfig, Unroll};
use qor_core::{HierarchicalModel, TrainOptions, BANKS};

fn opts(seed: u64) -> TrainOptions {
    TrainOptions::quick().with_hidden(14).with_seed(seed)
}

/// A model whose normalizers are NOT identity, so their restore path is
/// actually exercised (untrained models carry identity normalizers, which
/// would round-trip trivially).
fn distinctive_model(seed: u64) -> HierarchicalModel {
    let mut model = HierarchicalModel::new(&opts(seed));
    for (bank, dim) in BANKS.iter().zip([5usize, 5, 4]) {
        let mean: Vec<f32> = (0..dim)
            .map(|i| 0.25 + i as f32 * 0.5 + seed as f32)
            .collect();
        let std: Vec<f32> = (0..dim).map(|i| 1.0 + i as f32 * 0.125).collect();
        model
            .set_normalizer(bank, Normalizer::from_stats(mean, std))
            .unwrap();
    }
    model
}

/// Kernel/config pairs spanning pipelined, unrolled and partitioned inner
/// loops across several benchmark kernels.
fn probe_designs() -> Vec<(Arc<hir::Function>, PragmaConfig)> {
    let mut designs = Vec::new();
    for kernel in ["mvt", "bicg", "gemm", "syrk"] {
        let func = Arc::new(kernels::lower_kernel(kernel).unwrap());
        designs.push((func.clone(), PragmaConfig::default()));
        let mut piped = PragmaConfig::default();
        piped.set_pipeline(LoopId::from_path(&[0]), true);
        designs.push((func.clone(), piped));
        let mut unrolled = PragmaConfig::default();
        unrolled.set_unroll(LoopId::from_path(&[0]), Unroll::Factor(4));
        unrolled.set_pipeline(LoopId::from_path(&[1]), true);
        designs.push((func, unrolled));
    }
    designs
}

#[test]
fn full_model_round_trip_is_bit_exact() {
    let model = distinctive_model(3);
    let bytes = serve::save_model(&model);
    let restored = serve::load_model(&bytes).unwrap();
    assert_eq!(restored.options(), model.options());
    for (func, cfg) in probe_designs() {
        let direct = model.predict(&func, &cfg);
        let loaded = restored.predict(&func, &cfg);
        assert_eq!(direct, loaded, "{}: {cfg}", func.name);
        // super-node features feeding GNN_g must also agree exactly
        let a = model.predict_supers(&func, &cfg);
        let b = restored.predict_supers(&func, &cfg);
        assert_eq!(a, b, "{}: supers diverge under {cfg}", func.name);
    }
}

#[test]
fn file_round_trip_is_bit_exact() {
    let model = distinctive_model(5);
    let dir = std::env::temp_dir().join(format!("qor-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.qorckpt");
    serve::save_model_file(&path, &model).unwrap();
    let restored = serve::load_model_file(&path).unwrap();
    for (func, cfg) in probe_designs() {
        assert_eq!(model.predict(&func, &cfg), restored.predict(&func, &cfg));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn each_bank_restores_independently_and_composes() {
    let source = distinctive_model(3);
    // a differently-seeded model starts with different weights everywhere…
    let mut target = distinctive_model(9);
    let (f, cfg) = &probe_designs()[1];
    assert_ne!(
        source.predict(f, cfg),
        target.predict(f, cfg),
        "seeds must produce distinguishable models for this test to bite"
    );
    // …and converges to the source bank by bank
    for bank in BANKS {
        let bytes = serve::save_bank(&source, bank).unwrap();
        let restored = serve::load_bank_into(&bytes, &mut target).unwrap();
        assert_eq!(restored, bank);
    }
    for (func, cfg) in probe_designs() {
        assert_eq!(
            source.predict(&func, &cfg),
            target.predict(&func, &cfg),
            "{}: models diverge after restoring all banks ({cfg})",
            func.name
        );
    }
}

#[test]
fn session_over_a_restored_model_matches_the_library_path() {
    let model = distinctive_model(7);
    let restored = serve::load_model(&serve::save_model(&model)).unwrap();
    let session = qor_core::Session::with_capacity(restored, 16);
    let mut cfg = PragmaConfig::default();
    cfg.set_pipeline(LoopId::from_path(&[0]), true);
    let func = Arc::new(kernels::lower_kernel("mvt").unwrap());
    let direct = model.predict(&func, &cfg);
    // miss path, then hit path: both must equal the in-memory prediction
    assert_eq!(session.predict_kernel("mvt", &cfg).unwrap(), direct);
    assert_eq!(session.predict_kernel("mvt", &cfg).unwrap(), direct);
    assert_eq!(session.stats().hits, 1);
}
