//! End-to-end trace propagation: an inbound `x-qor-trace` header must be
//! echoed back, stamped on the request's flight record (with per-stage
//! timings and cache attribution), and written into the `QOR_LOG` event
//! stream; DSE jobs get their own job-scoped trace visible both in
//! `GET /dse/<id>` and in the job's flight record.

use std::sync::{Mutex, Once};

use qor_core::{HierarchicalModel, Session, TrainOptions};
use serve::http::{client_request, client_request_with};
use serve::{json, Server};

/// The flight recorder and the QOR_LOG sink are process-global; tests in
/// this binary must not overlap.
static ISOLATION: Mutex<()> = Mutex::new(());
static LOG_SETUP: Once = Once::new();

fn log_path() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("qor-trace-chain-{}.jsonl", std::process::id()))
}

/// Points `QOR_LOG` at a temp file before the first log call in this
/// process (the variable is read once).
fn setup_log() {
    LOG_SETUP.call_once(|| {
        std::env::set_var("QOR_LOG", format!("debug:{}", log_path().display()));
    });
}

fn spawn_server() -> serve::ServerHandle {
    let model = HierarchicalModel::new(&TrainOptions::quick().with_hidden(12).with_seed(4));
    Server::bind("127.0.0.1:0", Session::with_capacity(model, 32))
        .unwrap()
        .spawn()
        .unwrap()
}

/// A server with explicit dispatch, for tests that assert on per-stage
/// timings (direct) or batch composition (pinned flush policy).
fn spawn_server_with(dispatch: serve::DispatchMode) -> serve::ServerHandle {
    let model = HierarchicalModel::new(&TrainOptions::quick().with_hidden(12).with_seed(4));
    let registry = std::sync::Arc::new(serve::ModelRegistry::with_default(model, 32));
    Server::bind_with(
        "127.0.0.1:0",
        registry,
        serve::ServerConfig {
            dispatch,
            ..serve::ServerConfig::default()
        },
    )
    .unwrap()
    .spawn()
    .unwrap()
}

fn find_record(trace_hex: &str) -> Option<obs::flight::FlightRecord> {
    let id = obs::TraceId::parse_hex(trace_hex).unwrap();
    obs::flight::snapshot()
        .into_iter()
        .find(|r| r.trace == id.0)
}

#[test]
fn predict_request_trace_flows_header_to_flight_record_and_log() {
    let _lock = ISOLATION.lock().unwrap_or_else(|e| e.into_inner());
    setup_log();
    let trace_hex = "00dead00beef0042";
    // direct dispatch: the request's own thread runs the pipeline, so the
    // flight record carries the per-stage lower/prepare/infer split
    let handle = spawn_server_with(serve::DispatchMode::Direct);
    let body = r#"{"kernel":"mvt","config":{"loops":[{"loop":[0],"pipeline":true}]}}"#;
    let (status, headers, _) = client_request_with(
        handle.addr(),
        "POST",
        "/predict",
        Some(body),
        &[("x-qor-trace", trace_hex)],
    )
    .unwrap();
    assert_eq!(status, 200);
    // the trace id is echoed back to the client
    let echoed = headers
        .iter()
        .find(|(n, _)| n == "x-qor-trace")
        .map(|(_, v)| v.as_str());
    assert_eq!(echoed, Some(trace_hex));

    // /debug/requests serves the same record the in-process ring holds
    let (status, dump) = client_request(handle.addr(), "GET", "/debug/requests", None).unwrap();
    handle.shutdown();
    assert_eq!(status, 200);
    assert!(
        dump.contains(&format!("\"trace\":\"{trace_hex}\"")),
        "{dump}"
    );

    let rec = find_record(trace_hex).expect("flight record for the traced request");
    assert_eq!(rec.kind, "http");
    assert_eq!(rec.label, "POST /predict");
    assert_eq!(rec.outcome, "200");
    assert!(rec.bytes_in > 0 && rec.bytes_out > 0);
    // a cold single prediction misses both cache layers and reports
    // decode/lower/prepare/infer stages
    assert_eq!(rec.cache_misses, 2, "{rec:?}");
    let stages: Vec<&str> = rec.stages.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(stages, ["decode", "lower", "prepare", "infer"], "{rec:?}");
    // the record is labeled with the model version that served it
    assert!(
        rec.attrs
            .iter()
            .any(|(k, v)| k == "model" && v == "default@1"),
        "{rec:?}"
    );

    // the same trace id shows up in the QOR_LOG event stream, on both the
    // request event and the session's cache-layer debug event
    let log = std::fs::read_to_string(log_path()).unwrap();
    let traced: Vec<&str> = log
        .lines()
        .filter(|l| l.contains(&format!("\"trace\":\"{trace_hex}\"")))
        .collect();
    assert!(
        traced
            .iter()
            .any(|l| l.contains("\"event\":\"http.request\"")),
        "{log}"
    );
    assert!(
        traced
            .iter()
            .any(|l| l.contains("\"event\":\"session.predict\"")),
        "{log}"
    );
}

#[test]
fn batch_workers_inherit_the_request_trace() {
    let _lock = ISOLATION.lock().unwrap_or_else(|e| e.into_inner());
    setup_log();
    let trace_hex = "0000b007c0ffee01";
    // pin a generous wait so all three items coalesce into one flush
    let handle = spawn_server_with(serve::DispatchMode::Batched(serve::BatchOptions {
        max_batch: 8,
        max_wait: std::time::Duration::from_millis(50),
    }));
    let body = r#"{"requests":[{"kernel":"mvt"},{"kernel":"bicg"},{"kernel":"mvt"}]}"#;
    let (status, _, _) = client_request_with(
        handle.addr(),
        "POST",
        "/predict",
        Some(body),
        &[("x-qor-trace", trace_hex)],
    )
    .unwrap();
    handle.shutdown();
    assert_eq!(status, 200);
    let rec = find_record(trace_hex).expect("flight record for the batch");
    // attribution is logical per item: the deduped mvt pair shares one
    // computation but each item reports its design's lookups, so 3 items x
    // 2 cache layers land on the request's trace
    assert_eq!(rec.cache_hits + rec.cache_misses, 6, "{rec:?}");
    let stages: Vec<&str> = rec.stages.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(stages, ["decode", "batch"], "{rec:?}");
    // the batcher workers adopted the trace across the queue boundary:
    // their session.predict events carry the request's id
    let log = std::fs::read_to_string(log_path()).unwrap();
    let predicts = log
        .lines()
        .filter(|l| {
            l.contains(&format!("\"trace\":\"{trace_hex}\""))
                && l.contains("\"event\":\"session.predict\"")
        })
        .count();
    assert_eq!(predicts, 2, "one traced cache event per unique design");
}

#[test]
fn requests_without_a_header_get_a_derived_trace() {
    let _lock = ISOLATION.lock().unwrap_or_else(|e| e.into_inner());
    setup_log();
    let handle = spawn_server();
    let (status, headers, _) =
        client_request_with(handle.addr(), "GET", "/healthz", None, &[]).unwrap();
    handle.shutdown();
    assert_eq!(status, 200);
    let echoed = headers
        .iter()
        .find(|(n, _)| n == "x-qor-trace")
        .map(|(_, v)| v.clone())
        .expect("derived trace echoed");
    assert_eq!(echoed.len(), 16, "{echoed}");
    assert!(obs::TraceId::parse_hex(&echoed).is_some(), "{echoed}");
    assert!(find_record(&echoed).is_some(), "derived trace is recorded");
}

#[test]
fn dse_jobs_carry_a_job_scoped_trace_into_the_flight_recorder() {
    let _lock = ISOLATION.lock().unwrap_or_else(|e| e.into_inner());
    setup_log();
    let handle = spawn_server();
    let addr = handle.addr();
    let body = r#"{"kernel":"fir","strategy":"random","budget":6,"seed":7,"batch":3}"#;
    let (status, response) = client_request(addr, "POST", "/dse", Some(body)).unwrap();
    assert_eq!(status, 200, "{response}");
    let doc = json::parse(&response).unwrap();
    let id = json::field(&doc, "id")
        .and_then(json::as_str)
        .unwrap()
        .to_string();

    // poll until done, then read the job's trace from its progress
    let mut job_trace = String::new();
    for _ in 0..1500 {
        let (status, body) = client_request(addr, "GET", &format!("/dse/{id}"), None).unwrap();
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).unwrap();
        job_trace = json::field(&doc, "trace")
            .and_then(json::as_str)
            .unwrap()
            .to_string();
        if json::field(&doc, "status").and_then(json::as_str) != Some("running") {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    handle.shutdown();
    assert_eq!(job_trace.len(), 16, "{job_trace}");
    // the job's trace is deterministic: derived from its id alone
    let expected = obs::trace::derive(&[b"dse-job", id.as_bytes()]);
    assert_eq!(job_trace, expected.as_hex());

    let rec = find_record(&job_trace).expect("flight record for the job");
    assert_eq!(rec.kind, "job");
    assert_eq!(rec.label, id);
    assert_eq!(rec.outcome, "done");
    assert!(!rec.stages.is_empty(), "per-step stages recorded: {rec:?}");
    assert!(rec.stages[0].0.starts_with("step-"), "{rec:?}");

    // dse.submit and dse.done log events carry the same trace
    let log = std::fs::read_to_string(log_path()).unwrap();
    let traced: Vec<&str> = log
        .lines()
        .filter(|l| l.contains(&format!("\"trace\":\"{job_trace}\"")))
        .collect();
    assert!(
        traced
            .iter()
            .any(|l| l.contains("\"event\":\"dse.submit\"")),
        "{log}"
    );
    assert!(
        traced.iter().any(|l| l.contains("\"event\":\"dse.done\"")),
        "{log}"
    );
}

#[test]
fn debug_vars_reports_build_and_runtime_configuration() {
    let _lock = ISOLATION.lock().unwrap_or_else(|e| e.into_inner());
    setup_log();
    let handle = spawn_server();
    client_request(
        handle.addr(),
        "POST",
        "/predict",
        Some(r#"{"kernel":"mvt"}"#),
    )
    .unwrap();
    let (status, body) = client_request(handle.addr(), "GET", "/debug/vars", None).unwrap();
    handle.shutdown();
    assert_eq!(status, 200);
    let doc = json::parse(&body).unwrap();
    assert_eq!(
        json::field(&doc, "version").and_then(json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(json::field(&doc, "uptime_s")
        .and_then(json::as_u64)
        .is_some());
    assert!(json::field(&doc, "threads").and_then(json::as_u64).unwrap() >= 1);
    assert_eq!(
        json::field(&doc, "log_level").and_then(json::as_str),
        Some("debug")
    );
    let status_obj = json::field(&doc, "status").unwrap();
    assert!(
        json::field(status_obj, "2xx")
            .and_then(json::as_u64)
            .unwrap()
            >= 1
    );
    let cache = json::field(&doc, "cache").unwrap();
    assert_eq!(json::field(cache, "misses").and_then(json::as_u64), Some(1));
    // dispatch + batching-queue counters and the model roster are exposed
    assert_eq!(
        json::field(&doc, "dispatch").and_then(json::as_str),
        Some("batched")
    );
    let batcher = json::field(&doc, "batcher").unwrap();
    assert!(
        json::field(batcher, "items")
            .and_then(json::as_u64)
            .unwrap()
            >= 1,
        "{body}"
    );
    assert!(
        json::field(batcher, "max_batch")
            .and_then(json::as_u64)
            .unwrap()
            >= 1
    );
    let models = json::as_array(json::field(&doc, "models").unwrap()).unwrap();
    assert_eq!(json::as_str(&models[0]), Some("default@1"), "{body}");
    let flight = json::field(&doc, "flight").unwrap();
    assert!(
        json::field(flight, "capacity")
            .and_then(json::as_u64)
            .unwrap()
            > 0
    );
}
