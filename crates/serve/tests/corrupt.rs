//! Checkpoint robustness: every malformed input must surface as a typed
//! [`QorError`] — never a panic, never a silently wrong model.
//!
//! The single-bank sweep is **exhaustive**: every byte offset is flipped
//! (and every truncation length tried) on a small checkpoint. The
//! full-model checkpoint is larger, so its sweep samples offsets from a
//! seeded RNG, PR-1 style — deterministic across runs, different offsets
//! per seed bump.

use gnn::Normalizer;
use qor_core::{HierarchicalModel, QorError, TrainOptions, BANKS};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn tiny_model() -> HierarchicalModel {
    let mut model = HierarchicalModel::new(&TrainOptions::quick().with_hidden(6).with_seed(11));
    // non-identity normalizers so their records carry real payload
    for (bank, dim) in BANKS.iter().zip([5usize, 5, 4]) {
        let mean = vec![1.5; dim];
        let std = vec![2.0; dim];
        model
            .set_normalizer(bank, Normalizer::from_stats(mean, std))
            .unwrap();
    }
    model
}

/// `Ok(())` if the error is one of the variants the format contract allows
/// for malformed bytes.
fn assert_typed(result: Result<impl Sized, QorError>, what: &str) {
    match result {
        Ok(_) => panic!("{what}: corrupt checkpoint loaded successfully"),
        Err(QorError::Corrupt(_) | QorError::UnsupportedVersion(_) | QorError::Shape(_)) => {}
        Err(other) => panic!("{what}: unexpected error variant {other:?}"),
    }
}

#[test]
fn every_single_byte_flip_in_a_bank_checkpoint_is_detected() {
    let model = tiny_model();
    let bytes = serve::save_bank(&model, "gnn_g").unwrap();
    assert!(
        bytes.len() < 64 * 1024,
        "bank checkpoint grew too large for the exhaustive sweep: {} bytes",
        bytes.len()
    );
    for offset in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[offset] ^= 0xff;
        let mut target = tiny_model();
        assert_typed(
            serve::load_bank_into(&corrupt, &mut target),
            &format!("flip at offset {offset}"),
        );
    }
}

#[test]
fn every_truncation_of_a_bank_checkpoint_is_detected() {
    let model = tiny_model();
    let bytes = serve::save_bank(&model, "gnn_p").unwrap();
    for len in 0..bytes.len() {
        let mut target = tiny_model();
        assert_typed(
            serve::load_bank_into(&bytes[..len], &mut target),
            &format!("truncation to {len} bytes"),
        );
    }
}

#[test]
fn sampled_byte_flips_in_a_model_checkpoint_are_detected() {
    let model = tiny_model();
    let bytes = serve::save_model(&model);
    let mut rng = StdRng::seed_from_u64(20240805);
    for round in 0..256 {
        let offset = rng.gen_range(0..bytes.len());
        let bit: u32 = rng.gen_range(0..8u32);
        let mut corrupt = bytes.clone();
        corrupt[offset] ^= 1u8 << bit;
        assert_typed(
            serve::load_model(&corrupt),
            &format!("round {round}: bit {bit} at offset {offset}"),
        );
    }
}

#[test]
fn sampled_truncations_of_a_model_checkpoint_are_detected() {
    let model = tiny_model();
    let bytes = serve::save_model(&model);
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..128 {
        let len = rng.gen_range(0..bytes.len());
        assert_typed(
            serve::load_model(&bytes[..len]),
            &format!("truncation to {len} bytes"),
        );
    }
}

#[test]
fn wrong_version_is_reported_as_unsupported() {
    let model = tiny_model();
    let mut bytes = serve::save_model(&model);
    // patch the version field and re-seal so the checksum is valid again —
    // the reader must reject on the version, not the checksum
    bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
    let body_len = bytes.len() - 8;
    let sum = qor_core::fnv1a(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
    match serve::load_model(&bytes) {
        Err(QorError::UnsupportedVersion(2)) => {}
        other => panic!("expected UnsupportedVersion(2), got {other:?}"),
    }
}

#[test]
fn wrong_magic_and_short_files_are_corrupt() {
    let model = tiny_model();
    let mut bytes = serve::save_model(&model);
    bytes[0] = b'X';
    assert!(matches!(
        serve::load_model(&bytes),
        Err(QorError::Corrupt(_))
    ));
    assert!(matches!(serve::load_model(b""), Err(QorError::Corrupt(_))));
    assert!(matches!(
        serve::load_model(b"QORCKPT\0"),
        Err(QorError::Corrupt(_))
    ));
}

#[test]
fn trailing_garbage_is_detected() {
    let model = tiny_model();
    let mut bytes = serve::save_model(&model);
    bytes.extend_from_slice(&[0u8; 16]);
    assert_typed(serve::load_model(&bytes), "appended garbage");
}

#[test]
fn cross_architecture_bank_load_is_a_shape_error() {
    let wide = HierarchicalModel::new(&TrainOptions::quick().with_hidden(12));
    let bytes = serve::save_bank(&wide, "gnn_p").unwrap();
    let mut narrow = tiny_model(); // hidden 6: same tensor names, other shapes
    match serve::load_bank_into(&bytes, &mut narrow) {
        Err(QorError::Shape(_)) => {}
        other => panic!("expected Shape, got {other:?}"),
    }
}

#[test]
fn valid_checkpoints_still_load_after_the_sweeps() {
    // guard against the sweeps passing because loading *always* fails
    let model = tiny_model();
    let mut target = tiny_model();
    serve::load_model(&serve::save_model(&model)).unwrap();
    serve::load_bank_into(&serve::save_bank(&model, "gnn_np").unwrap(), &mut target).unwrap();
}
