//! End-to-end server tests: an in-process `Server` driven over real TCP by
//! the std-only client in `serve::http`. Verifies that HTTP predictions are
//! bit-identical to the library path, that repeated queries hit the session
//! cache, and that error paths return proper statuses.

use std::sync::Arc;

use obs::Json;
use pragma::{LoopId, PragmaConfig};
use qor_core::{HierarchicalModel, Session, TrainOptions};
use serve::http::client_request;
use serve::{json, Server};

fn model() -> HierarchicalModel {
    HierarchicalModel::new(&TrainOptions::quick().with_hidden(12).with_seed(4))
}

fn pipelined() -> PragmaConfig {
    let mut cfg = PragmaConfig::default();
    cfg.set_pipeline(LoopId::from_path(&[0]), true);
    cfg
}

fn spawn_server() -> serve::ServerHandle {
    Server::bind("127.0.0.1:0", Session::with_capacity(model(), 32))
        .unwrap()
        .spawn()
        .unwrap()
}

fn qor_field(doc: &Json, root: &str) -> (u64, u64, u64, u64) {
    let q = json::field(doc, root).expect("qor object");
    let get = |k: &str| json::as_u64(json::field(q, k).unwrap()).unwrap();
    (get("latency"), get("lut"), get("ff"), get("dsp"))
}

#[test]
fn healthz_reports_ok() {
    let handle = spawn_server();
    let (status, body) = client_request(handle.addr(), "GET", "/healthz", None).unwrap();
    handle.shutdown();
    assert_eq!(status, 200);
    let doc = json::parse(&body).unwrap();
    assert_eq!(
        json::field(&doc, "status").and_then(json::as_str),
        Some("ok")
    );
}

#[test]
fn single_prediction_matches_library_path_and_repeats_hit_the_cache() {
    // the reference model is a *separate* instance with identical options:
    // weight init is seeded, so predictions must agree bit-for-bit
    let reference = model();
    let func = Arc::new(kernels::lower_kernel("mvt").unwrap());
    let expected = reference.predict(&func, &pipelined());

    let handle = spawn_server();
    let body = r#"{"kernel":"mvt","config":{"loops":[{"loop":[0],"pipeline":true}]}}"#;
    let (status, first) = client_request(handle.addr(), "POST", "/predict", Some(body)).unwrap();
    assert_eq!(status, 200, "{first}");
    let (_, second) = client_request(handle.addr(), "POST", "/predict", Some(body)).unwrap();
    let stats = handle.stats();
    handle.shutdown();

    let first = json::parse(&first).unwrap();
    let second = json::parse(&second).unwrap();
    for doc in [&first, &second] {
        assert_eq!(
            qor_field(doc, "qor"),
            (expected.latency, expected.lut, expected.ff, expected.dsp),
            "server prediction diverges from the library path"
        );
    }
    assert_eq!(stats.hits, 1, "second identical query must hit");
    assert_eq!(stats.misses, 1);
    // the response's cache object exposes the same counters
    let cache = json::field(&second, "cache").unwrap();
    assert_eq!(json::field(cache, "hits").and_then(json::as_u64), Some(1));
}

#[test]
fn batched_predictions_preserve_order_and_reuse_the_cache() {
    let reference = model();
    let mvt = Arc::new(kernels::lower_kernel("mvt").unwrap());
    let bicg = Arc::new(kernels::lower_kernel("bicg").unwrap());
    let expect_mvt = reference.predict(&mvt, &pipelined());
    let expect_mvt_plain = reference.predict(&mvt, &PragmaConfig::default());
    let expect_bicg = reference.predict(&bicg, &PragmaConfig::default());

    let handle = spawn_server();
    let body = r#"{"requests":[
        {"kernel":"mvt","config":{"loops":[{"loop":[0],"pipeline":true}]}},
        {"kernel":"bicg"},
        {"kernel":"mvt"},
        {"kernel":"mvt","config":{"loops":[{"loop":[0],"pipeline":true}]}},
        {"kernel":"nope"}
    ]}"#;
    let (status, response) = client_request(handle.addr(), "POST", "/predict", Some(body)).unwrap();
    let stats = handle.stats();
    handle.shutdown();

    assert_eq!(status, 200, "{response}");
    let doc = json::parse(&response).unwrap();
    let results = json::as_array(json::field(&doc, "results").unwrap()).unwrap();
    assert_eq!(results.len(), 5);
    for (i, expected) in [expect_mvt, expect_bicg, expect_mvt_plain, expect_mvt]
        .iter()
        .enumerate()
    {
        assert_eq!(
            qor_field(&results[i], "qor"),
            (expected.latency, expected.lut, expected.ff, expected.dsp),
            "batch result {i} diverges"
        );
        // every served item names its model version
        let model = json::field(&results[i], "model").unwrap();
        assert_eq!(
            json::field(model, "name").and_then(json::as_str),
            Some("default")
        );
        assert_eq!(
            json::field(model, "generation").and_then(json::as_u64),
            Some(1)
        );
    }
    // per-item failures do not fail the batch; they carry the typed envelope
    let err = json::field(&results[4], "error").unwrap();
    assert_eq!(
        json::field(err, "code").and_then(json::as_str),
        Some("unknown_kernel")
    );
    assert!(
        json::field(err, "message")
            .and_then(json::as_str)
            .unwrap()
            .contains("nope"),
        "{response}"
    );
    // requests 0 and 3 are the same design: the batcher single-flights them
    // (shared computation, flagged deduped) instead of hitting the cache
    let deduped = |i: usize| {
        json::field(&results[i], "batch")
            .and_then(|b| json::field(b, "deduped"))
            .and_then(json::as_bool)
            .unwrap()
    };
    assert!(deduped(0) && deduped(3), "{response}");
    assert!(!deduped(1) && !deduped(2), "{response}");
    // the three unique designs span two kernels: mvt lowers once then hits
    assert_eq!(stats.kernel_misses, 2, "{stats:?}");
    assert!(stats.kernel_hits >= 1, "{stats:?}");
    assert_eq!(stats.misses, 3, "one miss per unique design: {stats:?}");
}

#[test]
fn inline_source_predictions_work() {
    let handle = spawn_server();
    let body = r#"{"top":"f","source":"void f(float a[16], float b[16]) { for (int i = 0; i < 16; i++) { b[i] = a[i] * 3.0; } }"}"#;
    let (status, response) = client_request(handle.addr(), "POST", "/predict", Some(body)).unwrap();
    let (_, repeat) = client_request(handle.addr(), "POST", "/predict", Some(body)).unwrap();
    let stats = handle.stats();
    handle.shutdown();
    assert_eq!(status, 200, "{response}");
    // an untrained model may predict ~0, so assert structure + determinism
    let doc = json::parse(&response).unwrap();
    let again = json::parse(&repeat).unwrap();
    assert_eq!(qor_field(&doc, "qor"), qor_field(&again, "qor"));
    assert_eq!(stats.kernel_misses, 1, "inline source must be cached too");
    assert_eq!(stats.kernel_hits, 1);
}

#[test]
fn metrics_expose_cache_counters_in_prometheus_format() {
    let handle = spawn_server();
    let body = r#"{"kernel":"mvt"}"#;
    for _ in 0..2 {
        client_request(handle.addr(), "POST", "/predict", Some(body)).unwrap();
    }
    let (status, text) = client_request(handle.addr(), "GET", "/metrics", None).unwrap();
    handle.shutdown();
    assert_eq!(status, 200);
    assert!(
        text.contains("# TYPE qor_session_cache_hits_total counter"),
        "{text}"
    );
    let hits_line = text
        .lines()
        .find(|l| l.starts_with("qor_session_cache_hits_total "))
        .unwrap();
    assert_eq!(hits_line, "qor_session_cache_hits_total 1");
    assert!(text.contains("qor_predictions_total 2"), "{text}");
    // every sample line uses the Prometheus charset (labels in `{}` are
    // stripped before the check)
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let token = line.split_whitespace().next().unwrap();
        let name = token.split('{').next().unwrap();
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name {name:?}"
        );
    }
    // request latency is exposed as a real Prometheus histogram with
    // cumulative le-buckets plus exact-quantile gauges
    assert!(
        text.contains("# TYPE qor_http_request_duration_us histogram"),
        "{text}"
    );
    assert!(
        text.contains("qor_http_request_duration_us_bucket{route=\"predict\",status=\"2xx\",le=\""),
        "{text}"
    );
    assert!(
        text.contains(
            "qor_http_request_duration_us_bucket{route=\"predict\",status=\"2xx\",le=\"+Inf\"} 2"
        ),
        "{text}"
    );
    assert!(
        text.contains("qor_http_request_duration_us_count{route=\"predict\",status=\"2xx\"} 2"),
        "{text}"
    );
    assert!(
        text.contains(
            "qor_http_request_duration_us_quantile{route=\"predict\",status=\"2xx\",q=\"0.99\"}"
        ),
        "{text}"
    );
    // status-class and per-route counters
    assert!(text.contains("qor_http_responses_2xx_total 2"), "{text}");
    assert!(
        text.contains("qor_http_route_requests_total{route=\"predict\"} 2"),
        "{text}"
    );
    // cumulative buckets must be monotonically non-decreasing
    let mut last = 0u64;
    for line in text.lines().filter(|l| {
        l.starts_with("qor_http_request_duration_us_bucket{route=\"predict\",status=\"2xx\"")
    }) {
        let v: u64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(v >= last, "buckets must be cumulative: {line}");
        last = v;
    }
    assert_eq!(last, 2, "final +Inf bucket equals the count");
}

/// Polls `GET /dse/<id>` until the job leaves `running` (or panics after
/// `tries` attempts).
fn wait_for_job(addr: std::net::SocketAddr, id: &str, tries: u32) -> Json {
    let path = format!("/dse/{id}");
    for _ in 0..tries {
        let (status, body) = client_request(addr, "GET", &path, None).unwrap();
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).unwrap();
        let state = json::field(&doc, "status").and_then(json::as_str).unwrap();
        if state != "running" {
            return doc;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    panic!("job {id} still running after {tries} polls");
}

#[test]
fn dse_job_lifecycle_runs_to_done_over_http() {
    let handle = spawn_server();
    let addr = handle.addr();

    let body = r#"{"kernel":"fir","strategy":"random","budget":6,"seed":7,"batch":3}"#;
    let (status, response) = client_request(addr, "POST", "/dse", Some(body)).unwrap();
    assert_eq!(status, 200, "{response}");
    let doc = json::parse(&response).unwrap();
    let id = json::field(&doc, "id")
        .and_then(json::as_str)
        .unwrap()
        .to_string();

    let done = wait_for_job(addr, &id, 1500);
    assert_eq!(
        json::field(&done, "status").and_then(json::as_str),
        Some("done"),
        "{done:?}"
    );
    assert_eq!(
        json::field(&done, "kernel").and_then(json::as_str),
        Some("fir")
    );
    assert_eq!(
        json::field(&done, "strategy").and_then(json::as_str),
        Some("random")
    );
    let spent = json::field(&done, "spent").and_then(json::as_u64).unwrap();
    assert!((1..=6).contains(&spent), "spent {spent} outside the budget");
    let front = json::as_array(json::field(&done, "front").unwrap()).unwrap();
    assert!(!front.is_empty(), "finished job must publish a front");
    for point in front {
        assert!(json::field(point, "fingerprint").is_some());
        assert!(json::field(point, "latency").is_some());
        assert!(json::field(point, "area").is_some());
    }

    // job counters and throughput reach /metrics
    let (_, metrics) = client_request(addr, "GET", "/metrics", None).unwrap();
    for needle in [
        "qor_dse_jobs_submitted_total 1",
        "qor_dse_jobs_completed_total 1",
        "qor_dse_jobs_failed_total 0",
        "# TYPE qor_dse_evals_per_second gauge",
    ] {
        assert!(metrics.contains(needle), "missing {needle:?} in {metrics}");
    }
    let evals = metrics
        .lines()
        .find(|l| l.starts_with("qor_dse_evaluations_total "))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap();
    assert_eq!(evals, spent, "metrics must count the job's evaluations");

    // delete forgets the job; a second delete and a stale poll both 404
    let path = format!("/dse/{id}");
    let (status, deleted) = client_request(addr, "DELETE", &path, None).unwrap();
    assert_eq!(status, 200, "{deleted}");
    let deleted = json::parse(&deleted).unwrap();
    assert_eq!(
        json::field(&deleted, "deleted").and_then(json::as_bool),
        Some(true)
    );
    let (status, _) = client_request(addr, "DELETE", &path, None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = client_request(addr, "GET", &path, None).unwrap();
    assert_eq!(status, 404);

    handle.shutdown();
}

#[test]
fn dse_submission_errors_are_synchronous_400s() {
    let handle = spawn_server();
    let addr = handle.addr();
    let cases = [
        ("{not json", "json"),
        (r#"{"strategy":"random"}"#, "kernel"),
        (r#"{"kernel":"no_such_kernel"}"#, "kernel"),
        (r#"{"kernel":"fir","strategy":"hillclimb"}"#, "strategy"),
        (r#"{"kernel":"fir","batch":0}"#, "batch"),
        (r#"{"kernel":"fir","budget":-3}"#, "budget"),
    ];
    for (body, needle) in cases {
        let (status, response) = client_request(addr, "POST", "/dse", Some(body)).unwrap();
        assert_eq!(status, 400, "{body}: {response}");
        let err = json::parse(&response).unwrap();
        let msg = json::field(&err, "message").and_then(json::as_str).unwrap();
        assert!(
            msg.to_lowercase().contains(needle),
            "{body}: error {msg:?} should mention {needle:?}"
        );
    }
    // nothing was enqueued
    let (_, metrics) = client_request(addr, "GET", "/metrics", None).unwrap();
    assert!(
        metrics.contains("qor_dse_jobs_submitted_total 0"),
        "{metrics}"
    );

    // method guards on both dse routes
    let (status, _) = client_request(addr, "GET", "/dse", None).unwrap();
    assert_eq!(status, 405);
    let (status, _) = client_request(addr, "POST", "/dse/job-1", Some("{}")).unwrap();
    assert_eq!(status, 405);
    let (status, _) = client_request(addr, "GET", "/dse/job-999", None).unwrap();
    assert_eq!(status, 404);
    handle.shutdown();
}

#[test]
fn error_paths_return_the_typed_envelope() {
    let handle = spawn_server();
    let addr = handle.addr();
    let cases = [
        ("POST", "/predict", Some("{not json"), 400, "bad_request"),
        (
            "POST",
            "/predict",
            Some(r#"{"config":{}}"#),
            400,
            "bad_request",
        ),
        (
            "POST",
            "/predict",
            Some(r#"{"kernel":"mvt","config":{"loops":[{"loop":[0],"unroll":"half"}]}}"#),
            400,
            "bad_request",
        ),
        (
            "POST",
            "/predict",
            Some(r#"{"kernel":"no_such_kernel"}"#),
            400,
            "unknown_kernel",
        ),
        ("GET", "/predict", None, 405, "method_not_allowed"),
        ("POST", "/healthz", None, 405, "method_not_allowed"),
        ("GET", "/no_such_route", None, 404, "not_found"),
        ("GET", "/v1/models/ghost", None, 404, "unknown_model"),
        (
            "POST",
            "/v1/predict",
            Some(r#"{"kernel":"mvt","model":"ghost"}"#),
            404,
            "unknown_model",
        ),
    ];
    for (method, path, body, expected, code) in cases {
        let (status, response) = client_request(addr, method, path, body).unwrap();
        assert_eq!(status, expected, "{method} {path}: {response}");
        // every non-2xx body is the {"code","message","trace"} envelope
        let doc = json::parse(&response).unwrap();
        assert_eq!(
            json::field(&doc, "code").and_then(json::as_str),
            Some(code),
            "{method} {path}: {response}"
        );
        assert!(json::field(&doc, "message").is_some(), "{response}");
        let trace = json::field(&doc, "trace").and_then(json::as_str).unwrap();
        assert_eq!(trace.len(), 16, "{response}");
    }
    handle.shutdown();
}

#[test]
fn v1_routes_serve_and_legacy_aliases_carry_deprecation_headers() {
    let handle = spawn_server();
    let addr = handle.addr();
    // the /v1 surface serves without deprecation headers
    for (method, path, body) in [
        ("GET", "/v1/healthz", None),
        ("GET", "/v1/metrics", None),
        ("POST", "/v1/predict", Some(r#"{"kernel":"mvt"}"#)),
        ("GET", "/v1/models", None),
    ] {
        let (status, headers, response) =
            serve::http::client_request_with(addr, method, path, body, &[]).unwrap();
        assert_eq!(status, 200, "{method} {path}: {response}");
        assert!(
            !headers.iter().any(|(n, _)| n == "deprecation"),
            "{method} {path} must not be deprecated: {headers:?}"
        );
    }
    // legacy aliases serve the same content but are marked deprecated
    for (path, successor) in [("/healthz", "/v1/healthz"), ("/metrics", "/v1/metrics")] {
        let (status, headers, _) =
            serve::http::client_request_with(addr, "GET", path, None, &[]).unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            headers
                .iter()
                .find(|(n, _)| n == "deprecation")
                .map(|(_, v)| v.as_str()),
            Some("true"),
            "legacy {path} must carry Deprecation: {headers:?}"
        );
        let link = headers
            .iter()
            .find(|(n, _)| n == "link")
            .map(|(_, v)| v.as_str())
            .unwrap();
        assert_eq!(link, format!("<{successor}>; rel=\"successor-version\""));
    }
    let (_, headers, _) = serve::http::client_request_with(
        addr,
        "POST",
        "/predict",
        Some(r#"{"kernel":"mvt"}"#),
        &[],
    )
    .unwrap();
    assert!(
        headers
            .iter()
            .any(|(n, v)| n == "link" && v.contains("/v1/predict")),
        "{headers:?}"
    );
    handle.shutdown();
}

#[test]
fn model_endpoints_list_inspect_and_guard_the_registry() {
    let handle = spawn_server();
    let addr = handle.addr();
    client_request(addr, "POST", "/v1/predict", Some(r#"{"kernel":"mvt"}"#)).unwrap();

    let (status, body) = client_request(addr, "GET", "/v1/models", None).unwrap();
    assert_eq!(status, 200, "{body}");
    let doc = json::parse(&body).unwrap();
    let models = json::as_array(json::field(&doc, "models").unwrap()).unwrap();
    assert_eq!(models.len(), 1);
    assert_eq!(
        json::field(&models[0], "name").and_then(json::as_str),
        Some("default")
    );
    assert_eq!(
        json::field(&models[0], "generation").and_then(json::as_u64),
        Some(1)
    );
    assert_eq!(
        json::field(&models[0], "predictions").and_then(json::as_u64),
        Some(1),
        "the served prediction must be attributed to the version: {body}"
    );

    let (status, one) = client_request(addr, "GET", "/v1/models/default", None).unwrap();
    assert_eq!(status, 200, "{one}");
    let one = json::parse(&one).unwrap();
    assert_eq!(
        json::field(&one, "source").and_then(json::as_str),
        Some("startup")
    );

    // the last model cannot be removed
    let (status, body) = client_request(addr, "DELETE", "/v1/models/default", None).unwrap();
    assert_eq!(status, 409, "{body}");
    let err = json::parse(&body).unwrap();
    assert_eq!(
        json::field(&err, "code").and_then(json::as_str),
        Some("conflict")
    );

    // a reload needs a real checkpoint path
    let (status, body) = client_request(
        addr,
        "PUT",
        "/v1/models/default",
        Some(r#"{"checkpoint":"/nonexistent/m.qorckpt"}"#),
    )
    .unwrap();
    assert_eq!(status, 500, "{body}");
    let err = json::parse(&body).unwrap();
    assert_eq!(json::field(&err, "code").and_then(json::as_str), Some("io"));

    // per-model metrics are labeled with name and generation
    let (_, metrics) = client_request(addr, "GET", "/v1/metrics", None).unwrap();
    assert!(
        metrics.contains("qor_model_generation{model=\"default\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("qor_model_predictions_total{model=\"default\",generation=\"1\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("# TYPE qor_batch_flushes_total counter"),
        "{metrics}"
    );
    handle.shutdown();
}

#[test]
fn direct_dispatch_serves_identical_predictions_without_batch_info() {
    use serve::{DispatchMode, ModelRegistry, ServerConfig};
    let registry = Arc::new(ModelRegistry::with_default(model(), 32));
    let direct = Server::bind_with(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            dispatch: DispatchMode::Direct,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn()
    .unwrap();
    let batched = spawn_server();
    let body = r#"{"kernel":"mvt","config":{"loops":[{"loop":[0],"pipeline":true}]}}"#;
    let (status, from_direct) =
        client_request(direct.addr(), "POST", "/v1/predict", Some(body)).unwrap();
    assert_eq!(status, 200, "{from_direct}");
    let (_, from_batched) =
        client_request(batched.addr(), "POST", "/v1/predict", Some(body)).unwrap();
    direct.shutdown();
    batched.shutdown();
    let d = json::parse(&from_direct).unwrap();
    let b = json::parse(&from_batched).unwrap();
    assert_eq!(
        qor_field(&d, "qor"),
        qor_field(&b, "qor"),
        "dispatch mode must not change predictions"
    );
    assert!(json::field(&d, "batch").is_none(), "{from_direct}");
    assert!(json::field(&b, "batch").is_some(), "{from_batched}");
    assert!(json::field(&d, "model").is_some(), "{from_direct}");
}

#[test]
fn shutdown_is_clean_and_idempotent_for_clients() {
    let handle = spawn_server();
    let addr = handle.addr();
    let (status, _) = client_request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    handle.shutdown();
    // the listener is gone: clients now fail to connect instead of hanging
    assert!(client_request(addr, "GET", "/healthz", None).is_err());
}

/// Scrapes one counter value from the `/v1/metrics` Prometheus text.
fn scrape_counter(addr: std::net::SocketAddr, name: &str) -> u64 {
    let (status, body) = client_request(addr, "GET", "/v1/metrics", None).unwrap();
    assert_eq!(status, 200);
    body.lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[test]
fn malformed_inline_sources_return_typed_envelopes_and_leave_the_server_alive() {
    let handle = spawn_server();
    let addr = handle.addr();
    let before_4xx = scrape_counter(addr, "qor_http_responses_4xx_total");

    // each case: a broken inline source, the expected stable error code
    let cases: Vec<(String, &str)> = vec![
        // lexer/parser garbage
        ("void f(float a[4]) { a[0] = @#$!; }".into(), "parse"),
        // truncated mid-statement
        ("void f(float a[4]) { for (int i = 0; i <".into(), "parse"),
        // semantic: unknown identifier
        ("void f(float a[4]) { a[0] = ghost; }".into(), "parse"),
        // semantic: resource limit (nest budget)
        (
            "void f(float a[4]) {
                for (int i = 0; i < 1048576; i++) {
                    for (int j = 0; j < 1048576; j++) { a[0] = 1.0; }
                }
            }"
            .into(),
            "parse",
        ),
        // valid program, wrong top name
        (
            "void g(float a[4]) { for (int i = 0; i < 4; i++) { a[i] = 1.0; } }".into(),
            "unknown_kernel",
        ),
    ];
    // plus seeded corruptor output: whatever the mutation did, the server
    // must answer with a typed envelope, never fall over
    let corrupted: Vec<(String, &str)> = kernels::corrupted_corpus(10, 0)
        .into_iter()
        .map(|(_, src)| (src, ""))
        .collect();

    let mut seen_4xx = 0u64;
    for (source, code) in cases.iter().chain(corrupted.iter()) {
        let body = format!(r#"{{"top":"f","source":{}}}"#, Json::str(source.clone()));
        let (status, response) = client_request(addr, "POST", "/v1/predict", Some(&body)).unwrap();
        if status == 200 {
            // rare: a corrupted program can stay valid — fine, not a crash
            assert!(code.is_empty(), "{source}\n{response}");
            continue;
        }
        assert!(
            (400..500).contains(&status),
            "want 4xx for broken source, got {status}: {response}"
        );
        seen_4xx += 1;
        let doc = json::parse(&response).unwrap();
        let got = json::field(&doc, "code").and_then(json::as_str).unwrap();
        if !code.is_empty() {
            assert_eq!(got, *code, "{source}\n{response}");
        }
        assert!(json::field(&doc, "message").is_some(), "{response}");
        let trace = json::field(&doc, "trace").and_then(json::as_str).unwrap();
        assert_eq!(trace.len(), 16, "{response}");
    }
    assert!(seen_4xx >= 10, "only {seen_4xx} rejections");

    // the 4xx counter moved by exactly the rejected count
    let after_4xx = scrape_counter(addr, "qor_http_responses_4xx_total");
    assert_eq!(
        after_4xx - before_4xx,
        seen_4xx,
        "4xx counter must track rejections"
    );

    // and the server still predicts happily
    let (status, response) =
        client_request(addr, "POST", "/v1/predict", Some(r#"{"kernel":"mvt"}"#)).unwrap();
    assert_eq!(
        status, 200,
        "server must survive malformed sources: {response}"
    );
    handle.shutdown();
}
