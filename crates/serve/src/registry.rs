//! The model registry: named model versions served concurrently, with
//! atomic hot-reload and a shared prepared-design cache.
//!
//! # Model versions
//!
//! The registry maps a **name** (`"default"`, `"paper"`, …) to a
//! [`ModelEntry`]: an immutable `Arc` bundling the model's [`Session`],
//! its **generation** number, and where it came from. `/v1/predict`
//! resolves a name to an entry once per request (or once per batch group —
//! see `crate::batcher`) and holds that `Arc` until the response is
//! written, so:
//!
//! * **Hot-reload is atomic.** [`ModelRegistry::install`] /
//!   [`ModelRegistry::load_file`] build the new entry *outside* the lock
//!   and swap the map pointer under it. In-flight requests keep serving
//!   from the entry they resolved — no connection is dropped, no request
//!   observes half a model.
//! * **Versions are observable.** Every swap bumps the name's generation
//!   (monotone per name for the registry's lifetime, surviving
//!   remove/re-add, so a generation seen twice is *always* the same
//!   weights). Prediction responses carry `{"model": {"name", "generation"}}`
//!   and per-model metrics are labeled with both.
//!
//! # Shared cache
//!
//! All sessions are created over one [`SharedCache`]
//! ([`Session::with_shared`]): the lowered-kernel cache is fully
//! model-independent, and prepared front halves are keyed by each model's
//! prepare fingerprint — so a hot-reload of a same-architecture retrain
//! keeps every memoized design warm, while models with different graph
//! options never alias.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use obs::log::Level;
use obs::Json;
use qor_core::{HierarchicalModel, Session, SharedCache};

use crate::error::{ApiCode, ApiError};

/// One immutable registered model version.
///
/// Entries are shared as `Arc`s; a request that resolved an entry keeps
/// predicting through it even if the registry has since swapped the name
/// to a newer generation.
#[derive(Debug)]
pub struct ModelEntry {
    /// Registry name this entry was installed under.
    pub name: String,
    /// Monotone version counter of `name` (1-based; never reused).
    pub generation: u64,
    /// Where the weights came from (checkpoint path, `"trained"`, …).
    pub source: String,
    /// The per-version inference session (over the registry's shared
    /// cache).
    session: Arc<Session>,
    /// Predictions served by this entry (this generation only).
    predictions: AtomicU64,
}

impl ModelEntry {
    /// The session answering predictions for this version.
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }

    /// `name@generation`, the human-readable version tag used in labels.
    pub fn tag(&self) -> String {
        format!("{}@{}", self.name, self.generation)
    }

    /// Counts one served prediction.
    pub fn count_prediction(&self) {
        self.predictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Predictions served by this generation so far.
    pub fn predictions(&self) -> u64 {
        self.predictions.load(Ordering::Relaxed)
    }

    /// The `GET /v1/models` row for this entry.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(&self.name)),
            ("generation", Json::UInt(self.generation)),
            ("source", Json::str(&self.source)),
            ("predictions", Json::UInt(self.predictions())),
            (
                "prepare_fingerprint",
                Json::Str(format!(
                    "{:016x}",
                    self.session.model().prepare_fingerprint()
                )),
            ),
        ])
    }
}

struct Inner {
    models: BTreeMap<String, Arc<ModelEntry>>,
    /// Next generation per name. Deliberately never forgets a name, even
    /// after [`ModelRegistry::remove`]: a re-added name continues its old
    /// sequence, so `(name, generation)` uniquely identifies weights for
    /// the registry's whole lifetime.
    next_gen: BTreeMap<String, u64>,
}

/// The name → model-version map behind `/v1/models` (see the
/// [module docs](self)).
pub struct ModelRegistry {
    cache: Arc<SharedCache>,
    inner: RwLock<Inner>,
}

/// The reserved name resolved when a request names no model.
pub const DEFAULT_MODEL: &str = "default";

impl ModelRegistry {
    /// An empty registry whose sessions will share `cache`.
    pub fn new(cache: Arc<SharedCache>) -> ModelRegistry {
        ModelRegistry {
            cache,
            inner: RwLock::new(Inner {
                models: BTreeMap::new(),
                next_gen: BTreeMap::new(),
            }),
        }
    }

    /// A registry seeded with one model under [`DEFAULT_MODEL`], its cache
    /// shared for later versions. `capacity` bounds the prepared cache.
    pub fn with_default(model: HierarchicalModel, capacity: usize) -> ModelRegistry {
        let registry = ModelRegistry::new(Arc::new(SharedCache::with_capacity(capacity)));
        registry.install(DEFAULT_MODEL, model, "startup");
        registry
    }

    /// The shared prepared-design/kernel cache behind every session.
    pub fn cache(&self) -> &Arc<SharedCache> {
        &self.cache
    }

    /// Wraps an already-built session as the sole [`DEFAULT_MODEL`] —
    /// the single-model compatibility path behind `Server::bind`. The
    /// session's own cache becomes the registry's shared cache, so later
    /// hot-reloads keep its capacity and contents.
    pub fn from_session(session: Session) -> ModelRegistry {
        let registry = ModelRegistry::new(session.shared_cache().clone());
        registry.install_session(DEFAULT_MODEL, Arc::new(session), "startup");
        registry
    }

    /// Installs (or hot-swaps) `model` under `name`, returning the new
    /// entry. The session is built outside the registry lock; in-flight
    /// requests on a previous generation are unaffected.
    pub fn install(&self, name: &str, model: HierarchicalModel, source: &str) -> Arc<ModelEntry> {
        let session = Arc::new(Session::with_shared(model, self.cache.clone()));
        self.install_session(name, session, source)
    }

    fn install_session(&self, name: &str, session: Arc<Session>, source: &str) -> Arc<ModelEntry> {
        let mut inner = self.inner.write().unwrap();
        let gen_counter = inner.next_gen.entry(name.to_string()).or_insert(1);
        let generation = *gen_counter;
        *gen_counter += 1;
        let entry = Arc::new(ModelEntry {
            name: name.to_string(),
            generation,
            source: source.to_string(),
            session,
            predictions: AtomicU64::new(0),
        });
        inner.models.insert(name.to_string(), entry.clone());
        drop(inner);
        obs::metrics::counter_add("serve/registry/installs", 1);
        if obs::log::enabled(Level::Info) {
            obs::log::event(
                Level::Info,
                "registry.install",
                &[
                    ("model", Json::str(name)),
                    ("generation", Json::UInt(generation)),
                    ("source", Json::str(source)),
                ],
            );
        }
        entry
    }

    /// Loads a `.qorckpt` checkpoint and installs it under `name`
    /// (the `PUT /v1/models/<name>` reload path).
    ///
    /// # Errors
    ///
    /// Typed [`ApiError`]s for missing/corrupt/future-format files; the
    /// registry is untouched on failure.
    pub fn load_file(&self, name: &str, path: &str) -> Result<Arc<ModelEntry>, ApiError> {
        let model = crate::checkpoint::load_model_file(path)?;
        Ok(self.install(name, model, path))
    }

    /// Resolves `name` to its current entry.
    ///
    /// # Errors
    ///
    /// [`ApiCode::UnknownModel`] when nothing is registered under `name`.
    pub fn get(&self, name: &str) -> Result<Arc<ModelEntry>, ApiError> {
        self.inner
            .read()
            .unwrap()
            .models
            .get(name)
            .cloned()
            .ok_or_else(|| ApiError::new(ApiCode::UnknownModel, format!("no model named {name:?}")))
    }

    /// The entry a request that names no model gets: [`DEFAULT_MODEL`] if
    /// registered, else the sole registered model.
    ///
    /// # Errors
    ///
    /// [`ApiCode::UnknownModel`] when the registry is empty or holds
    /// several models none of which is the default (the client must then
    /// name one).
    pub fn default_entry(&self) -> Result<Arc<ModelEntry>, ApiError> {
        let inner = self.inner.read().unwrap();
        if let Some(entry) = inner.models.get(DEFAULT_MODEL) {
            return Ok(entry.clone());
        }
        if inner.models.len() == 1 {
            return Ok(inner.models.values().next().unwrap().clone());
        }
        Err(ApiError::new(
            ApiCode::UnknownModel,
            if inner.models.is_empty() {
                "no models registered".to_string()
            } else {
                format!(
                    "no \"{DEFAULT_MODEL}\" model; name one of: {}",
                    inner.models.keys().cloned().collect::<Vec<_>>().join(", ")
                )
            },
        ))
    }

    /// Unregisters `name`. In-flight requests holding the entry finish
    /// normally; its generation number is never reused.
    ///
    /// # Errors
    ///
    /// [`ApiCode::UnknownModel`] for unknown names;
    /// [`ApiCode::Conflict`] when `name` is the last registered model (a
    /// serving process must always be able to answer `default_entry`).
    pub fn remove(&self, name: &str) -> Result<Arc<ModelEntry>, ApiError> {
        let mut inner = self.inner.write().unwrap();
        if !inner.models.contains_key(name) {
            return Err(ApiError::new(
                ApiCode::UnknownModel,
                format!("no model named {name:?}"),
            ));
        }
        if inner.models.len() == 1 {
            return Err(ApiError::new(
                ApiCode::Conflict,
                format!("refusing to remove {name:?}: it is the last registered model"),
            ));
        }
        let entry = inner.models.remove(name).expect("checked above");
        drop(inner);
        if obs::log::enabled(Level::Info) {
            obs::log::event(
                Level::Info,
                "registry.remove",
                &[
                    ("model", Json::str(name)),
                    ("generation", Json::UInt(entry.generation)),
                ],
            );
        }
        Ok(entry)
    }

    /// Every registered entry, name-ordered (the `GET /v1/models` listing).
    pub fn list(&self) -> Vec<Arc<ModelEntry>> {
        self.inner
            .read()
            .unwrap()
            .models
            .values()
            .cloned()
            .collect()
    }

    /// Number of registered model versions.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().models.len()
    }

    /// Whether no model is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qor_core::TrainOptions;

    fn tiny_model(seed: u64) -> HierarchicalModel {
        HierarchicalModel::new(&TrainOptions::quick().with_hidden(12).with_seed(seed))
    }

    #[test]
    fn install_bumps_generations_monotonically() {
        let registry = ModelRegistry::with_default(tiny_model(1), 16);
        assert_eq!(registry.get("default").unwrap().generation, 1);
        let second = registry.install("default", tiny_model(2), "retrain");
        assert_eq!(second.generation, 2);
        assert_eq!(registry.get("default").unwrap().generation, 2);
        // an older Arc kept by an in-flight request still works
        let held = registry.get("default").unwrap();
        registry.install("default", tiny_model(3), "retrain");
        assert_eq!(held.generation, 2);
        held.session()
            .predict_kernel("gemm", &pragma::PragmaConfig::default())
            .unwrap();
    }

    #[test]
    fn generations_survive_remove_and_re_add() {
        let registry = ModelRegistry::with_default(tiny_model(1), 16);
        registry.install("alt", tiny_model(2), "x");
        registry.remove("alt").unwrap();
        let back = registry.install("alt", tiny_model(3), "y");
        assert_eq!(
            back.generation, 2,
            "a re-added name must continue its sequence, not restart at 1"
        );
    }

    #[test]
    fn default_resolution_rules() {
        let registry = ModelRegistry::new(Arc::new(SharedCache::with_capacity(16)));
        assert_eq!(
            registry.default_entry().unwrap_err().code,
            ApiCode::UnknownModel
        );
        // a single non-"default" model is the implicit default
        registry.install("only", tiny_model(1), "x");
        assert_eq!(registry.default_entry().unwrap().name, "only");
        // two models, neither "default": the client must choose
        registry.install("other", tiny_model(2), "x");
        assert_eq!(
            registry.default_entry().unwrap_err().code,
            ApiCode::UnknownModel
        );
        // an explicit "default" wins
        registry.install(DEFAULT_MODEL, tiny_model(3), "x");
        assert_eq!(registry.default_entry().unwrap().name, DEFAULT_MODEL);
    }

    #[test]
    fn remove_guards_the_last_model_and_unknown_names() {
        let registry = ModelRegistry::with_default(tiny_model(1), 16);
        assert_eq!(
            registry.remove("missing").unwrap_err().code,
            ApiCode::UnknownModel
        );
        assert_eq!(
            registry.remove("default").unwrap_err().code,
            ApiCode::Conflict
        );
        registry.install("alt", tiny_model(2), "x");
        registry.remove("alt").unwrap();
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn same_architecture_versions_share_the_prepared_cache() {
        let registry = ModelRegistry::with_default(tiny_model(1), 16);
        let cfg = pragma::PragmaConfig::default();
        let before = registry.get("default").unwrap();
        before.session().predict_kernel("gemm", &cfg).unwrap();
        registry.install("default", tiny_model(99), "retrain");
        let after = registry.get("default").unwrap();
        after.session().predict_kernel("gemm", &cfg).unwrap();
        let stats = registry.cache().stats();
        assert_eq!(stats.misses, 1, "front half stays warm across reload");
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn load_file_round_trips_a_checkpoint_and_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("qor-registry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.qorckpt");
        let model = tiny_model(5);
        crate::checkpoint::save_model_file(&path, &model).unwrap();
        let registry = ModelRegistry::with_default(tiny_model(1), 16);
        let entry = registry
            .load_file("default", path.to_str().unwrap())
            .unwrap();
        assert_eq!(entry.generation, 2);
        // loaded weights must be the saved ones, not the startup model's
        let cfg = pragma::PragmaConfig::default();
        let direct = Session::new(model).predict_kernel("mvt", &cfg).unwrap();
        assert_eq!(entry.session().predict_kernel("mvt", &cfg).unwrap(), direct);
        let missing = registry.load_file("default", "/nonexistent/x.qorckpt");
        assert_eq!(missing.unwrap_err().code, ApiCode::Io);
        std::fs::write(&path, b"not a checkpoint").unwrap();
        let corrupt = registry.load_file("default", path.to_str().unwrap());
        assert_eq!(corrupt.unwrap_err().code, ApiCode::Corrupt);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
