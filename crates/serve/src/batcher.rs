//! The cross-request batching queue: coalesces `POST /v1/predict` items
//! from many concurrent connections into `par`-fanned micro-batches.
//!
//! # Why
//!
//! A DSE client hammers the server with thousands of small predictions;
//! thread-per-connection serving pays per-request overhead (and worse,
//! races identical cold configurations through `prepare` concurrently —
//! each racer pays the full front half because the session deliberately
//! computes outside its cache lock). The batcher turns that traffic into
//! micro-batches:
//!
//! 1. Connection threads decode their requests and *submit* work items to
//!    one dispatcher thread over an MPSC channel, then block on a private
//!    response channel.
//! 2. The dispatcher collects items until either **`max_batch`** items are
//!    pending or **`max_wait`** has elapsed since the first item of the
//!    flush — whichever comes first — then flushes.
//! 3. A flush groups items by requested model, resolves each model name
//!    **once per group** (so a hot-reload can never split one batch across
//!    generations — mixed-version batches are impossible by construction),
//!    **single-flights** duplicate designs (identical `(kernel/source,
//!    config)` items compute once and share the result), and fans the
//!    unique work through the deterministic [`par::map`] executor.
//!
//! # Determinism
//!
//! Batch *composition* is timing-dependent, but every item's result is a
//! pure function of `(model generation, kernel/source, config)`: `par::map`
//! is bit-deterministic for any worker count, single-flighted duplicates
//! by definition return the same bits, and each item's result is returned
//! to its own request in submission order. A workload checksum over
//! responses in request order is therefore byte-identical whatever batches
//! happened to form — the contract `qor-bench --smoke` enforces in CI.

use std::collections::BTreeMap;
use std::hash::Hasher as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obs::trace;
use pragma::PragmaConfig;
use qor_core::{Fnv1aHasher, PredictReport};

use crate::error::{ApiCode, ApiError};
use crate::registry::{ModelEntry, ModelRegistry};

/// Flush policy of the batching queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOptions {
    /// Flush as soon as this many items are pending.
    pub max_batch: usize,
    /// Flush this long after the first pending item arrived, even if the
    /// batch is not full (bounds the queueing latency a lone request pays).
    pub max_wait: Duration,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            max_batch: 32,
            max_wait: Duration::from_micros(500),
        }
    }
}

impl BatchOptions {
    /// Options from `QOR_BATCH_MAX` / `QOR_BATCH_WAIT_US` (defaults 32 and
    /// 500 µs; unparsable values fall back to the defaults).
    pub fn from_env() -> BatchOptions {
        let defaults = BatchOptions::default();
        let uint = |key: &str| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
        };
        BatchOptions {
            max_batch: uint("QOR_BATCH_MAX")
                .and_then(|v| usize::try_from(v).ok())
                .filter(|&v| v >= 1)
                .unwrap_or(defaults.max_batch),
            max_wait: uint("QOR_BATCH_WAIT_US")
                .map(Duration::from_micros)
                .unwrap_or(defaults.max_wait),
        }
    }
}

/// One decoded prediction item, ready to batch.
pub struct PredictItem {
    /// Requested model name (`None` = the registry default).
    pub model: Option<String>,
    /// Bundled kernel name (exactly one of `kernel`/`source` is set).
    pub kernel: Option<String>,
    /// Inline `(top, source)` pair.
    pub source: Option<(String, String)>,
    /// The pragma configuration to score.
    pub cfg: PragmaConfig,
    /// Raw trace id of the originating request; workers adopt it so cache
    /// events stay attributable across the batching boundary.
    pub trace: u64,
}

impl PredictItem {
    /// Single-flight key: items with equal keys within one model group are
    /// the same design and compute once.
    fn design_key(&self) -> u64 {
        let mut h = Fnv1aHasher::new();
        match (&self.kernel, &self.source) {
            (Some(k), _) => {
                h.write(b"kernel");
                h.write(k.as_bytes());
            }
            (_, Some((top, source))) => {
                h.write(b"source");
                h.write(top.as_bytes());
                h.write(&[0]);
                h.write(source.as_bytes());
            }
            _ => h.write(b"invalid"),
        }
        h.write_u64(self.cfg.fingerprint());
        h.finish()
    }
}

/// What one item gets back from its batch.
#[derive(Debug, Clone)]
pub struct ItemOutcome {
    /// The prediction, or the typed error to serialize for this item.
    pub result: Result<PredictReport, ApiError>,
    /// Resolved model name (the requested name when resolution failed).
    pub model: String,
    /// Resolved model generation (0 when resolution failed).
    pub generation: u64,
    /// Id of the (flush, model-group) batch that served this item.
    pub batch_id: u64,
    /// Items the batch carried (before single-flight dedup).
    pub batch_size: usize,
    /// Whether this item shared its computation with at least one other
    /// item of the batch.
    pub deduped: bool,
}

struct WorkItem {
    item: PredictItem,
    /// Position in the submitting request's item list.
    index: usize,
    respond: SyncSender<(usize, ItemOutcome)>,
}

/// Cumulative batcher counters (`GET /debug/vars` → `"batcher"`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatcherStats {
    /// Flushes executed (each may span several model groups).
    pub batches: u64,
    /// Flushes triggered by reaching `max_batch`.
    pub flush_full: u64,
    /// Flushes triggered by the `max_wait` deadline.
    pub flush_timeout: u64,
    /// Items batched in total.
    pub items: u64,
    /// Items answered by another item's computation (single-flight).
    pub deduped: u64,
    /// Largest flush observed.
    pub max_batch_seen: u64,
}

struct Shared {
    registry: Arc<ModelRegistry>,
    batch_seq: AtomicU64,
    batches: AtomicU64,
    flush_full: AtomicU64,
    flush_timeout: AtomicU64,
    items: AtomicU64,
    deduped: AtomicU64,
    max_batch_seen: AtomicU64,
}

/// The batching queue (see the [module docs](self)). Owns the dispatcher
/// thread; dropping the batcher (or calling [`Batcher::shutdown`]) drains
/// pending work and stops it.
pub struct Batcher {
    tx: Option<SyncSender<WorkItem>>,
    opts: BatchOptions,
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
}

/// Channel depth between connection threads and the dispatcher. Deep
/// enough that submission almost never blocks; bounded so a stalled
/// dispatcher applies backpressure instead of unbounded queue growth.
const QUEUE_DEPTH: usize = 1024;

impl Batcher {
    /// Starts the dispatcher thread over `registry`.
    pub fn new(registry: Arc<ModelRegistry>, opts: BatchOptions) -> Batcher {
        let (tx, rx) = mpsc::sync_channel::<WorkItem>(QUEUE_DEPTH);
        let shared = Arc::new(Shared {
            registry,
            batch_seq: AtomicU64::new(1),
            batches: AtomicU64::new(0),
            flush_full: AtomicU64::new(0),
            flush_timeout: AtomicU64::new(0),
            items: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            max_batch_seen: AtomicU64::new(0),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("qor-batcher".into())
                .spawn(move || dispatch_loop(&rx, &shared, opts))
                .expect("spawning the batcher dispatcher")
        };
        Batcher {
            tx: Some(tx),
            opts,
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// The flush policy this batcher runs.
    pub fn options(&self) -> BatchOptions {
        self.opts
    }

    /// Cumulative counters.
    pub fn stats(&self) -> BatcherStats {
        let s = &self.shared;
        BatcherStats {
            batches: s.batches.load(Ordering::Relaxed),
            flush_full: s.flush_full.load(Ordering::Relaxed),
            flush_timeout: s.flush_timeout.load(Ordering::Relaxed),
            items: s.items.load(Ordering::Relaxed),
            deduped: s.deduped.load(Ordering::Relaxed),
            max_batch_seen: s.max_batch_seen.load(Ordering::Relaxed),
        }
    }

    /// Submits `items` and blocks until every one has an outcome, returned
    /// in submission order. Items may land in different flushes; each
    /// outcome names the batch that served it.
    ///
    /// Never returns fewer outcomes than items: if the dispatcher is gone
    /// (shutdown race), the missing entries are filled with
    /// [`ApiCode::Internal`] errors.
    pub fn submit_wait(&self, items: Vec<PredictItem>) -> Vec<ItemOutcome> {
        let n = items.len();
        let unavailable = |msg: &str| ItemOutcome {
            result: Err(ApiError::new(ApiCode::Internal, msg)),
            model: String::new(),
            generation: 0,
            batch_id: 0,
            batch_size: 0,
            deduped: false,
        };
        let Some(tx) = &self.tx else {
            return vec![unavailable("batcher is shut down"); n];
        };
        let (respond, outcomes) = mpsc::sync_channel::<(usize, ItemOutcome)>(n.max(1));
        let mut submitted = 0usize;
        for (index, item) in items.into_iter().enumerate() {
            let work = WorkItem {
                item,
                index,
                respond: respond.clone(),
            };
            if tx.send(work).is_err() {
                break; // dispatcher gone; the tail stays unanswered
            }
            submitted += 1;
        }
        drop(respond);
        let mut out: Vec<Option<ItemOutcome>> = (0..n).map(|_| None).collect();
        for _ in 0..submitted {
            match outcomes.recv() {
                Ok((index, outcome)) => out[index] = Some(outcome),
                Err(_) => break, // dispatcher dropped our responder
            }
        }
        out.into_iter()
            .map(|o| o.unwrap_or_else(|| unavailable("batcher dropped the item")))
            .collect()
    }

    /// Stops the dispatcher after it drains already-queued work. Called by
    /// the server's shutdown path; idempotent.
    pub fn shutdown(&mut self) {
        self.tx.take(); // disconnects the channel; the loop exits on drain
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The dispatcher: block for the first item, then collect until the flush
/// fills or its deadline passes, then execute. Exits when every sender is
/// gone and the queue is drained.
fn dispatch_loop(rx: &mpsc::Receiver<WorkItem>, shared: &Shared, opts: BatchOptions) {
    loop {
        let first = match rx.recv() {
            Ok(work) => work,
            Err(_) => return, // all senders dropped, queue drained
        };
        let deadline = Instant::now() + opts.max_wait;
        let mut batch = vec![first];
        let mut disconnected = false;
        let mut timed_out = false;
        while batch.len() < opts.max_batch {
            let now = Instant::now();
            if now >= deadline {
                timed_out = true;
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(work) => batch.push(work),
                Err(RecvTimeoutError::Timeout) => {
                    timed_out = true;
                    break;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        if timed_out {
            shared.flush_timeout.fetch_add(1, Ordering::Relaxed);
        } else {
            // filled to max_batch (or the tail flush at disconnect)
            shared.flush_full.fetch_add(1, Ordering::Relaxed);
        }
        execute_flush(shared, batch);
        if disconnected {
            // serve whatever was still queued at disconnect, then exit
            while let Ok(work) = rx.try_recv() {
                execute_flush(shared, vec![work]);
            }
            return;
        }
    }
}

/// Executes one flush: group by model → resolve each model once →
/// single-flight duplicates → fan unique work through `par::map` →
/// distribute outcomes.
fn execute_flush(shared: &Shared, batch: Vec<WorkItem>) {
    shared.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .items
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    shared
        .max_batch_seen
        .fetch_max(batch.len() as u64, Ordering::Relaxed);
    obs::metrics::counter_add("serve/batch/flushes", 1);
    obs::metrics::histogram_record("serve/batch/size", batch.len() as f64);

    // group by requested model name; BTreeMap so group order (and thus
    // batch-id assignment) is deterministic given a flush's contents
    let mut groups: BTreeMap<String, Vec<WorkItem>> = BTreeMap::new();
    for work in batch {
        let key = work.item.model.clone().unwrap_or_default();
        groups.entry(key).or_default().push(work);
    }
    for (requested, members) in groups {
        let entry = if requested.is_empty() {
            shared.registry.default_entry()
        } else {
            shared.registry.get(&requested)
        };
        match entry {
            Ok(entry) => run_group(shared, &entry, members),
            Err(e) => {
                // resolution failed: every member gets the same typed error
                let batch_id = shared.batch_seq.fetch_add(1, Ordering::Relaxed);
                let size = members.len();
                for work in members {
                    let outcome = ItemOutcome {
                        result: Err(e.clone()),
                        model: requested.clone(),
                        generation: 0,
                        batch_id,
                        batch_size: size,
                        deduped: false,
                    };
                    let _ = work.respond.send((work.index, outcome));
                }
            }
        }
    }
}

/// Runs one model group of a flush against its resolved entry. Every item
/// here serves from the same `Arc<ModelEntry>` — one generation, by
/// construction.
fn run_group(shared: &Shared, entry: &Arc<ModelEntry>, members: Vec<WorkItem>) {
    let batch_id = shared.batch_seq.fetch_add(1, Ordering::Relaxed);
    let size = members.len();

    // single-flight: first occurrence of a design computes; later
    // occurrences share its slot
    let mut slot_of_key: BTreeMap<u64, usize> = BTreeMap::new();
    let mut uniques: Vec<&WorkItem> = Vec::with_capacity(size);
    let mut slots: Vec<usize> = Vec::with_capacity(size);
    for work in &members {
        let key = work.item.design_key();
        let slot = *slot_of_key.entry(key).or_insert_with(|| {
            uniques.push(work);
            uniques.len() - 1
        });
        slots.push(slot);
    }
    let dup_count = (size - uniques.len()) as u64;
    shared.deduped.fetch_add(dup_count, Ordering::Relaxed);
    if dup_count > 0 {
        obs::metrics::counter_add("serve/batch/deduped", dup_count);
    }

    // fan the unique designs through the deterministic executor; each
    // worker adopts its item's request trace
    let results: Vec<Result<PredictReport, ApiError>> =
        par::map("serve/batch", &uniques, |_, work| {
            let _g = trace::adopt_raw(work.item.trace);
            let session = entry.session();
            let r = if let Some(kernel) = &work.item.kernel {
                session.predict_kernel_report(kernel, &work.item.cfg)
            } else if let Some((top, source)) = &work.item.source {
                session.predict_source_report(top, source, &work.item.cfg)
            } else {
                Err(qor_core::QorError::UnknownKernel(
                    "item names neither kernel nor source".into(),
                ))
            };
            r.map_err(ApiError::from)
        });

    // count served predictions per model version (one per *item*: dedup is
    // an implementation detail, each request logically got a prediction)
    let shared_slots: Vec<bool> = {
        let mut seen = vec![0u32; uniques.len()];
        for &slot in &slots {
            seen[slot] += 1;
        }
        seen.into_iter().map(|c| c > 1).collect()
    };
    for (work, &slot) in members.iter().zip(&slots) {
        entry.count_prediction();
        let outcome = ItemOutcome {
            result: results[slot].clone(),
            model: entry.name.clone(),
            generation: entry.generation,
            batch_id,
            batch_size: size,
            deduped: shared_slots[slot],
        };
        let _ = work.respond.send((work.index, outcome));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelRegistry;
    use qor_core::{HierarchicalModel, TrainOptions};

    fn registry() -> Arc<ModelRegistry> {
        let opts = TrainOptions::quick().with_hidden(12).with_epochs(1);
        Arc::new(ModelRegistry::with_default(
            HierarchicalModel::new(&opts),
            64,
        ))
    }

    fn item(kernel: &str, cfg_json_pipeline: bool) -> PredictItem {
        let mut cfg = PragmaConfig::default();
        if cfg_json_pipeline {
            cfg.set_pipeline(pragma::LoopId::from_path(&[0]), true);
        }
        PredictItem {
            model: None,
            kernel: Some(kernel.to_string()),
            source: None,
            cfg,
            trace: 0,
        }
    }

    #[test]
    fn a_lone_item_flushes_on_the_wait_deadline() {
        let batcher = Batcher::new(
            registry(),
            BatchOptions {
                max_batch: 64,
                max_wait: Duration::from_millis(5),
            },
        );
        let out = batcher.submit_wait(vec![item("gemm", false)]);
        assert_eq!(out.len(), 1);
        assert!(out[0].result.is_ok());
        assert_eq!(out[0].model, "default");
        assert_eq!(out[0].generation, 1);
        assert_eq!(out[0].batch_size, 1);
        let stats = batcher.stats();
        assert_eq!(stats.flush_timeout, 1, "{stats:?}");
        assert_eq!(stats.flush_full, 0, "{stats:?}");
    }

    #[test]
    fn a_full_submission_flushes_on_size() {
        let batcher = Batcher::new(
            registry(),
            BatchOptions {
                max_batch: 3,
                // long enough that hitting the deadline would hang the test
                // noticeably — a pass proves the size trigger fired
                max_wait: Duration::from_secs(2),
            },
        );
        let t0 = Instant::now();
        let out = batcher.submit_wait(vec![
            item("gemm", false),
            item("gemm", true),
            item("mvt", false),
        ]);
        assert!(out.iter().all(|o| o.result.is_ok()));
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "size flush must not wait for the deadline"
        );
        let stats = batcher.stats();
        assert_eq!(stats.flush_full, 1, "{stats:?}");
        assert_eq!(stats.items, 3);
    }

    #[test]
    fn duplicates_single_flight_and_share_bits() {
        let batcher = Batcher::new(
            registry(),
            BatchOptions {
                max_batch: 4,
                max_wait: Duration::from_secs(2),
            },
        );
        let out = batcher.submit_wait(vec![
            item("gemm", false),
            item("gemm", false),
            item("gemm", false),
            item("gemm", true),
        ]);
        let q0 = out[0].result.as_ref().unwrap().qor;
        assert_eq!(out[1].result.as_ref().unwrap().qor, q0);
        assert_eq!(out[2].result.as_ref().unwrap().qor, q0);
        assert_ne!(out[3].result.as_ref().unwrap().qor, q0);
        assert!(out[0].deduped && out[1].deduped && out[2].deduped);
        assert!(!out[3].deduped);
        assert_eq!(batcher.stats().deduped, 2);
        // all four rode one batch
        assert!(out.iter().all(|o| o.batch_id == out[0].batch_id));
        assert_eq!(out[0].batch_size, 4);
    }

    #[test]
    fn unknown_models_fail_every_member_with_a_typed_error() {
        let batcher = Batcher::new(registry(), BatchOptions::default());
        let mut a = item("gemm", false);
        a.model = Some("missing".into());
        let out = batcher.submit_wait(vec![a]);
        let err = out[0].result.as_ref().unwrap_err();
        assert_eq!(err.code, ApiCode::UnknownModel);
        assert_eq!(out[0].generation, 0);
    }

    #[test]
    fn item_errors_stay_per_item() {
        let batcher = Batcher::new(
            registry(),
            BatchOptions {
                max_batch: 2,
                max_wait: Duration::from_secs(2),
            },
        );
        let out = batcher.submit_wait(vec![item("gemm", false), item("no-such-kernel", false)]);
        assert!(out[0].result.is_ok());
        assert_eq!(
            out[1].result.as_ref().unwrap_err().code,
            ApiCode::UnknownKernel
        );
    }

    #[test]
    fn concurrent_submitters_coalesce_into_shared_batches() {
        let batcher = Arc::new(Batcher::new(
            registry(),
            BatchOptions {
                max_batch: 8,
                max_wait: Duration::from_millis(20),
            },
        ));
        let outs: Vec<ItemOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let batcher = Arc::clone(&batcher);
                    scope.spawn(move || {
                        batcher
                            .submit_wait(vec![item(if i % 2 == 0 { "gemm" } else { "mvt" }, false)])
                            .remove(0)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(outs.iter().all(|o| o.result.is_ok()));
        let stats = batcher.stats();
        assert_eq!(stats.items, 8);
        assert!(
            stats.batches < 8,
            "some coalescing must happen under concurrent load: {stats:?}"
        );
        assert!(
            outs.iter().any(|o| o.batch_size > 1),
            "at least one multi-item batch expected"
        );
    }

    #[test]
    fn shutdown_answers_submissions_with_internal_errors() {
        let mut batcher = Batcher::new(registry(), BatchOptions::default());
        batcher.shutdown();
        let out = batcher.submit_wait(vec![item("gemm", false)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].result.as_ref().unwrap_err().code, ApiCode::Internal);
    }
}
