//! The `/v1` error contract: every non-2xx response carries one JSON
//! envelope `{"code", "message", "trace"}`.
//!
//! * `code` — a stable machine-readable token from [`ApiCode`]; clients
//!   branch on it, never on `message`. The pipeline-facing codes map 1:1
//!   onto [`QorError`] variants (see [`ApiError::from`]), so a prediction
//!   failure keeps its type across the HTTP boundary.
//! * `message` — human-readable detail; free to change between versions.
//! * `trace` — the request's 16-hex-digit trace id (also echoed in the
//!   `x-qor-trace` header), so an error report can be joined against
//!   `GET /debug/requests` and server logs.
//!
//! [`ApiError`] values are `Clone` on purpose: the batcher computes one
//! result per *unique* design and distributes it to every request that
//! coalesced onto it, errors included.

use obs::Json;
use qor_core::QorError;

/// Stable machine-readable error codes of the `/v1` surface.
///
/// The first block is HTTP-layer; the second mirrors [`QorError`] 1:1;
/// the last three are serving-layer (registry/job lookups and internal
/// faults). Tokens are part of the API contract — never renamed, only
/// appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiCode {
    /// Malformed request (bad JSON, wrong field types, missing fields).
    BadRequest,
    /// No route matches the path.
    NotFound,
    /// The path exists but not for this method.
    MethodNotAllowed,
    /// Request head or body exceeded the configured bounds.
    PayloadTooLarge,
    /// HLS-C front-end rejected an inline source ([`QorError::Parse`]).
    Parse,
    /// IR lowering failed ([`QorError::Lower`]).
    Lower,
    /// Analytic evaluation failed ([`QorError::Eval`]).
    Eval,
    /// Named kernel is not bundled / `top` not in source
    /// ([`QorError::UnknownKernel`]).
    UnknownKernel,
    /// Checkpoint / job-snapshot I/O failed ([`QorError::Io`]).
    Io,
    /// Tensor or dataset shape mismatch ([`QorError::Shape`]).
    Shape,
    /// Checkpoint failed checksum or structural validation
    /// ([`QorError::Corrupt`]).
    Corrupt,
    /// Checkpoint written by a newer format
    /// ([`QorError::UnsupportedVersion`]).
    UnsupportedVersion,
    /// No model version with that name is registered.
    UnknownModel,
    /// No DSE job with that id exists.
    UnknownJob,
    /// The operation conflicts with serving state (e.g. removing the last
    /// model).
    Conflict,
    /// The distributed-search fleet cannot serve the request: no live
    /// workers, or a unit exhausted its retries ([`QorError::Fleet`]).
    Fleet,
    /// Unexpected serving-layer failure.
    Internal,
}

impl ApiCode {
    /// The wire token (`snake_case`, stable).
    pub fn token(self) -> &'static str {
        match self {
            ApiCode::BadRequest => "bad_request",
            ApiCode::NotFound => "not_found",
            ApiCode::MethodNotAllowed => "method_not_allowed",
            ApiCode::PayloadTooLarge => "payload_too_large",
            ApiCode::Parse => "parse",
            ApiCode::Lower => "lower",
            ApiCode::Eval => "eval",
            ApiCode::UnknownKernel => "unknown_kernel",
            ApiCode::Io => "io",
            ApiCode::Shape => "shape",
            ApiCode::Corrupt => "corrupt",
            ApiCode::UnsupportedVersion => "unsupported_version",
            ApiCode::UnknownModel => "unknown_model",
            ApiCode::UnknownJob => "unknown_job",
            ApiCode::Conflict => "conflict",
            ApiCode::Fleet => "fleet",
            ApiCode::Internal => "internal",
        }
    }

    /// The HTTP status this code maps to.
    pub fn status(self) -> u16 {
        match self {
            ApiCode::NotFound | ApiCode::UnknownJob | ApiCode::UnknownModel => 404,
            ApiCode::MethodNotAllowed => 405,
            ApiCode::PayloadTooLarge => 413,
            ApiCode::Conflict => 409,
            ApiCode::Fleet => 503,
            ApiCode::Internal | ApiCode::Io => 500,
            // pipeline rejections of client-supplied inputs are 4xx: the
            // request was understood but the payload cannot be served
            ApiCode::BadRequest
            | ApiCode::Parse
            | ApiCode::Lower
            | ApiCode::Eval
            | ApiCode::UnknownKernel
            | ApiCode::Shape
            | ApiCode::Corrupt
            | ApiCode::UnsupportedVersion => 400,
        }
    }

    /// The HTTP reason phrase for [`ApiCode::status`].
    pub fn reason(self) -> &'static str {
        match self.status() {
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }
}

/// One API-surface error: a stable code plus human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// Machine-readable classification.
    pub code: ApiCode,
    /// Human-readable detail (not part of the stable contract).
    pub message: String,
}

impl ApiError {
    /// An error with an explicit code and message.
    pub fn new(code: ApiCode, message: impl Into<String>) -> ApiError {
        ApiError {
            code,
            message: message.into(),
        }
    }

    /// Shorthand for the most common decode failure.
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError::new(ApiCode::BadRequest, message)
    }

    /// The HTTP status of this error.
    pub fn status(&self) -> u16 {
        self.code.status()
    }

    /// The `{"code","message","trace"}` envelope, stamping the *current*
    /// trace context (the server serializes errors on the request's
    /// thread, where the request trace is adopted).
    pub fn envelope(&self) -> Json {
        Json::obj(vec![
            ("code", Json::str(self.code.token())),
            ("message", Json::str(&self.message)),
            (
                "trace",
                Json::Str(format!("{:016x}", obs::trace::current_raw())),
            ),
        ])
    }

    /// [`ApiError::envelope`] as a serialized body.
    pub fn body(&self) -> String {
        self.envelope().to_string()
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.token(), self.message)
    }
}

impl std::error::Error for ApiError {}

impl From<QorError> for ApiError {
    /// The 1:1 mapping: every [`QorError`] variant keeps its identity as
    /// an [`ApiCode`]; the display string becomes the message.
    fn from(e: QorError) -> ApiError {
        let code = match &e {
            QorError::Parse(_) => ApiCode::Parse,
            QorError::Lower(_) => ApiCode::Lower,
            QorError::Eval(_) => ApiCode::Eval,
            QorError::UnknownKernel(_) => ApiCode::UnknownKernel,
            QorError::Io(_) => ApiCode::Io,
            QorError::Shape(_) => ApiCode::Shape,
            QorError::Corrupt(_) => ApiCode::Corrupt,
            QorError::UnsupportedVersion(_) => ApiCode::UnsupportedVersion,
            QorError::Fleet(_) => ApiCode::Fleet,
        };
        ApiError::new(code, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qor_errors_map_one_to_one() {
        let cases: Vec<(QorError, ApiCode, u16)> = vec![
            (
                QorError::UnknownKernel("zed".into()),
                ApiCode::UnknownKernel,
                400,
            ),
            (QorError::Shape("dim".into()), ApiCode::Shape, 400),
            (QorError::Corrupt("crc".into()), ApiCode::Corrupt, 400),
            (
                QorError::UnsupportedVersion(99),
                ApiCode::UnsupportedVersion,
                400,
            ),
            (
                QorError::Io(std::io::Error::other("disk")),
                ApiCode::Io,
                500,
            ),
            (
                QorError::Fleet("no live workers".into()),
                ApiCode::Fleet,
                503,
            ),
        ];
        for (qor, code, status) in cases {
            let api = ApiError::from(qor);
            assert_eq!(api.code, code);
            assert_eq!(api.status(), status);
        }
    }

    #[test]
    fn envelope_has_the_three_contract_fields() {
        let body = ApiError::new(ApiCode::UnknownModel, "no model \"x\"").body();
        let doc = crate::json::parse(&body).unwrap();
        assert_eq!(
            crate::json::field(&doc, "code").and_then(crate::json::as_str),
            Some("unknown_model")
        );
        assert!(crate::json::field(&doc, "message").is_some());
        let trace = crate::json::field(&doc, "trace")
            .and_then(crate::json::as_str)
            .unwrap();
        assert_eq!(trace.len(), 16, "trace must be 16 hex digits: {trace:?}");
    }

    #[test]
    fn envelope_stamps_the_adopted_trace() {
        let id = obs::trace::derive(&[b"api-error-test"]);
        let _g = obs::trace::adopt(id);
        let body = ApiError::bad_request("nope").body();
        assert!(body.contains(&id.as_hex()), "{body}");
    }

    #[test]
    fn statuses_and_reasons_are_consistent() {
        for code in [
            ApiCode::BadRequest,
            ApiCode::NotFound,
            ApiCode::MethodNotAllowed,
            ApiCode::PayloadTooLarge,
            ApiCode::UnknownModel,
            ApiCode::UnknownJob,
            ApiCode::Conflict,
            ApiCode::Fleet,
            ApiCode::Internal,
        ] {
            assert!(!code.token().is_empty());
            assert!((400..=599).contains(&code.status()));
            assert!(!code.reason().is_empty());
        }
    }
}
