//! A recursive-descent JSON parser producing [`obs::Json`] values.
//!
//! `obs` ships the workspace's write-only JSON value (run reports never
//! parse); the server needs the other direction for request bodies. The
//! parser is strict RFC 8259: no trailing commas, no comments, one value
//! per document. Nesting depth is capped so adversarial bodies cannot
//! overflow the stack.

use obs::Json;

/// Maximum nesting depth accepted by [`parse`].
const MAX_DEPTH: usize = 64;

/// A parse failure with its byte offset in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document.
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first violation.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xd800..0xdc00).contains(&hi) {
                                // surrogate pair: a low surrogate must follow
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?,
                            );
                        }
                        c => {
                            return Err(self.err(format!("bad escape \\{}", c as char)));
                        }
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("control character in string"));
                }
                Some(_) => {
                    // copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid)
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("short \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("unparseable number"))
    }
}

// -------------------------------------------------------------- accessors

/// Looks up a field of an object (first match; `None` for non-objects).
pub fn field<'a>(value: &'a Json, key: &str) -> Option<&'a Json> {
    match value {
        Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// The string payload, if this is a string.
pub fn as_str(value: &Json) -> Option<&str> {
    match value {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

/// The value as a `u64`, accepting any non-negative integral number.
pub fn as_u64(value: &Json) -> Option<u64> {
    match value {
        Json::UInt(v) => Some(*v),
        Json::Int(v) => u64::try_from(*v).ok(),
        Json::Float(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => Some(*v as u64),
        _ => None,
    }
}

/// The value as an `f64`, accepting any number. Lossless for every value
/// the serializer emits: `Json::Float` prints the shortest round-tripping
/// decimal, and integral floats that parsed back as `UInt`/`Int` convert
/// exactly (they came from an `f64` with zero fraction).
pub fn as_f64(value: &Json) -> Option<f64> {
    match value {
        Json::UInt(v) => Some(*v as f64),
        Json::Int(v) => Some(*v as f64),
        Json::Float(v) => Some(*v),
        _ => None,
    }
}

/// The boolean payload, if this is a boolean.
pub fn as_bool(value: &Json) -> Option<bool> {
    match value {
        Json::Bool(b) => Some(*b),
        _ => None,
    }
}

/// The element list, if this is an array.
pub fn as_array(value: &Json) -> Option<&[Json]> {
    match value {
        Json::Arr(items) => Some(items),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("42").unwrap(), Json::UInt(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("2.5e1").unwrap(), Json::Float(25.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
        assert_eq!(
            parse("[1, 2]").unwrap(),
            Json::Arr(vec![Json::UInt(1), Json::UInt(2)])
        );
        let obj = parse(r#"{"a": 1, "b": [true, null]}"#).unwrap();
        assert_eq!(as_u64(field(&obj, "a").unwrap()), Some(1));
        assert_eq!(as_array(field(&obj, "b").unwrap()).unwrap().len(), 2);
    }

    #[test]
    fn round_trips_through_the_obs_writer() {
        let doc = r#"{"kernel":"mvt","config":{"loops":[{"loop":[0,1],"pipeline":true}]},"x":-3,"y":1.5,"s":"a\"b\\c\nd"}"#;
        let parsed = parse(doc).unwrap();
        let reparsed = parse(&parsed.to_string()).unwrap();
        assert_eq!(parsed, reparsed);
    }

    #[test]
    fn string_escapes_decode() {
        assert_eq!(
            parse(r#""aA\té😀""#).unwrap(),
            Json::Str("aA\t\u{e9}\u{1f600}".into())
        );
        assert!(parse(r#""\ud800""#).is_err(), "unpaired surrogate");
        assert!(parse("\"a\nb\"").is_err(), "raw control character");
    }

    #[test]
    fn malformed_documents_are_rejected_with_offsets() {
        for doc in [
            "",
            "{",
            "[1,",
            "[1,]",
            r#"{"a" 1}"#,
            "tru",
            "1.2.3",
            "01x",
            "[1] extra",
            r#"{"a":}"#,
        ] {
            let err = parse(doc).unwrap_err();
            assert!(err.offset <= doc.len(), "{doc:?}: {err}");
        }
    }

    #[test]
    fn depth_limit_blocks_stack_abuse() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
        // within the limit is fine
        let ok = "[".repeat(32) + "1" + &"]".repeat(32);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn numbers_keep_their_natural_types() {
        assert_eq!(
            as_u64(&parse("18446744073709551615").unwrap()),
            Some(u64::MAX)
        );
        assert!(matches!(
            parse("-9223372036854775808").unwrap(),
            Json::Int(i64::MIN)
        ));
        // too large for both integer types: falls back to float
        assert!(matches!(
            parse("99999999999999999999").unwrap(),
            Json::Float(_)
        ));
        assert_eq!(as_u64(&Json::Float(3.0)), Some(3));
        assert_eq!(as_u64(&Json::Float(3.5)), None);
        assert_eq!(as_u64(&Json::Int(-1)), None);
    }
}
