#![warn(missing_docs)]
//! Model serving: versioned checkpoints and a std-only batch-inference
//! HTTP server.
//!
//! The paper's headline use case is replacing hours-long HLS + place &
//! route runs with millisecond model inference inside a DSE loop. This
//! crate packages the trained [`qor_core::HierarchicalModel`] for that
//! role:
//!
//! * [`checkpoint`] — a versioned, checksummed binary format that
//!   round-trips all three GNN banks (and the full hierarchical model)
//!   bit-exactly, and rejects corrupt or future-format files with typed
//!   [`qor_core::QorError`]s instead of panicking.
//! * [`server`] — an HTTP/1.1 server over raw `std::net` (the build is
//!   offline; no hyper) with `POST /predict` (single and batched),
//!   `GET /healthz`, and a Prometheus `GET /metrics`. All predictions go
//!   through one shared [`qor_core::Session`], so repeated pragma
//!   configurations are answered from the memoized front half.
//! * [`http`] / [`json`] — the minimal substrates the server stands on:
//!   bounded request parsing and a strict JSON parser for request bodies
//!   (`obs::Json` is write-only).
//!
//! The `qor-serve` binary wires these together; `qor-serve --self-test`
//! runs an in-process end-to-end smoke test (bind, predict twice, verify
//! the cache hit, clean shutdown) used by CI.

pub mod checkpoint;
pub mod http;
pub mod json;
pub mod server;

pub use checkpoint::{
    load_bank_into, load_model, load_model_file, save_bank, save_model, save_model_file,
    FORMAT_VERSION, MAGIC,
};
pub use server::{Server, ServerHandle};

// the server shares one Session across connection threads
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<qor_core::Session>();
};
