#![warn(missing_docs)]
//! Model serving: versioned checkpoints, a hot-reloadable model registry,
//! a cross-request batching queue, and a std-only `/v1` HTTP server.
//!
//! The paper's headline use case is replacing hours-long HLS + place &
//! route runs with millisecond model inference inside a DSE loop. This
//! crate packages the trained [`qor_core::HierarchicalModel`] for that
//! role:
//!
//! * [`checkpoint`] — a versioned, checksummed binary format that
//!   round-trips all three GNN banks (and the full hierarchical model)
//!   bit-exactly, and rejects corrupt or future-format files with typed
//!   [`qor_core::QorError`]s instead of panicking.
//! * [`registry`] — named model versions over one shared
//!   [`qor_core::SharedCache`]: install/reload/remove `name → checkpoint`
//!   mappings atomically while requests are in flight; every reload bumps
//!   a monotone generation so `(name, generation)` identifies weights
//!   forever.
//! * [`batcher`] — the latency/size-bounded cross-request batching queue:
//!   concurrent `POST /v1/predict` items coalesce into micro-batches
//!   (flush on `max_batch` items or `max_wait` elapsed), duplicate
//!   designs are single-flighted, and unique work fans through the
//!   deterministic `par` executor.
//! * [`server`] — an HTTP/1.1 server over raw `std::net` (the build is
//!   offline; no hyper) exposing the versioned `/v1` surface: `predict`,
//!   `models` (list/get/hot-reload/remove), `dse`, `healthz`, `metrics`,
//!   plus deprecated legacy aliases. Every non-2xx response is the
//!   [`error`] envelope `{"code","message","trace"}`.
//! * [`error`] — the stable [`error::ApiCode`] taxonomy mapping 1:1 onto
//!   [`qor_core::QorError`] plus the serving-layer codes.
//! * [`http`] / [`json`] — the minimal substrates the server stands on:
//!   bounded request parsing and a strict JSON parser for request bodies
//!   (`obs::Json` is write-only).
//!
//! The `qor-serve` binary wires these together; `qor-serve --self-test`
//! runs an in-process end-to-end smoke test (batched predictions through
//! the queue, both flush paths, a hot-reload cycle, clean shutdown) used
//! by CI.

pub mod batcher;
pub mod checkpoint;
pub mod error;
pub mod fleet_wire;
pub mod http;
pub mod json;
pub mod registry;
pub mod server;

pub use batcher::{BatchOptions, Batcher, BatcherStats, ItemOutcome, PredictItem};
pub use checkpoint::{
    load_bank_into, load_model, load_model_file, save_bank, save_model, save_model_file,
    FORMAT_VERSION, MAGIC,
};
pub use error::{ApiCode, ApiError};
pub use fleet_wire::HttpTransport;
pub use registry::{ModelEntry, ModelRegistry, DEFAULT_MODEL};
pub use server::{DispatchMode, Server, ServerConfig, ServerHandle};

// the server shares sessions and the registry across connection threads
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<qor_core::Session>();
    assert_send_sync::<registry::ModelRegistry>();
    assert_send_sync::<batcher::Batcher>();
};
