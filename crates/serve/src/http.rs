//! A minimal HTTP/1.1 layer over `std::net` (the environment is offline,
//! so hyper/axum are unavailable — and the server needs only three routes).
//!
//! Scope: `Content-Length` bodies, one request per connection
//! (`Connection: close` is always sent), bounded header and body sizes so
//! malformed peers cannot exhaust memory. No TLS, chunked encoding, or
//! keep-alive — this is an internal inference endpoint, not an edge proxy.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Maximum accepted size of the request line plus headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Maximum accepted request-body size (batched predictions with inline
/// kernel sources fit comfortably).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Per-connection read/write timeout.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path only; queries are not split off).
    pub path: String,
    /// Headers in arrival order, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed — mapped to a 4xx by the server.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The peer closed before sending a full request head.
    Closed,
    /// Malformed request line or headers.
    Malformed(&'static str),
    /// Head or body exceeded the configured bounds.
    TooLarge(&'static str),
    /// Socket failure or timeout.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Closed => write!(f, "connection closed"),
            ParseError::Malformed(what) => write!(f, "malformed request: {what}"),
            ParseError::TooLarge(what) => write!(f, "request too large: {what}"),
            ParseError::Io(kind) => write!(f, "io error: {kind:?}"),
        }
    }
}

/// Reads and parses one request from a connection.
///
/// # Errors
///
/// [`ParseError`] describing the violation; [`ParseError::Closed`] for a
/// clean EOF before any byte.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ParseError> {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(stream);

    let mut line = String::new();
    read_line_bounded(&mut reader, &mut line, MAX_HEAD_BYTES)?;
    if line.is_empty() {
        return Err(ParseError::Closed);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(ParseError::Malformed("empty request line"))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or(ParseError::Malformed("missing request target"))?
        .to_string();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed("not HTTP/1.x"));
    }

    let mut content_length = 0usize;
    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        read_line_bounded(&mut reader, &mut header, MAX_HEAD_BYTES)?;
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ParseError::TooLarge("headers"));
        }
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| ParseError::Malformed("bad Content-Length"))?;
            }
            headers.push((name, value));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge("body"));
    }

    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| ParseError::Io(e.kind()))?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Reads one CRLF/LF-terminated line, stripped, bounded by `max` bytes.
fn read_line_bounded(
    reader: &mut BufReader<&mut TcpStream>,
    out: &mut String,
    max: usize,
) -> Result<(), ParseError> {
    let mut raw = Vec::new();
    let mut limited = reader.by_ref().take(max as u64 + 1);
    limited
        .read_until(b'\n', &mut raw)
        .map_err(|e| ParseError::Io(e.kind()))?;
    if raw.len() > max {
        return Err(ParseError::TooLarge("line"));
    }
    while matches!(raw.last(), Some(b'\n' | b'\r')) {
        raw.pop();
    }
    *out = String::from_utf8(raw).map_err(|_| ParseError::Malformed("non-UTF-8 header"))?;
    Ok(())
}

/// Writes a complete response and flushes.
///
/// # Errors
///
/// Propagates socket failures.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_with(stream, status, reason, content_type, &[], body)
}

/// As [`write_response`], with extra response headers (e.g. the
/// `x-qor-trace` echo). Header names/values must already be valid HTTP
/// tokens — the caller controls both.
///
/// # Errors
///
/// Propagates socket failures.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A one-shot std-only HTTP client: sends one request, returns
/// `(status, body)`.
///
/// This exists because the CI environment has no `curl`; the server smoke
/// tests and `qor-serve --self-test` drive the server through it.
///
/// # Errors
///
/// Propagates connection failures; a malformed response surfaces as
/// [`std::io::ErrorKind::InvalidData`].
pub fn client_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let (status, _, body) = client_request_with(addr, method, path, body, &[])?;
    Ok((status, body))
}

/// Full client response: status code, headers (names lowercased), body.
pub type ClientResponse = (u16, Vec<(String, String)>, String);

/// As [`client_request`], with extra request headers; also returns the
/// response headers (names lowercased) so tests can assert on the
/// `x-qor-trace` echo.
///
/// # Errors
///
/// As [`client_request`].
pub fn client_request_with(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<ClientResponse> {
    client_request_timeout(addr, method, path, body, extra_headers, IO_TIMEOUT)
}

/// As [`client_request_with`], with an explicit connect/read/write
/// timeout — the fleet dispatcher uses a per-request deadline so a hung
/// worker costs one bounded attempt, not the server default.
///
/// # Errors
///
/// As [`client_request`]; a timeout surfaces as the socket's
/// `WouldBlock`/`TimedOut` error kind.
pub fn client_request_timeout(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    extra_headers: &[(&str, &str)],
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let body = body.unwrap_or("");
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let bad = || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP response");
    let (head, rest) = text.split_once("\r\n\r\n").ok_or_else(bad)?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(bad)?;
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok((status, headers, rest.to_string()))
}
