//! The serving core: a typed route table over a versioned `/v1` HTTP
//! surface, dispatching predictions through the cross-request batcher and
//! the hot-reloadable model registry.
//!
//! # Endpoints
//!
//! | route                | method | body                                           |
//! |----------------------|--------|------------------------------------------------|
//! | `/v1/healthz`        | GET    | — → `{"status":"ok", ...}`                     |
//! | `/v1/metrics`        | GET    | — → Prometheus text exposition                 |
//! | `/v1/predict`        | POST   | one prediction, or `{"requests":[…]}`          |
//! | `/v1/models`         | GET    | — → registered model versions                  |
//! | `/v1/models/<name>`  | GET    | — → one model version                          |
//! | `/v1/models/<name>`  | PUT    | `{"checkpoint": "path.qorckpt"}` → hot-reload  |
//! | `/v1/models/<name>`  | DELETE | unregister (refused for the last model)        |
//! | `/v1/dse`            | POST   | submit a search job → `{"id":"job-1"}`         |
//! | `/v1/dse/<id>`       | GET    | — → job progress + incumbent Pareto front      |
//! | `/v1/dse/<id>`       | DELETE | cancel and forget the job                      |
//! | `/v1/fleet/workers`  | POST   | `{"addr":"host:port"}` → register a worker     |
//! | `/v1/fleet/workers`  | GET    | — → worker roster + dispatch counters          |
//! | `/v1/fleet/workers/<addr>` | DELETE | deregister a worker                      |
//! | `/v1/fleet/eval`     | POST   | one fleet work unit (worker side)              |
//! | `/debug/requests`    | GET    | — → flight-recorder dump (unversioned)         |
//! | `/debug/vars`        | GET    | — → build info, config, counters (unversioned) |
//!
//! # Distributed search
//!
//! Any server doubles as a **fleet worker**: `POST /v1/fleet/eval` scores
//! one work unit of genomes through the default model, sequentially, so
//! the reply is independent of the worker's thread count. A server acting
//! as **coordinator** keeps a worker roster (`/v1/fleet/workers`); a
//! `POST /v1/dse` body with `"fleet": true` then shards every search
//! step's fresh candidates across the live workers via [`fleet::FleetEval`]
//! — with bounded retry, reassignment, and consecutive-failure eviction —
//! and merges scores in unit order, so the fleet job's ledger and front
//! are byte-identical to a single-process run at the same seed. With
//! [`ServerConfig::jobs_dir`] set, every step checkpoints a resumable
//! `.qorjob` (format v2 carries the fleet assignment). When no live
//! worker remains the job fails typed (`code":"fleet"`, HTTP 503) without
//! spending budget.
//!
//! The pre-versioning routes (`/healthz`, `/metrics`, `/predict`, `/dse`,
//! `/dse/<id>`) remain as **deprecated aliases**: they serve identical
//! responses but add `Deprecation: true` and a `Link: </v1/...>;
//! rel="successor-version"` header. New clients must use `/v1/*`.
//!
//! # Requests and batching
//!
//! A prediction names a bundled kernel (`{"kernel":"mvt"}`) or carries
//! inline source (`{"source":"...","top":"f"}`), plus an optional pragma
//! `"config"` and an optional `"model"` version name (default
//! `"default"`):
//!
//! ```json
//! {"kernel": "mvt", "model": "default",
//!  "config": {"loops":  [{"loop": [0,0], "pipeline": true, "unroll": 4}],
//!             "arrays": [{"array": "a", "dim": 1, "kind": "cyclic", "factor": 2}]}}
//! ```
//!
//! Under the default **batched** dispatch every decoded item — from any
//! connection — flows through the [`crate::batcher`] queue, which
//! coalesces concurrent items into micro-batches (flushing on `max_batch`
//! items or `max_wait` elapsed, whichever first), single-flights duplicate
//! designs, and fans unique work through the deterministic `par` executor.
//! Successful predictions carry the model version and batch that served
//! them:
//!
//! ```json
//! {"qor": {"latency": 412, "lut": 931, "ff": 604, "dsp": 3},
//!  "model": {"name": "default", "generation": 2},
//!  "batch": {"id": 17, "size": 8, "deduped": false},
//!  "cache": {"hits": 41, "misses": 7, ...}}
//! ```
//!
//! **Direct** dispatch ([`DispatchMode::Direct`]) bypasses the queue and
//! serves each request on its own connection thread (the pre-batching
//! behavior, kept as the benchmark baseline); responses then omit
//! `"batch"`.
//!
//! # Errors
//!
//! Every non-2xx response is the [`crate::error`] envelope
//! `{"code","message","trace"}`; in a batch response, failed items carry
//! the same envelope under `"error"` while the surrounding request stays
//! 200.
//!
//! # Tracing
//!
//! Every request runs under a trace context: the inbound `x-qor-trace`
//! header (16 hex digits) is honored when present, otherwise a
//! deterministic id is derived from the server instance and request
//! sequence. The id is echoed in the `x-qor-trace` response header and
//! stamped on all spans/log events/flight records the request produces —
//! including batcher workers, which adopt each item's originating trace
//! across the queue boundary.
//!
//! # Hot reload
//!
//! `PUT /v1/models/<name>` loads a checkpoint and atomically swaps the
//! name to a new generation (see [`crate::registry`]); in-flight requests
//! finish on the generation they resolved, new requests (and new DSE
//! jobs, via [`JobRunner::set_session`]) see the new one. Because batches
//! resolve their model once per flush group, a swap can never split a
//! batch across generations.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use fleet::{FleetOptions, FleetStats, Roster, Transport};
use obs::log::Level;
use obs::metrics::{HistogramDetail, LogHistogram};
use obs::{trace, Json};
use pragma::{ArrayPartition, LoopId, PartitionKind, PragmaConfig, Unroll};
use qor_core::{CacheStats, PredictReport, QorError, Session};
use search::{JobProgress, JobRunner, SearchOptions, StrategyKind};

use crate::batcher::{BatchOptions, Batcher, ItemOutcome, PredictItem};
use crate::error::{ApiCode, ApiError};
use crate::fleet_wire::{self, HttpTransport};
use crate::http::{self, ParseError, Request};
use crate::json;
use crate::registry::ModelRegistry;

/// Per-process server-instance sequence, mixed into derived trace ids so
/// two servers in one test process never collide.
static INSTANCE_SEQ: AtomicU64 = AtomicU64::new(0);

/// How `/v1/predict` items reach a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Serve each request inline on its connection thread (the
    /// pre-batching behavior; the benchmark baseline).
    Direct,
    /// Coalesce items from all connections through the batching queue.
    Batched(BatchOptions),
}

/// Server construction knobs beyond the listen address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Prediction dispatch (default: batched, tuned by `QOR_BATCH_MAX` /
    /// `QOR_BATCH_WAIT_US`).
    pub dispatch: DispatchMode,
    /// When set, every DSE job step (fleet or in-process) persists a
    /// resumable `.qorjob` snapshot under this directory.
    pub jobs_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            dispatch: DispatchMode::Batched(BatchOptions::from_env()),
            jobs_dir: None,
        }
    }
}

/// The coordinator's fleet machinery, shared across jobs: one worker
/// roster, one HTTP transport, and one cumulative stats block that
/// `/metrics` and `/debug/vars` render.
struct FleetHub {
    roster: Arc<Roster>,
    transport: Arc<dyn Transport>,
    stats: Arc<FleetStats>,
}

impl FleetHub {
    /// Evicts after `QOR_FLEET_EVICT_AFTER` consecutive failures
    /// (default 2); unit timeout honors `QOR_FLEET_TIMEOUT_MS`.
    fn from_env() -> FleetHub {
        let evict_after = std::env::var("QOR_FLEET_EVICT_AFTER")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(2);
        FleetHub {
            roster: Arc::new(Roster::new(evict_after)),
            transport: Arc::new(HttpTransport::from_env()),
            stats: Arc::new(FleetStats::default()),
        }
    }
}

/// Shared state behind the accept loop and all connection threads.
struct ServeState {
    registry: Arc<ModelRegistry>,
    runner: Arc<JobRunner>,
    /// `Some` iff dispatch is [`DispatchMode::Batched`]. Dropped (and the
    /// dispatcher joined) when the last state reference goes away.
    batcher: Option<Batcher>,
    dispatch: DispatchMode,
    fleet: FleetHub,
    shutdown: AtomicBool,
    requests: AtomicU64,
    predictions: AtomicU64,
    client_errors: AtomicU64,
    /// Instance number of this server within the process.
    instance: u64,
    started: Instant,
    /// Per-`(route, status-class)` request-latency histograms in µs.
    ///
    /// Instance-local on purpose: the `obs` registry is process-global,
    /// so a test process running several servers would cross-contaminate
    /// registry-backed latency metrics. `/metrics` renders these;
    /// `serve/http/*` obs mirrors exist for run reports and are skipped
    /// by the renderer.
    latency: Mutex<BTreeMap<(String, &'static str), LogHistogram>>,
    /// Per-route request counters (same instance-locality argument).
    route_hits: Mutex<BTreeMap<String, u64>>,
    status_2xx: AtomicU64,
    status_4xx: AtomicU64,
    status_5xx: AtomicU64,
}

/// A bound (not yet running) server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
}

/// Handle to a running server: address + clean shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    join: JoinHandle<()>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) and serves
    /// `session` as the `"default"` model with default dispatch
    /// (the single-model convenience constructor).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, session: Session) -> std::io::Result<Server> {
        Server::bind_with(
            addr,
            Arc::new(ModelRegistry::from_session(session)),
            ServerConfig::default(),
        )
    }

    /// Binds to `addr` over an explicit model registry and configuration.
    ///
    /// # Errors
    ///
    /// Bind failures; `InvalidInput` when the registry has no resolvable
    /// default model (the DSE runner needs one).
    pub fn bind_with(
        addr: &str,
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        // a serving process wants live `/metrics` histograms regardless of
        // QOR_TRACE/QOR_REPORT (metrics are bounded; the span arena is not)
        obs::metrics::enable_always();
        let listener = TcpListener::bind(addr)?;
        let default = registry
            .default_entry()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        let runner = match &config.jobs_dir {
            Some(dir) => JobRunner::with_jobs_dir(default.session().clone(), dir.clone()),
            None => JobRunner::new(default.session().clone()),
        };
        let batcher = match config.dispatch {
            DispatchMode::Batched(opts) => Some(Batcher::new(Arc::clone(&registry), opts)),
            DispatchMode::Direct => None,
        };
        Ok(Server {
            listener,
            state: Arc::new(ServeState {
                registry,
                runner,
                batcher,
                dispatch: config.dispatch,
                fleet: FleetHub::from_env(),
                shutdown: AtomicBool::new(false),
                requests: AtomicU64::new(0),
                predictions: AtomicU64::new(0),
                client_errors: AtomicU64::new(0),
                instance: INSTANCE_SEQ.fetch_add(1, Ordering::Relaxed),
                started: Instant::now(),
                latency: Mutex::new(BTreeMap::new()),
                route_hits: Mutex::new(BTreeMap::new()),
                status_2xx: AtomicU64::new(0),
                status_4xx: AtomicU64::new(0),
                status_5xx: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop on the calling thread until
    /// [`ServerHandle::shutdown`] (or [`Server::spawn`]'s handle) flags it.
    pub fn run(self) {
        let addr = self.listener.local_addr().ok();
        obs::tracef!(1, "qor-serve listening on {addr:?}");
        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    let state = Arc::clone(&self.state);
                    std::thread::spawn(move || handle_connection(stream, &state));
                }
                Err(e) => obs::tracef!(1, "accept failed: {e}"),
            }
        }
    }

    /// Moves the accept loop onto a background thread and returns a
    /// shutdown handle.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let state = Arc::clone(&self.state);
        let join = std::thread::spawn(move || self.run());
        Ok(ServerHandle { addr, state, join })
    }
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Cumulative statistics of the shared prepared-design/kernel cache.
    pub fn stats(&self) -> CacheStats {
        self.state.registry.cache().stats()
    }

    /// The server's model registry (tests drive hot-reloads through it).
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.state.registry)
    }

    /// Flags shutdown, wakes the accept loop with a self-connection, and
    /// joins the server thread.
    pub fn shutdown(self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // the accept loop only observes the flag on its next connection
        let _ = TcpStream::connect(self.addr);
        let _ = self.join.join();
    }
}

// ------------------------------------------------------------ route table

/// What a matched route does (the typed replacement for stringly path
/// dispatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Healthz,
    Metrics,
    Predict,
    ModelList,
    ModelGet,
    ModelPut,
    ModelDelete,
    DseSubmit,
    DseGet,
    DseDelete,
    FleetRegister,
    FleetList,
    FleetDeregister,
    FleetEvalUnit,
    DebugRequests,
    DebugVars,
}

/// One row of the route table.
struct RouteDef {
    method: &'static str,
    /// `/`-separated pattern; `:`-prefixed segments capture one path
    /// segment as a parameter.
    pattern: &'static str,
    endpoint: Endpoint,
    /// Low-cardinality metrics label (`/v1/dse/<id>` collapses to one).
    label: &'static str,
    /// Legacy alias: responses add `Deprecation: true` and a `Link` to
    /// `successor`.
    deprecated: bool,
    successor: &'static str,
}

const fn v1(
    method: &'static str,
    pattern: &'static str,
    endpoint: Endpoint,
    label: &'static str,
) -> RouteDef {
    RouteDef {
        method,
        pattern,
        endpoint,
        label,
        deprecated: false,
        successor: "",
    }
}

const fn legacy(
    method: &'static str,
    pattern: &'static str,
    endpoint: Endpoint,
    label: &'static str,
    successor: &'static str,
) -> RouteDef {
    RouteDef {
        method,
        pattern,
        endpoint,
        label,
        deprecated: true,
        successor,
    }
}

/// The route table. Matching walks rows in order; the first
/// method+pattern hit wins.
const ROUTES: &[RouteDef] = &[
    v1("GET", "/v1/healthz", Endpoint::Healthz, "healthz"),
    v1("GET", "/v1/metrics", Endpoint::Metrics, "metrics"),
    v1("POST", "/v1/predict", Endpoint::Predict, "predict"),
    v1("GET", "/v1/models", Endpoint::ModelList, "models"),
    v1("GET", "/v1/models/:name", Endpoint::ModelGet, "model"),
    v1("PUT", "/v1/models/:name", Endpoint::ModelPut, "model"),
    v1("DELETE", "/v1/models/:name", Endpoint::ModelDelete, "model"),
    v1("POST", "/v1/dse", Endpoint::DseSubmit, "dse_submit"),
    v1("GET", "/v1/dse/:id", Endpoint::DseGet, "dse_job"),
    v1("DELETE", "/v1/dse/:id", Endpoint::DseDelete, "dse_job"),
    v1(
        "POST",
        "/v1/fleet/workers",
        Endpoint::FleetRegister,
        "fleet_workers",
    ),
    v1(
        "GET",
        "/v1/fleet/workers",
        Endpoint::FleetList,
        "fleet_workers",
    ),
    v1(
        "DELETE",
        "/v1/fleet/workers/:addr",
        Endpoint::FleetDeregister,
        "fleet_worker",
    ),
    v1(
        "POST",
        "/v1/fleet/eval",
        Endpoint::FleetEvalUnit,
        "fleet_eval",
    ),
    // the debug surface is operational, not part of the versioned API
    v1(
        "GET",
        "/debug/requests",
        Endpoint::DebugRequests,
        "debug_requests",
    ),
    v1("GET", "/debug/vars", Endpoint::DebugVars, "debug_vars"),
    // deprecated pre-versioning aliases
    legacy(
        "GET",
        "/healthz",
        Endpoint::Healthz,
        "healthz",
        "/v1/healthz",
    ),
    legacy(
        "GET",
        "/metrics",
        Endpoint::Metrics,
        "metrics",
        "/v1/metrics",
    ),
    legacy(
        "POST",
        "/predict",
        Endpoint::Predict,
        "predict",
        "/v1/predict",
    ),
    legacy("POST", "/dse", Endpoint::DseSubmit, "dse_submit", "/v1/dse"),
    legacy(
        "GET",
        "/dse/:id",
        Endpoint::DseGet,
        "dse_job",
        "/v1/dse/:id",
    ),
    legacy(
        "DELETE",
        "/dse/:id",
        Endpoint::DseDelete,
        "dse_job",
        "/v1/dse/:id",
    ),
];

/// Route-table lookup result.
enum RouteMatch {
    /// Method+pattern hit; `params` holds captured segments in pattern
    /// order.
    Matched {
        def: &'static RouteDef,
        params: Vec<String>,
    },
    /// Some route matches the path but none with this method.
    MethodNotAllowed,
    NotFound,
}

/// Matches `pattern` against `path`, capturing `:param` segments.
fn match_pattern(pattern: &str, path: &str) -> Option<Vec<String>> {
    let mut params = Vec::new();
    let mut pat = pattern.split('/');
    let mut got = path.split('/');
    loop {
        match (pat.next(), got.next()) {
            (None, None) => return Some(params),
            (Some(p), Some(g)) => {
                if let Some(name) = p.strip_prefix(':') {
                    debug_assert!(!name.is_empty());
                    if g.is_empty() {
                        return None; // `/dse/` is not `/dse/:id`
                    }
                    params.push(g.to_string());
                } else if p != g {
                    return None;
                }
            }
            _ => return None,
        }
    }
}

/// Resolves `(method, path)` against [`ROUTES`].
fn match_route(method: &str, path: &str) -> RouteMatch {
    let mut path_known = false;
    for def in ROUTES {
        if let Some(params) = match_pattern(def.pattern, path) {
            if def.method == method {
                return RouteMatch::Matched { def, params };
            }
            path_known = true;
        }
    }
    if path_known {
        RouteMatch::MethodNotAllowed
    } else {
        RouteMatch::NotFound
    }
}

/// One rendered response (headers beyond the trace echo are added by the
/// connection handler from the matched route).
struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn ok_json(body: String) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body,
        }
    }

    fn from_error(err: &ApiError) -> Response {
        Response {
            status: err.status(),
            content_type: "application/json",
            body: err.body(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }
}

/// Per-request telemetry the routes fill in while handling: per-stage
/// timings, cache attribution, and flight-record labels.
#[derive(Default)]
struct ReqTelemetry {
    stages: Vec<(String, u64)>,
    attrs: Vec<(String, String)>,
    cache_hits: u64,
    cache_misses: u64,
    incr: qor_core::IncrCounts,
}

impl ReqTelemetry {
    fn absorb(&mut self, report: &PredictReport) {
        self.cache_hits += report.cache_hits();
        self.cache_misses += report.cache_misses();
        self.incr.absorb(&report.incr);
    }

    fn stage(&mut self, name: &str, us: u64) {
        self.stages.push((name.to_string(), us));
    }

    fn attr(&mut self, key: &str, value: String) {
        self.attrs.push((key.to_string(), value));
    }
}

fn handle_connection(mut stream: TcpStream, state: &ServeState) {
    let request = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(ParseError::Closed) => return, // shutdown poke or dropped peer
        Err(e @ (ParseError::Malformed(_) | ParseError::TooLarge(_))) => {
            state.client_errors.fetch_add(1, Ordering::Relaxed);
            state.status_4xx.fetch_add(1, Ordering::Relaxed);
            obs::metrics::counter_add("serve/http/4xx", 1);
            let code = if matches!(e, ParseError::TooLarge(_)) {
                ApiCode::PayloadTooLarge
            } else {
                ApiCode::BadRequest
            };
            let err = ApiError::new(code, e.to_string());
            let resp = Response::from_error(&err);
            let _ = http::write_response(
                &mut stream,
                resp.status,
                resp.reason(),
                resp.content_type,
                resp.body.as_bytes(),
            );
            return;
        }
        Err(ParseError::Io(_)) => return,
    };
    let seq = state.requests.fetch_add(1, Ordering::Relaxed);
    obs::metrics::counter_add("serve/http/requests", 1);

    // trace context: honor an inbound x-qor-trace header, else derive a
    // deterministic id from (server instance, request sequence)
    let trace_id = request
        .header("x-qor-trace")
        .and_then(obs::TraceId::parse_hex)
        .unwrap_or_else(|| {
            trace::derive(&[b"http", &state.instance.to_be_bytes(), &seq.to_be_bytes()])
        });
    let _trace_guard = trace::adopt(trace_id);
    let trace_hex = trace_id.as_hex();

    let matched = match_route(&request.method, &request.path);
    let route_label = match &matched {
        RouteMatch::Matched { def, .. } => def.label,
        _ => "other",
    };
    let started_us = obs::log::now_us();
    let t0 = Instant::now();
    let mut tel = ReqTelemetry::default();
    let (response, deprecation) = match &matched {
        RouteMatch::Matched { def, params } => {
            let response = dispatch(state, def.endpoint, params, &request, &mut tel);
            let dep = def.deprecated.then_some(def.successor);
            (response, dep)
        }
        RouteMatch::MethodNotAllowed => (
            Response::from_error(&ApiError::new(
                ApiCode::MethodNotAllowed,
                format!("{} is not allowed on {}", request.method, request.path),
            )),
            None,
        ),
        RouteMatch::NotFound => (
            Response::from_error(&ApiError::new(
                ApiCode::NotFound,
                format!("no route matches {}", request.path),
            )),
            None,
        ),
    };
    let dur_us = t0.elapsed().as_micros() as u64;

    observe_request(state, route_label, response.status, dur_us);
    if response.status >= 400 {
        state.client_errors.fetch_add(1, Ordering::Relaxed);
    }

    let mut flight =
        obs::flight::FlightRecord::new("http", &format!("{} {}", request.method, request.path));
    flight.outcome = response.status.to_string();
    flight.start_us = started_us;
    flight.total_us = dur_us;
    flight.bytes_in = request.body.len() as u64;
    flight.bytes_out = response.body.len() as u64;
    flight.cache_hits = tel.cache_hits;
    flight.cache_misses = tel.cache_misses;
    flight.stages = tel.stages;
    flight.attrs = tel.attrs;
    if tel.incr.hits + tel.incr.misses + tel.incr.recomputes > 0 {
        flight
            .attrs
            .push(("incr_hits".to_string(), tel.incr.hits.to_string()));
        flight
            .attrs
            .push(("incr_misses".to_string(), tel.incr.misses.to_string()));
        flight.attrs.push((
            "incr_recomputes".to_string(),
            tel.incr.recomputes.to_string(),
        ));
    }
    obs::flight::record(flight);

    if obs::log::enabled(Level::Info) {
        obs::log::event(
            Level::Info,
            "http.request",
            &[
                ("route", Json::str(route_label)),
                ("method", Json::str(&request.method)),
                ("path", Json::str(&request.path)),
                ("status", Json::UInt(u64::from(response.status))),
                ("dur_us", Json::UInt(dur_us)),
                ("bytes_out", Json::UInt(response.body.len() as u64)),
            ],
        );
    }

    let mut headers: Vec<(&str, &str)> = vec![("x-qor-trace", &trace_hex)];
    let link;
    if let Some(successor) = deprecation {
        headers.push(("Deprecation", "true"));
        link = format!("<{successor}>; rel=\"successor-version\"");
        headers.push(("Link", &link));
    }
    let _ = http::write_response_with(
        &mut stream,
        response.status,
        response.reason(),
        response.content_type,
        &headers,
        response.body.as_bytes(),
    );
}

/// Status class token for counters and latency-histogram keys.
fn status_class(status: u16) -> &'static str {
    match status {
        200..=299 => "2xx",
        400..=499 => "4xx",
        _ => "5xx",
    }
}

/// Records one finished request into the instance-local latency/status
/// stores and their process-global obs mirrors.
fn observe_request(state: &ServeState, route: &'static str, status: u16, dur_us: u64) {
    let class = status_class(status);
    match class {
        "2xx" => state.status_2xx.fetch_add(1, Ordering::Relaxed),
        "4xx" => state.status_4xx.fetch_add(1, Ordering::Relaxed),
        _ => state.status_5xx.fetch_add(1, Ordering::Relaxed),
    };
    obs::metrics::counter_add(&format!("serve/http/{class}"), 1);
    obs::metrics::counter_add(&format!("serve/http/route/{route}"), 1);
    obs::metrics::histogram_record(&format!("serve/http/latency_us/{route}"), dur_us as f64);
    state
        .latency
        .lock()
        .unwrap()
        .entry((route.to_string(), class))
        .or_default()
        .record(dur_us as f64);
    *state
        .route_hits
        .lock()
        .unwrap()
        .entry(route.to_string())
        .or_insert(0) += 1;
}

/// Executes a matched endpoint.
fn dispatch(
    state: &ServeState,
    endpoint: Endpoint,
    params: &[String],
    request: &Request,
    tel: &mut ReqTelemetry,
) -> Response {
    let result = match endpoint {
        Endpoint::Healthz => Ok(Response::ok_json(healthz(state))),
        Endpoint::Metrics => Ok(Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: render_metrics(state),
        }),
        Endpoint::Predict => predict_route(state, &request.body, tel).map(Response::ok_json),
        Endpoint::ModelList => Ok(Response::ok_json(model_list(state))),
        Endpoint::ModelGet => state
            .registry
            .get(&params[0])
            .map(|entry| Response::ok_json(entry.to_json().to_string())),
        Endpoint::ModelPut => model_put(state, &params[0], &request.body).map(Response::ok_json),
        Endpoint::ModelDelete => model_delete(state, &params[0]).map(Response::ok_json),
        Endpoint::DseSubmit => dse_submit(state, &request.body).map(Response::ok_json),
        Endpoint::DseGet => dse_get(state, &params[0]).map(Response::ok_json),
        Endpoint::DseDelete => dse_delete(state, &params[0]).map(Response::ok_json),
        Endpoint::FleetRegister => fleet_register(state, &request.body).map(Response::ok_json),
        Endpoint::FleetList => Ok(Response::ok_json(fleet_list(state))),
        Endpoint::FleetDeregister => fleet_deregister(state, &params[0]).map(Response::ok_json),
        Endpoint::FleetEvalUnit => fleet_eval_unit(state, &request.body).map(Response::ok_json),
        Endpoint::DebugRequests => Ok(Response::ok_json(obs::flight::to_json().to_string())),
        Endpoint::DebugVars => Ok(Response::ok_json(debug_vars(state))),
    };
    result.unwrap_or_else(|e| Response::from_error(&e))
}

/// `GET /debug/vars`: build info, thread/cache/flight configuration and
/// coarse counters, for humans and smoke tests.
fn debug_vars(state: &ServeState) -> String {
    let stats = state.registry.cache().stats();
    let dse = state.runner.stats();
    let dispatch = match state.dispatch {
        DispatchMode::Direct => "direct",
        DispatchMode::Batched(_) => "batched",
    };
    let batcher = match (&state.batcher, state.dispatch) {
        (Some(b), DispatchMode::Batched(opts)) => {
            let s = b.stats();
            Json::obj(vec![
                ("max_batch", Json::UInt(opts.max_batch as u64)),
                ("max_wait_us", Json::UInt(opts.max_wait.as_micros() as u64)),
                ("batches", Json::UInt(s.batches)),
                ("flush_full", Json::UInt(s.flush_full)),
                ("flush_timeout", Json::UInt(s.flush_timeout)),
                ("items", Json::UInt(s.items)),
                ("deduped", Json::UInt(s.deduped)),
                ("max_batch_seen", Json::UInt(s.max_batch_seen)),
            ])
        }
        _ => Json::Null,
    };
    Json::obj(vec![
        ("version", Json::str(env!("CARGO_PKG_VERSION"))),
        ("uptime_s", Json::UInt(state.started.elapsed().as_secs())),
        ("instance", Json::UInt(state.instance)),
        ("threads", Json::UInt(par::threads() as u64)),
        ("log_level", Json::str(obs::log::level_name())),
        ("dispatch", Json::str(dispatch)),
        ("batcher", batcher),
        (
            "requests",
            Json::UInt(state.requests.load(Ordering::Relaxed)),
        ),
        (
            "predictions",
            Json::UInt(state.predictions.load(Ordering::Relaxed)),
        ),
        (
            "status",
            Json::obj(vec![
                ("2xx", Json::UInt(state.status_2xx.load(Ordering::Relaxed))),
                ("4xx", Json::UInt(state.status_4xx.load(Ordering::Relaxed))),
                ("5xx", Json::UInt(state.status_5xx.load(Ordering::Relaxed))),
            ]),
        ),
        ("cache", cache_json(&stats)),
        (
            "models",
            Json::Arr(
                state
                    .registry
                    .list()
                    .iter()
                    .map(|e| Json::Str(e.tag()))
                    .collect(),
            ),
        ),
        (
            "dse",
            Json::obj(vec![
                ("submitted", Json::UInt(dse.submitted)),
                ("completed", Json::UInt(dse.completed)),
                ("failed", Json::UInt(dse.failed)),
                ("cancelled", Json::UInt(dse.cancelled)),
                ("evaluations", Json::UInt(dse.evaluations)),
            ]),
        ),
        ("fleet", fleet_json(state)),
        (
            "flight",
            Json::obj(vec![
                ("capacity", Json::UInt(obs::flight::capacity() as u64)),
                ("recorded", Json::UInt(obs::flight::len() as u64)),
            ]),
        ),
    ])
    .to_string()
}

fn healthz(state: &ServeState) -> String {
    Json::obj(vec![
        ("status", Json::str("ok")),
        (
            "requests",
            Json::UInt(state.requests.load(Ordering::Relaxed)),
        ),
        (
            "predictions",
            Json::UInt(state.predictions.load(Ordering::Relaxed)),
        ),
        ("models", Json::UInt(state.registry.len() as u64)),
        ("cache", cache_json(&state.registry.cache().stats())),
    ])
    .to_string()
}

// ----------------------------------------------------------------- models

fn model_list(state: &ServeState) -> String {
    Json::obj(vec![
        (
            "models",
            Json::Arr(state.registry.list().iter().map(|e| e.to_json()).collect()),
        ),
        ("cache", cache_json(&state.registry.cache().stats())),
    ])
    .to_string()
}

/// `PUT /v1/models/<name>` with `{"checkpoint": "path.qorckpt"}`:
/// hot-reloads the named version from disk.
fn model_put(state: &ServeState, name: &str, body: &[u8]) -> Result<String, ApiError> {
    let doc = parse_body(body)?;
    let path = json::field(&doc, "checkpoint")
        .and_then(json::as_str)
        .ok_or_else(|| ApiError::bad_request("\"checkpoint\" must be a file path"))?;
    let entry = state.registry.load_file(name, path)?;
    sync_runner_session(state);
    Ok(Json::obj(vec![("model", entry.to_json())]).to_string())
}

/// `DELETE /v1/models/<name>`: unregisters a version (refused for the
/// last one).
fn model_delete(state: &ServeState, name: &str) -> Result<String, ApiError> {
    let entry = state.registry.remove(name)?;
    sync_runner_session(state);
    Ok(Json::obj(vec![
        ("removed", Json::Bool(true)),
        ("model", entry.to_json()),
    ])
    .to_string())
}

/// Points future DSE jobs at the current default model (in-flight jobs
/// keep the session they captured — see [`JobRunner::set_session`]).
fn sync_runner_session(state: &ServeState) {
    if let Ok(default) = state.registry.default_entry() {
        state.runner.set_session(default.session().clone());
    }
}

// ------------------------------------------------------------- predictions

fn parse_body(body: &[u8]) -> Result<Json, ApiError> {
    let text = std::str::from_utf8(body).map_err(|_| ApiError::bad_request("body is not UTF-8"))?;
    json::parse(text).map_err(|e| ApiError::bad_request(e.to_string()))
}

fn predict_route(
    state: &ServeState,
    body: &[u8],
    tel: &mut ReqTelemetry,
) -> Result<String, ApiError> {
    let t_decode = Instant::now();
    let doc = parse_body(body)?;
    // a top-level "model" is the default for every item in the request
    let default_model = match json::field(&doc, "model") {
        Some(v) => Some(
            json::as_str(v)
                .map(str::to_string)
                .ok_or_else(|| ApiError::bad_request("\"model\" must be a string"))?,
        ),
        None => None,
    };
    let (items, single) = if let Some(batch) = json::field(&doc, "requests") {
        let entries = json::as_array(batch)
            .ok_or_else(|| ApiError::bad_request("\"requests\" must be an array"))?;
        let items = entries
            .iter()
            .enumerate()
            .map(|(i, entry)| {
                decode_request(entry, default_model.as_deref())
                    .map_err(|e| ApiError::new(e.code, format!("request {i}: {}", e.message)))
            })
            .collect::<Result<Vec<_>, _>>()?;
        (items, false)
    } else {
        (vec![decode_request(&doc, default_model.as_deref())?], true)
    };
    tel.stage("decode", t_decode.elapsed().as_micros() as u64);
    state
        .predictions
        .fetch_add(items.len() as u64, Ordering::Relaxed);

    let outcomes = match (&state.batcher, state.dispatch) {
        (Some(batcher), DispatchMode::Batched(_)) => {
            let t_batch = Instant::now();
            let req_trace = trace::current_raw();
            let items: Vec<PredictItem> = items
                .into_iter()
                .map(|mut item| {
                    item.trace = req_trace;
                    item
                })
                .collect();
            let outcomes = batcher.submit_wait(items);
            tel.stage("batch", t_batch.elapsed().as_micros() as u64);
            outcomes
        }
        _ => predict_direct(state, items, tel, single)?,
    };

    for outcome in &outcomes {
        if let Ok(report) = &outcome.result {
            tel.absorb(report);
        }
    }
    if single {
        let outcome = outcomes.into_iter().next().expect("one item in, one out");
        tel.attr("model", format!("{}@{}", outcome.model, outcome.generation));
        if outcome.batch_id != 0 {
            tel.attr("batch", outcome.batch_id.to_string());
        }
        let report = outcome.result.clone()?; // a failed single predict is the request's error
        if matches!(state.dispatch, DispatchMode::Direct) {
            tel.stage("lower", report.lower_us);
            tel.stage("prepare", report.prepare_us);
            tel.stage("infer", report.infer_us);
        }
        let mut fields = vec![
            ("qor", qor_json(&report.qor)),
            ("model", outcome_model_json(&outcome)),
        ];
        if let Some(batch) = outcome_batch_json(&outcome) {
            fields.push(("batch", batch));
        }
        if let Some(incr) = incr_json(&report.incr) {
            fields.push(("incr", incr));
        }
        fields.push(("cache", cache_json(&state.registry.cache().stats())));
        Ok(Json::obj(fields).to_string())
    } else {
        let results: Vec<Json> = outcomes
            .iter()
            .map(|outcome| match &outcome.result {
                Ok(report) => {
                    let mut fields = vec![
                        ("qor", qor_json(&report.qor)),
                        ("model", outcome_model_json(outcome)),
                    ];
                    if let Some(batch) = outcome_batch_json(outcome) {
                        fields.push(("batch", batch));
                    }
                    if let Some(incr) = incr_json(&report.incr) {
                        fields.push(("incr", incr));
                    }
                    Json::obj(fields)
                }
                Err(e) => Json::obj(vec![("error", e.envelope())]),
            })
            .collect();
        Ok(Json::obj(vec![
            ("results", Json::Arr(results)),
            ("cache", cache_json(&state.registry.cache().stats())),
        ])
        .to_string())
    }
}

/// Direct dispatch: resolve each item's model and serve inline on this
/// connection thread, fanning a multi-item request through `par::map`
/// (the pre-batching behavior).
fn predict_direct(
    state: &ServeState,
    items: Vec<PredictItem>,
    tel: &mut ReqTelemetry,
    single: bool,
) -> Result<Vec<ItemOutcome>, ApiError> {
    let run_one = |item: &PredictItem| -> ItemOutcome {
        let entry = match &item.model {
            Some(name) => state.registry.get(name),
            None => state.registry.default_entry(),
        };
        match entry {
            Ok(entry) => {
                entry.count_prediction();
                let session = entry.session();
                let result = if let Some(kernel) = &item.kernel {
                    session.predict_kernel_report(kernel, &item.cfg)
                } else {
                    let (top, source) = item.source.as_ref().expect("decode guarantees one");
                    session.predict_source_report(top, source, &item.cfg)
                };
                ItemOutcome {
                    result: result.map_err(ApiError::from),
                    model: entry.name.clone(),
                    generation: entry.generation,
                    batch_id: 0,
                    batch_size: 0,
                    deduped: false,
                }
            }
            Err(e) => ItemOutcome {
                result: Err(e),
                model: item.model.clone().unwrap_or_default(),
                generation: 0,
                batch_id: 0,
                batch_size: 0,
                deduped: false,
            },
        }
    };
    if single {
        Ok(vec![run_one(&items[0])])
    } else {
        // fan the request's own batch through the deterministic executor:
        // results come back in request order for any worker count; workers
        // adopt the request's trace so cache events stay attributable
        let t_predict = Instant::now();
        let req_trace = trace::current_raw();
        let outcomes = par::map("serve/predict", &items, |_, item| {
            let _g = trace::adopt_raw(req_trace);
            run_one(item)
        });
        tel.stage("predict", t_predict.elapsed().as_micros() as u64);
        Ok(outcomes)
    }
}

fn outcome_model_json(outcome: &ItemOutcome) -> Json {
    Json::obj(vec![
        ("name", Json::str(&outcome.model)),
        ("generation", Json::UInt(outcome.generation)),
    ])
}

/// The `"batch"` response field; `None` under direct dispatch (batch id 0
/// means "no batch served this").
fn outcome_batch_json(outcome: &ItemOutcome) -> Option<Json> {
    (outcome.batch_id != 0).then(|| {
        Json::obj(vec![
            ("id", Json::UInt(outcome.batch_id)),
            ("size", Json::UInt(outcome.batch_size as u64)),
            ("deduped", Json::Bool(outcome.deduped)),
        ])
    })
}

/// Decodes one prediction item; `default_model` is the request-level
/// `"model"` fallback.
fn decode_request(doc: &Json, default_model: Option<&str>) -> Result<PredictItem, ApiError> {
    let bad = |m: &str| ApiError::bad_request(m);
    let model = match json::field(doc, "model") {
        Some(v) => Some(
            json::as_str(v)
                .map(str::to_string)
                .ok_or_else(|| bad("\"model\" must be a string"))?,
        ),
        None => default_model.map(str::to_string),
    };
    let kernel = json::field(doc, "kernel")
        .map(|v| {
            json::as_str(v)
                .map(str::to_string)
                .ok_or_else(|| bad("\"kernel\" must be a string"))
        })
        .transpose()?;
    let source = match json::field(doc, "source") {
        Some(v) => {
            let source = json::as_str(v).ok_or_else(|| bad("\"source\" must be a string"))?;
            let top = json::field(doc, "top")
                .and_then(json::as_str)
                .ok_or_else(|| bad("inline \"source\" requires a \"top\" function name"))?;
            Some((top.to_string(), source.to_string()))
        }
        None => None,
    };
    if kernel.is_some() == source.is_some() {
        return Err(bad("provide exactly one of \"kernel\" or \"source\""));
    }
    let cfg = match json::field(doc, "config") {
        Some(c) => decode_config(c).map_err(ApiError::bad_request)?,
        None => PragmaConfig::default(),
    };
    Ok(PredictItem {
        model,
        kernel,
        source,
        cfg,
        trace: 0,
    })
}

fn decode_config(doc: &Json) -> Result<PragmaConfig, String> {
    let mut cfg = PragmaConfig::default();
    if let Some(loops) = json::field(doc, "loops") {
        for (i, entry) in json::as_array(loops)
            .ok_or("\"loops\" must be an array")?
            .iter()
            .enumerate()
        {
            let at = |msg: &str| format!("loops[{i}]: {msg}");
            let path = json::field(entry, "loop").ok_or_else(|| at("missing \"loop\" path"))?;
            let segs: Vec<u16> = json::as_array(path)
                .ok_or_else(|| at("\"loop\" must be an array of indices"))?
                .iter()
                .map(|s| {
                    json::as_u64(s)
                        .and_then(|v| u16::try_from(v).ok())
                        .ok_or_else(|| at("loop index out of range"))
                })
                .collect::<Result<_, _>>()?;
            let id = LoopId::from_path(&segs);
            if let Some(v) = json::field(entry, "pipeline") {
                cfg.set_pipeline(
                    id.clone(),
                    json::as_bool(v).ok_or_else(|| at("\"pipeline\" must be a boolean"))?,
                );
            }
            if let Some(v) = json::field(entry, "flatten") {
                cfg.set_flatten(
                    id.clone(),
                    json::as_bool(v).ok_or_else(|| at("\"flatten\" must be a boolean"))?,
                );
            }
            if let Some(v) = json::field(entry, "unroll") {
                let unroll = match (json::as_str(v), json::as_u64(v)) {
                    (Some("full"), _) => Unroll::Full,
                    (_, Some(0 | 1)) => Unroll::Off,
                    (_, Some(f)) if f <= u64::from(u32::MAX) => Unroll::Factor(f as u32),
                    _ => return Err(at("\"unroll\" must be a factor or \"full\"")),
                };
                cfg.set_unroll(id.clone(), unroll);
            }
        }
    }
    if let Some(arrays) = json::field(doc, "arrays") {
        for (i, entry) in json::as_array(arrays)
            .ok_or("\"arrays\" must be an array")?
            .iter()
            .enumerate()
        {
            let at = |msg: &str| format!("arrays[{i}]: {msg}");
            let array = json::field(entry, "array")
                .and_then(json::as_str)
                .ok_or_else(|| at("missing \"array\" name"))?;
            let dim = json::field(entry, "dim")
                .and_then(json::as_u64)
                .and_then(|v| u32::try_from(v).ok())
                .filter(|&d| d >= 1)
                .ok_or_else(|| at("\"dim\" must be a 1-based integer"))?;
            let kind = match json::field(entry, "kind").and_then(json::as_str) {
                Some("cyclic") | None => PartitionKind::Cyclic,
                Some("block") => PartitionKind::Block,
                Some("complete") => PartitionKind::Complete,
                Some(other) => return Err(at(&format!("unknown partition kind {other:?}"))),
            };
            let factor = json::field(entry, "factor")
                .map(|v| {
                    json::as_u64(v)
                        .and_then(|f| u32::try_from(f).ok())
                        .ok_or_else(|| at("\"factor\" must be an integer"))
                })
                .transpose()?
                .unwrap_or(1);
            cfg.set_partition(array, dim, ArrayPartition { kind, factor });
        }
    }
    Ok(cfg)
}

fn qor_json(qor: &hlsim::Qor) -> Json {
    Json::obj(vec![
        ("latency", Json::UInt(qor.latency)),
        ("lut", Json::UInt(qor.lut)),
        ("ff", Json::UInt(qor.ff)),
        ("dsp", Json::UInt(qor.dsp)),
    ])
}

fn cache_json(stats: &CacheStats) -> Json {
    Json::obj(vec![
        ("hits", Json::UInt(stats.hits)),
        ("misses", Json::UInt(stats.misses)),
        ("evictions", Json::UInt(stats.evictions)),
        ("kernel_hits", Json::UInt(stats.kernel_hits)),
        ("kernel_misses", Json::UInt(stats.kernel_misses)),
        ("incr_hits", Json::UInt(stats.incr_hits)),
        ("incr_misses", Json::UInt(stats.incr_misses)),
        ("incr_recomputes", Json::UInt(stats.incr_recomputes)),
        ("len", Json::UInt(stats.len as u64)),
        ("capacity", Json::UInt(stats.capacity as u64)),
    ])
}

/// Per-prediction incremental-query attribution (omitted when the build
/// ran no incremental queries, e.g. on a prepared-cache hit).
fn incr_json(incr: &qor_core::IncrCounts) -> Option<Json> {
    if incr.hits + incr.misses + incr.recomputes == 0 {
        return None;
    }
    Some(Json::obj(vec![
        ("hits", Json::UInt(incr.hits)),
        ("misses", Json::UInt(incr.misses)),
        ("recomputes", Json::UInt(incr.recomputes)),
    ]))
}

// ---------------------------------------------------------------- dse jobs

/// Decodes a `POST /v1/dse` body and submits the job, returning
/// `{"id":"job-N"}`. Validation runs synchronously: bad kernels,
/// strategies, or spaces are a 400 and no job is created.
fn dse_submit(state: &ServeState, body: &[u8]) -> Result<String, ApiError> {
    let bad = |m: &str| ApiError::bad_request(m);
    let doc = parse_body(body)?;

    let kernel = json::field(&doc, "kernel")
        .and_then(json::as_str)
        .ok_or_else(|| bad("\"kernel\" must name a bundled kernel"))?;
    let strategy = match json::field(&doc, "strategy") {
        Some(v) => {
            let name = json::as_str(v).ok_or_else(|| bad("\"strategy\" must be a string"))?;
            StrategyKind::parse(name).ok_or_else(|| {
                bad(&format!(
                    "unknown strategy {name:?} (random|anneal|genetic)"
                ))
            })?
        }
        None => StrategyKind::Anneal,
    };
    let uint = |key: &str, default: u64| -> Result<u64, ApiError> {
        match json::field(&doc, key) {
            Some(v) => json::as_u64(v)
                .ok_or_else(|| bad(&format!("\"{key}\" must be a non-negative integer"))),
            None => Ok(default),
        }
    };
    let budget = uint("budget", 64)?;
    let seed = uint("seed", 0)?;
    let batch = uint("batch", 8)?;
    let batch = usize::try_from(batch)
        .ok()
        .filter(|&b| b >= 1)
        .ok_or_else(|| bad("\"batch\" must be at least 1"))?;

    let opts = SearchOptions::new(kernel, strategy, budget)
        .with_seed(seed)
        .with_batch(batch);
    let fleet_job = match json::field(&doc, "fleet") {
        Some(v) => json::as_bool(v).ok_or_else(|| bad("\"fleet\" must be a boolean"))?,
        None => false,
    };
    let id = if fleet_job {
        let hub = &state.fleet;
        if hub.roster.live().is_empty() {
            // restarted workers answer probes without re-registration
            let _ = hub.roster.probe_all(&*hub.transport);
        }
        if hub.roster.live().is_empty() {
            return Err(ApiError::from(QorError::Fleet(format!(
                "no live workers ({} registered)",
                hub.roster.len()
            ))));
        }
        let mut fleet_opts = FleetOptions::default();
        if let Some(v) = json::field(&doc, "unit_size") {
            fleet_opts.unit_size = json::as_u64(v)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or_else(|| bad("\"unit_size\" must be a non-negative integer"))?;
        }
        let eval = fleet::FleetEval::new(
            Arc::clone(&hub.transport),
            Arc::clone(&hub.roster),
            kernel,
            format!("dse:{kernel}"),
        )
        .with_options(fleet_opts)
        .with_stats(Arc::clone(&hub.stats));
        state
            .runner
            .submit_with(opts, Box::new(eval))
            .map_err(ApiError::from)?
    } else {
        state.runner.submit(opts).map_err(ApiError::from)?
    };
    Ok(Json::obj(vec![("id", Json::str(id))]).to_string())
}

fn dse_get(state: &ServeState, id: &str) -> Result<String, ApiError> {
    state
        .runner
        .get(id)
        .map(|progress| progress_json(id, &progress).to_string())
        .ok_or_else(|| ApiError::new(ApiCode::UnknownJob, format!("no job {id:?}")))
}

fn dse_delete(state: &ServeState, id: &str) -> Result<String, ApiError> {
    if state.runner.delete(id) {
        Ok(Json::obj(vec![("deleted", Json::Bool(true))]).to_string())
    } else {
        Err(ApiError::new(ApiCode::UnknownJob, format!("no job {id:?}")))
    }
}

fn progress_json(id: &str, progress: &JobProgress) -> Json {
    let front: Vec<Json> = progress
        .front
        .iter()
        .map(|&(fingerprint, latency, area)| {
            Json::obj(vec![
                ("fingerprint", Json::UInt(fingerprint)),
                ("latency", Json::Float(latency)),
                ("area", Json::Float(area)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("id", Json::str(id)),
        ("trace", Json::Str(format!("{:016x}", progress.trace))),
        ("status", Json::str(progress.status.name())),
        ("kernel", Json::str(&progress.kernel)),
        ("strategy", Json::str(&progress.strategy)),
        ("budget", Json::UInt(progress.budget)),
        ("spent", Json::UInt(progress.spent)),
        ("iterations", Json::UInt(progress.iterations)),
        ("front", Json::Arr(front)),
    ];
    if let Some(fleet) = &progress.fleet {
        fields.push(("fleet", fleet.clone()));
    }
    if let Some(error) = &progress.error {
        fields.push(("error", Json::str(error)));
    }
    Json::obj(fields)
}

// ------------------------------------------------------------------ fleet

/// `POST /v1/fleet/workers` with `{"addr":"host:port"}`: registers (or
/// revives) a worker for fleet-dispatched DSE jobs.
fn fleet_register(state: &ServeState, body: &[u8]) -> Result<String, ApiError> {
    let doc = parse_body(body)?;
    let addr = json::field(&doc, "addr")
        .and_then(json::as_str)
        .ok_or_else(|| ApiError::bad_request("\"addr\" must be a \"host:port\" string"))?;
    if addr.parse::<SocketAddr>().is_err() {
        return Err(ApiError::bad_request(format!(
            "\"addr\" must parse as a socket address, got {addr:?}"
        )));
    }
    let new = state.fleet.roster.register(addr);
    obs::metrics::counter_add("fleet/worker_registrations", 1);
    obs::log::event(
        Level::Info,
        "fleet.register",
        &[("worker", Json::str(addr)), ("new", Json::Bool(new))],
    );
    Ok(Json::obj(vec![
        ("registered", Json::Bool(true)),
        ("new", Json::Bool(new)),
        ("workers", Json::UInt(state.fleet.roster.len() as u64)),
    ])
    .to_string())
}

fn fleet_list(state: &ServeState) -> String {
    fleet_json(state).to_string()
}

/// `DELETE /v1/fleet/workers/<addr>`: forgets a worker entirely (an
/// evicted worker that should return goes through re-registration
/// instead).
fn fleet_deregister(state: &ServeState, addr: &str) -> Result<String, ApiError> {
    if state.fleet.roster.remove(addr) {
        Ok(Json::obj(vec![("removed", Json::Bool(true))]).to_string())
    } else {
        Err(ApiError::new(
            ApiCode::NotFound,
            format!("no registered worker {addr:?}"),
        ))
    }
}

/// `POST /v1/fleet/eval` (worker side): scores one work unit of genomes
/// through the default model, sequentially, so the reply is independent
/// of this worker's `QOR_THREADS`.
fn fleet_eval_unit(state: &ServeState, body: &[u8]) -> Result<String, ApiError> {
    let doc = parse_body(body)?;
    let unit = fleet_wire::decode_unit_body(&doc).map_err(ApiError::bad_request)?;
    let session = state.registry.default_entry()?.session().clone();
    let points = fleet::evaluate_genomes(
        session,
        &unit.kernel,
        unit.unroll_factors.as_deref(),
        &unit.genomes,
    )
    .map_err(ApiError::from)?;
    state
        .predictions
        .fetch_add(points.len() as u64, Ordering::Relaxed);
    obs::metrics::counter_add("fleet/worker_units", 1);
    obs::metrics::counter_add("fleet/worker_genomes", points.len() as u64);
    Ok(fleet_wire::encode_unit_response(unit.unit, &points).to_string())
}

/// The shared fleet snapshot rendered by `GET /v1/fleet/workers` and
/// `/debug/vars`: the roster plus the hub's cumulative dispatch counters.
fn fleet_json(state: &ServeState) -> Json {
    let workers = state.fleet.roster.list();
    let alive = workers.iter().filter(|w| w.healthy).count();
    let counters = state.fleet.stats.snapshot();
    Json::obj(vec![
        (
            "workers",
            Json::Arr(
                workers
                    .iter()
                    .map(|w| {
                        Json::obj(vec![
                            ("addr", Json::str(&w.addr)),
                            ("units_done", Json::UInt(w.units_done)),
                            ("failures", Json::UInt(w.failures)),
                            ("healthy", Json::Bool(w.healthy)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("workers_alive", Json::UInt(alive as u64)),
        (
            "workers_evicted",
            Json::UInt(state.fleet.roster.evicted_total()),
        ),
        ("units_in_flight", Json::UInt(counters.in_flight)),
        ("units_dispatched", Json::UInt(counters.dispatched)),
        ("units_completed", Json::UInt(counters.completed)),
        ("units_retried", Json::UInt(counters.retried)),
        ("units_reassigned", Json::UInt(counters.reassigned)),
        ("units_orphaned", Json::UInt(counters.orphaned)),
    ])
}

// ----------------------------------------------------------------- metrics

/// Renders the `/metrics` body: server/session gauges first (always live,
/// independent of whether `obs` collection is enabled), then whatever the
/// `obs` registry holds, names sanitized to the Prometheus charset and
/// prefixed `qor_`.
fn render_metrics(state: &ServeState) -> String {
    let mut out = String::new();
    let stats = state.registry.cache().stats();
    let mut put = |name: &str, kind: &str, value: String| {
        out.push_str(&format!("# TYPE {name} {kind}\n{name} {value}\n"));
    };
    put(
        "qor_http_requests_total",
        "counter",
        state.requests.load(Ordering::Relaxed).to_string(),
    );
    put(
        "qor_http_client_errors_total",
        "counter",
        state.client_errors.load(Ordering::Relaxed).to_string(),
    );
    put(
        "qor_predictions_total",
        "counter",
        state.predictions.load(Ordering::Relaxed).to_string(),
    );
    put(
        "qor_session_cache_hits_total",
        "counter",
        stats.hits.to_string(),
    );
    put(
        "qor_session_cache_misses_total",
        "counter",
        stats.misses.to_string(),
    );
    put(
        "qor_session_cache_evictions_total",
        "counter",
        stats.evictions.to_string(),
    );
    put(
        "qor_session_kernel_hits_total",
        "counter",
        stats.kernel_hits.to_string(),
    );
    put(
        "qor_session_kernel_misses_total",
        "counter",
        stats.kernel_misses.to_string(),
    );
    put("qor_session_cache_size", "gauge", stats.len.to_string());
    put(
        "qor_session_cache_capacity",
        "gauge",
        stats.capacity.to_string(),
    );

    let dse = state.runner.stats();
    put(
        "qor_dse_jobs_submitted_total",
        "counter",
        dse.submitted.to_string(),
    );
    put(
        "qor_dse_jobs_completed_total",
        "counter",
        dse.completed.to_string(),
    );
    put(
        "qor_dse_jobs_failed_total",
        "counter",
        dse.failed.to_string(),
    );
    put(
        "qor_dse_jobs_cancelled_total",
        "counter",
        dse.cancelled.to_string(),
    );
    put(
        "qor_dse_evaluations_total",
        "counter",
        dse.evaluations.to_string(),
    );
    put(
        "qor_dse_evals_per_second",
        "gauge",
        format_float(dse.evals_per_sec),
    );

    // fleet families, instance-local (the obs `fleet/*` mirrors are
    // process-global and skipped below, same as `serve/http/*`)
    {
        let workers = state.fleet.roster.list();
        let alive = workers.iter().filter(|w| w.healthy).count();
        let f = state.fleet.stats.snapshot();
        put("qor_fleet_workers", "gauge", workers.len().to_string());
        put("qor_fleet_workers_live", "gauge", alive.to_string());
        put(
            "qor_fleet_workers_evicted_total",
            "counter",
            state.fleet.roster.evicted_total().to_string(),
        );
        put(
            "qor_fleet_units_dispatched_total",
            "counter",
            f.dispatched.to_string(),
        );
        put(
            "qor_fleet_units_completed_total",
            "counter",
            f.completed.to_string(),
        );
        put(
            "qor_fleet_units_retried_total",
            "counter",
            f.retried.to_string(),
        );
        put(
            "qor_fleet_units_reassigned_total",
            "counter",
            f.reassigned.to_string(),
        );
        put(
            "qor_fleet_units_orphaned_total",
            "counter",
            f.orphaned.to_string(),
        );
        put(
            "qor_fleet_units_in_flight",
            "gauge",
            f.in_flight.to_string(),
        );
    }

    put(
        "qor_http_responses_2xx_total",
        "counter",
        state.status_2xx.load(Ordering::Relaxed).to_string(),
    );
    put(
        "qor_http_responses_4xx_total",
        "counter",
        state.status_4xx.load(Ordering::Relaxed).to_string(),
    );
    put(
        "qor_http_responses_5xx_total",
        "counter",
        state.status_5xx.load(Ordering::Relaxed).to_string(),
    );

    // batching-queue counters (only meaningful under batched dispatch)
    if let Some(batcher) = &state.batcher {
        let b = batcher.stats();
        put("qor_batch_flushes_total", "counter", b.batches.to_string());
        put(
            "qor_batch_flush_full_total",
            "counter",
            b.flush_full.to_string(),
        );
        put(
            "qor_batch_flush_timeout_total",
            "counter",
            b.flush_timeout.to_string(),
        );
        put("qor_batch_items_total", "counter", b.items.to_string());
        put("qor_batch_deduped_total", "counter", b.deduped.to_string());
        put("qor_batch_max_size", "gauge", b.max_batch_seen.to_string());
    }

    // incremental-query counters, one labeled series per query kind (the
    // unlabeled totals live in the cache stats above as incr_*)
    {
        let kinds = state.registry.cache().incr_kind_stats();
        if !kinds.is_empty() {
            for (family, pick) in [
                (
                    "qor_incr_query_hits_total",
                    (|s: &incr::KindStats| s.hits) as fn(&incr::KindStats) -> u64,
                ),
                ("qor_incr_query_misses_total", |s: &incr::KindStats| {
                    s.misses
                }),
                ("qor_incr_query_recomputes_total", |s: &incr::KindStats| {
                    s.recomputes
                }),
            ] {
                out.push_str(&format!("# TYPE {family} counter\n"));
                for (kind, stats) in &kinds {
                    out.push_str(&format!("{family}{{kind=\"{kind}\"}} {}\n", pick(stats)));
                }
            }
        }
    }

    // per-model-version series, labeled {model, generation}
    {
        let entries = state.registry.list();
        out.push_str("# TYPE qor_model_generation gauge\n");
        for entry in &entries {
            out.push_str(&format!(
                "qor_model_generation{{model=\"{}\"}} {}\n",
                entry.name, entry.generation
            ));
        }
        out.push_str("# TYPE qor_model_predictions_total counter\n");
        for entry in &entries {
            out.push_str(&format!(
                "qor_model_predictions_total{{model=\"{}\",generation=\"{}\"}} {}\n",
                entry.name,
                entry.generation,
                entry.predictions()
            ));
        }
    }

    {
        let route_hits = state.route_hits.lock().unwrap();
        if !route_hits.is_empty() {
            out.push_str("# TYPE qor_http_route_requests_total counter\n");
            for (route, hits) in route_hits.iter() {
                out.push_str(&format!(
                    "qor_http_route_requests_total{{route=\"{route}\"}} {hits}\n"
                ));
            }
        }
    }
    {
        // per-(route, status-class) request latency: one Prometheus
        // histogram family with labels, plus exact-quantile gauges
        let latency = state.latency.lock().unwrap();
        if !latency.is_empty() {
            out.push_str("# TYPE qor_http_request_duration_us histogram\n");
            for ((route, class), hist) in latency.iter() {
                let labels = format!("route=\"{route}\",status=\"{class}\"");
                render_histogram(
                    &mut out,
                    "qor_http_request_duration_us",
                    &labels,
                    &hist.detail(),
                );
            }
            out.push_str("# TYPE qor_http_request_duration_us_quantile gauge\n");
            for ((route, class), hist) in latency.iter() {
                let detail = hist.detail();
                for (q, tag) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                    out.push_str(&format!(
                        "qor_http_request_duration_us_quantile{{route=\"{route}\",status=\"{class}\",q=\"{tag}\"}} {}\n",
                        format_float(detail.quantile(q))
                    ));
                }
            }
        }
    }

    for (name, snap) in obs::metrics::snapshot() {
        // the session/* and incr/* counters above are authoritative; their
        // obs mirrors only move while collection is on and would shadow
        // them — and the serve/http/* mirrors are process-global, so the
        // instance-local stores rendered above are authoritative for this
        // server
        if name.starts_with("session/")
            || name.starts_with("serve/http/")
            || name.starts_with("incr/")
            || name.starts_with("fleet/")
        {
            continue;
        }
        let clean = sanitize_metric_name(&name);
        match snap {
            obs::metrics::Snapshot::Counter(v) => {
                put_one(
                    &mut out,
                    &format!("qor_{clean}_total"),
                    "counter",
                    &v.to_string(),
                );
            }
            obs::metrics::Snapshot::Gauge(v) | obs::metrics::Snapshot::SeriesLast(_, v) => {
                put_one(&mut out, &format!("qor_{clean}"), "gauge", &format_float(v));
            }
            obs::metrics::Snapshot::Histogram { .. } => {
                // a histogram must never be misreported as a gauge or a
                // bare counter pair: emit full cumulative-bucket exposition
                if let Some(detail) = obs::metrics::histogram_detail(&name) {
                    out.push_str(&format!("# TYPE qor_{clean} histogram\n"));
                    render_histogram(&mut out, &format!("qor_{clean}"), "", &detail);
                }
            }
        }
    }
    out
}

/// Appends one `# TYPE` + value line.
fn put_one(out: &mut String, name: &str, kind: &str, value: &str) {
    out.push_str(&format!("# TYPE {name} {kind}\n{name} {value}\n"));
}

/// Appends the `_bucket{le=...}` / `_sum` / `_count` exposition of one
/// histogram (cumulative buckets, closed by `le="+Inf"`). `labels` is an
/// optional pre-rendered `key="value"` list joined into each bucket line.
fn render_histogram(out: &mut String, name: &str, labels: &str, detail: &HistogramDetail) {
    let sep = if labels.is_empty() { "" } else { "," };
    for (le, cumulative) in &detail.buckets {
        let le = if le.is_finite() {
            format_float(*le)
        } else {
            "+Inf".to_string()
        };
        out.push_str(&format!(
            "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}\n"
        ));
    }
    let braces = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    out.push_str(&format!(
        "{name}_sum{braces} {}\n",
        format_float(detail.sum)
    ));
    out.push_str(&format!("{name}_count{braces} {}\n", detail.count));
}

fn format_float(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "NaN".to_string()
    }
}

/// Maps an obs metric name (`dse/mvt/adrs_percent`, `cdfg.nodes_built`)
/// onto the Prometheus charset `[a-zA-Z0-9_]`.
fn sanitize_metric_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_decoding_covers_loops_and_arrays() {
        let doc = json::parse(
            r#"{"loops":[{"loop":[0,1],"pipeline":true,"unroll":4},
                        {"loop":[0],"unroll":"full","flatten":true}],
                "arrays":[{"array":"a","dim":1,"kind":"cyclic","factor":2},
                          {"array":"b","dim":2,"kind":"complete"}]}"#,
        )
        .unwrap();
        let cfg = decode_config(&doc).unwrap();
        let p01 = cfg.loop_pragma(&LoopId::from_path(&[0, 1]));
        assert!(p01.pipeline);
        assert_eq!(p01.unroll, Unroll::Factor(4));
        let p0 = cfg.loop_pragma(&LoopId::from_path(&[0]));
        assert!(p0.flatten);
        assert_eq!(p0.unroll, Unroll::Full);
        assert_eq!(
            cfg.partition("a", 1),
            ArrayPartition {
                kind: PartitionKind::Cyclic,
                factor: 2
            }
        );
        assert_eq!(cfg.partition("b", 2).kind, PartitionKind::Complete);
    }

    #[test]
    fn config_decoding_rejects_bad_shapes() {
        for (doc, needle) in [
            (r#"{"loops":[{"pipeline":true}]}"#, "loop"),
            (r#"{"loops":[{"loop":[0],"unroll":"half"}]}"#, "unroll"),
            (r#"{"loops":[{"loop":[99999999]}]}"#, "index"),
            (r#"{"arrays":[{"dim":1}]}"#, "array"),
            (r#"{"arrays":[{"array":"a","dim":0}]}"#, "dim"),
            (
                r#"{"arrays":[{"array":"a","dim":1,"kind":"diagonal"}]}"#,
                "kind",
            ),
        ] {
            let parsed = json::parse(doc).unwrap();
            let err = decode_config(&parsed).unwrap_err();
            assert!(err.contains(needle), "{doc}: {err}");
        }
    }

    #[test]
    fn request_decoding_requires_exactly_one_input_form() {
        let both = json::parse(r#"{"kernel":"mvt","source":"void f(){}","top":"f"}"#).unwrap();
        assert!(decode_request(&both, None).is_err());
        let neither = json::parse(r#"{"config":{}}"#).unwrap();
        assert!(decode_request(&neither, None).is_err());
        let source_without_top = json::parse(r#"{"source":"void f(){}"}"#).unwrap();
        assert!(decode_request(&source_without_top, None).is_err());
        let ok = json::parse(r#"{"kernel":"mvt"}"#).unwrap();
        assert!(decode_request(&ok, None).is_ok());
    }

    #[test]
    fn request_decoding_resolves_model_precedence() {
        let inherited = json::parse(r#"{"kernel":"mvt"}"#).unwrap();
        let item = decode_request(&inherited, Some("batchwide")).unwrap();
        assert_eq!(item.model.as_deref(), Some("batchwide"));
        let own = json::parse(r#"{"kernel":"mvt","model":"mine"}"#).unwrap();
        let item = decode_request(&own, Some("batchwide")).unwrap();
        assert_eq!(item.model.as_deref(), Some("mine"));
        let none = decode_request(&inherited, None).unwrap();
        assert_eq!(none.model, None);
    }

    #[test]
    fn metric_names_sanitize_to_prometheus_charset() {
        assert_eq!(
            sanitize_metric_name("dse/mvt/adrs_percent"),
            "dse_mvt_adrs_percent"
        );
        assert_eq!(sanitize_metric_name("cdfg.nodes_built"), "cdfg_nodes_built");
        assert_eq!(sanitize_metric_name("2fast"), "_2fast");
    }

    #[test]
    fn route_table_matches_v1_legacy_and_params() {
        // v1 exact
        match match_route("GET", "/v1/healthz") {
            RouteMatch::Matched { def, params } => {
                assert_eq!(def.endpoint, Endpoint::Healthz);
                assert!(!def.deprecated);
                assert!(params.is_empty());
            }
            _ => panic!("GET /v1/healthz must match"),
        }
        // parameter capture
        match match_route("PUT", "/v1/models/paper") {
            RouteMatch::Matched { def, params } => {
                assert_eq!(def.endpoint, Endpoint::ModelPut);
                assert_eq!(params, vec!["paper".to_string()]);
            }
            _ => panic!("PUT /v1/models/:name must match"),
        }
        // legacy alias is deprecated with a successor
        match match_route("POST", "/predict") {
            RouteMatch::Matched { def, .. } => {
                assert!(def.deprecated);
                assert_eq!(def.successor, "/v1/predict");
            }
            _ => panic!("legacy /predict must match"),
        }
        match match_route("GET", "/dse/job-1") {
            RouteMatch::Matched { def, params } => {
                assert_eq!(def.endpoint, Endpoint::DseGet);
                assert_eq!(params, vec!["job-1".to_string()]);
            }
            _ => panic!("legacy /dse/:id must match"),
        }
        // wrong method on a known path
        assert!(matches!(
            match_route("DELETE", "/v1/predict"),
            RouteMatch::MethodNotAllowed
        ));
        // unknown paths and empty params
        assert!(matches!(
            match_route("GET", "/v2/healthz"),
            RouteMatch::NotFound
        ));
        assert!(matches!(
            match_route("GET", "/v1/models/"),
            RouteMatch::NotFound
        ));
        assert!(matches!(
            match_route("GET", "/v1/dse/job-1/extra"),
            RouteMatch::NotFound
        ));
    }
}
