//! The batch-inference HTTP server: routes, request decoding, and the
//! Prometheus exposition endpoint.
//!
//! # Endpoints
//!
//! | route           | method | body                                       |
//! |-----------------|--------|--------------------------------------------|
//! | `/healthz`      | GET    | — → `{"status":"ok", ...}`                 |
//! | `/metrics`      | GET    | — → Prometheus text exposition             |
//! | `/predict`      | POST   | one prediction request, or `{"requests":[…]}` for a batch |
//! | `/dse`          | POST   | submit a search job → `{"id":"job-1"}`     |
//! | `/dse/<id>`     | GET    | — → job progress + incumbent Pareto front  |
//! | `/dse/<id>`     | DELETE | cancel and forget the job                  |
//! | `/debug/requests` | GET  | — → flight-recorder dump (last N traces)   |
//! | `/debug/vars`   | GET    | — → build info, thread/cache config, counters |
//!
//! # Tracing
//!
//! Every request runs under a trace context: the inbound `x-qor-trace`
//! header (16 hex digits) is honored when present, otherwise a
//! deterministic id is derived from the server instance and request
//! sequence. The id is echoed in the `x-qor-trace` response header,
//! stamped on all spans/log events/flight records the request produces
//! (including session cache events and batch fan-out workers), and shown
//! in `GET /debug/requests`. Search jobs get their own job-scoped trace,
//! visible in `GET /dse/<id>` as `"trace"`.
//!
//! A prediction request names a bundled kernel (`{"kernel":"mvt"}`) or
//! carries inline source (`{"source":"void f(...){...}","top":"f"}`), plus
//! an optional pragma `"config"`:
//!
//! ```json
//! {"kernel": "mvt",
//!  "config": {"loops":  [{"loop": [0,0], "pipeline": true, "unroll": 4}],
//!             "arrays": [{"array": "a", "dim": 1, "kind": "cyclic", "factor": 2}]}}
//! ```
//!
//! `"unroll"` accepts a factor (`0`/`1` = off) or `"full"`. Responses carry
//! the predicted QoR plus the session's cumulative cache statistics, so a
//! client can observe its own hit rate; batches are fanned out through the
//! deterministic `par` executor and return results in request order.
//!
//! The server answers every prediction through one shared
//! [`qor_core::Session`], so repeated configurations skip the front half of
//! the pipeline regardless of which connection or batch they arrive on.
//!
//! # Search jobs
//!
//! `POST /dse` submits a budgeted heuristic exploration (see
//! `crates/search`) that runs on a background thread against the same
//! shared session:
//!
//! ```json
//! {"kernel": "mvt", "strategy": "anneal", "budget": 64,
//!  "seed": 42, "batch": 8}
//! ```
//!
//! `strategy` is `random` | `anneal` | `genetic` (default `anneal`);
//! `seed` defaults to 0 and `batch` to 8. Invalid kernels or strategies
//! fail the POST synchronously with 400 — a job id is only returned for
//! runnable jobs. Poll `GET /dse/<id>` for status (`running` → `done`)
//! and the incumbent front; `DELETE /dse/<id>` cancels a running job.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use obs::log::Level;
use obs::metrics::{HistogramDetail, LogHistogram};
use obs::{trace, Json};
use pragma::{ArrayPartition, LoopId, PartitionKind, PragmaConfig, Unroll};
use qor_core::{CacheStats, PredictReport, QorError, Session};
use search::{JobProgress, JobRunner, SearchOptions, StrategyKind};

use crate::http::{self, ParseError, Request};
use crate::json;

/// Per-process server-instance sequence, mixed into derived trace ids so
/// two servers in one test process never collide.
static INSTANCE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Shared state behind the accept loop and all connection threads.
struct ServeState {
    session: Arc<Session>,
    runner: Arc<JobRunner>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    predictions: AtomicU64,
    client_errors: AtomicU64,
    /// Instance number of this server within the process.
    instance: u64,
    started: Instant,
    /// Per-`(route, status-class)` request-latency histograms in µs.
    ///
    /// Instance-local on purpose: the `obs` registry is process-global,
    /// so a test process running several servers would cross-contaminate
    /// registry-backed latency metrics. `/metrics` renders these;
    /// `serve/http/*` obs mirrors exist for run reports and are skipped
    /// by the renderer.
    latency: Mutex<BTreeMap<(String, &'static str), LogHistogram>>,
    /// Per-route request counters (same instance-locality argument).
    route_hits: Mutex<BTreeMap<String, u64>>,
    status_2xx: AtomicU64,
    status_4xx: AtomicU64,
    status_5xx: AtomicU64,
}

/// A bound (not yet running) server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
}

/// Handle to a running server: address + clean shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    join: JoinHandle<()>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) and wraps the
    /// session.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, session: Session) -> std::io::Result<Server> {
        // a serving process wants live `/metrics` histograms regardless of
        // QOR_TRACE/QOR_REPORT (metrics are bounded; the span arena is not)
        obs::metrics::enable_always();
        let listener = TcpListener::bind(addr)?;
        let session = Arc::new(session);
        let runner = JobRunner::new(Arc::clone(&session));
        Ok(Server {
            listener,
            state: Arc::new(ServeState {
                session,
                runner,
                shutdown: AtomicBool::new(false),
                requests: AtomicU64::new(0),
                predictions: AtomicU64::new(0),
                client_errors: AtomicU64::new(0),
                instance: INSTANCE_SEQ.fetch_add(1, Ordering::Relaxed),
                started: Instant::now(),
                latency: Mutex::new(BTreeMap::new()),
                route_hits: Mutex::new(BTreeMap::new()),
                status_2xx: AtomicU64::new(0),
                status_4xx: AtomicU64::new(0),
                status_5xx: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop on the calling thread until
    /// [`ServerHandle::shutdown`] (or [`Server::spawn`]'s handle) flags it.
    pub fn run(self) {
        let addr = self.listener.local_addr().ok();
        obs::tracef!(1, "qor-serve listening on {addr:?}");
        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    let state = Arc::clone(&self.state);
                    std::thread::spawn(move || handle_connection(stream, &state));
                }
                Err(e) => obs::tracef!(1, "accept failed: {e}"),
            }
        }
    }

    /// Moves the accept loop onto a background thread and returns a
    /// shutdown handle.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let state = Arc::clone(&self.state);
        let join = std::thread::spawn(move || self.run());
        Ok(ServerHandle { addr, state, join })
    }
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Cumulative cache statistics of the server's session.
    pub fn stats(&self) -> CacheStats {
        self.state.session.stats()
    }

    /// Flags shutdown, wakes the accept loop with a self-connection, and
    /// joins the server thread.
    pub fn shutdown(self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // the accept loop only observes the flag on its next connection
        let _ = TcpStream::connect(self.addr);
        let _ = self.join.join();
    }
}

/// Per-request telemetry the routes fill in while handling: per-stage
/// timings and cache attribution for the flight record.
#[derive(Default)]
struct ReqTelemetry {
    stages: Vec<(String, u64)>,
    cache_hits: u64,
    cache_misses: u64,
}

impl ReqTelemetry {
    fn absorb(&mut self, report: &PredictReport) {
        self.cache_hits += report.cache_hits();
        self.cache_misses += report.cache_misses();
    }

    fn stage(&mut self, name: &str, us: u64) {
        self.stages.push((name.to_string(), us));
    }
}

fn handle_connection(mut stream: TcpStream, state: &ServeState) {
    let request = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(ParseError::Closed) => return, // shutdown poke or dropped peer
        Err(e @ (ParseError::Malformed(_) | ParseError::TooLarge(_))) => {
            state.client_errors.fetch_add(1, Ordering::Relaxed);
            state.status_4xx.fetch_add(1, Ordering::Relaxed);
            obs::metrics::counter_add("serve/http/4xx", 1);
            let body = error_json(&e.to_string());
            let status = if matches!(e, ParseError::TooLarge(_)) {
                413
            } else {
                400
            };
            let reason = if status == 413 {
                "Payload Too Large"
            } else {
                "Bad Request"
            };
            let _ = http::write_response(
                &mut stream,
                status,
                reason,
                "application/json",
                body.as_bytes(),
            );
            return;
        }
        Err(ParseError::Io(_)) => return,
    };
    let seq = state.requests.fetch_add(1, Ordering::Relaxed);
    obs::metrics::counter_add("serve/http/requests", 1);

    // trace context: honor an inbound x-qor-trace header, else derive a
    // deterministic id from (server instance, request sequence)
    let trace_id = request
        .header("x-qor-trace")
        .and_then(obs::TraceId::parse_hex)
        .unwrap_or_else(|| {
            trace::derive(&[b"http", &state.instance.to_be_bytes(), &seq.to_be_bytes()])
        });
    let _trace_guard = trace::adopt(trace_id);
    let trace_hex = trace_id.as_hex();

    let route_key = route_key(&request.method, &request.path);
    let started_us = obs::log::now_us();
    let t0 = Instant::now();
    let mut tel = ReqTelemetry::default();
    let (status, reason, content_type, body) = route(state, &request, &mut tel);
    let dur_us = t0.elapsed().as_micros() as u64;

    observe_request(state, route_key, status, dur_us);
    if status >= 400 {
        state.client_errors.fetch_add(1, Ordering::Relaxed);
    }

    let mut flight =
        obs::flight::FlightRecord::new("http", &format!("{} {}", request.method, request.path));
    flight.outcome = status.to_string();
    flight.start_us = started_us;
    flight.total_us = dur_us;
    flight.bytes_in = request.body.len() as u64;
    flight.bytes_out = body.len() as u64;
    flight.cache_hits = tel.cache_hits;
    flight.cache_misses = tel.cache_misses;
    flight.stages = tel.stages;
    obs::flight::record(flight);

    if obs::log::enabled(Level::Info) {
        obs::log::event(
            Level::Info,
            "http.request",
            &[
                ("route", Json::str(route_key)),
                ("method", Json::str(&request.method)),
                ("path", Json::str(&request.path)),
                ("status", Json::UInt(u64::from(status))),
                ("dur_us", Json::UInt(dur_us)),
                ("bytes_out", Json::UInt(body.len() as u64)),
            ],
        );
    }

    let _ = http::write_response_with(
        &mut stream,
        status,
        reason,
        content_type,
        &[("x-qor-trace", &trace_hex)],
        body.as_bytes(),
    );
}

/// Low-cardinality route label for metrics (`/dse/<id>` collapses to one
/// key; unknown paths share `other`).
fn route_key(method: &str, path: &str) -> &'static str {
    match (method, path) {
        ("GET", "/healthz") => "healthz",
        ("GET", "/metrics") => "metrics",
        ("POST", "/predict") => "predict",
        ("POST", "/dse") => "dse_submit",
        ("GET", "/debug/requests") => "debug_requests",
        ("GET", "/debug/vars") => "debug_vars",
        _ if path.starts_with("/dse/") => "dse_job",
        _ => "other",
    }
}

/// Status class token for counters and latency-histogram keys.
fn status_class(status: u16) -> &'static str {
    match status {
        200..=299 => "2xx",
        400..=499 => "4xx",
        _ => "5xx",
    }
}

/// Records one finished request into the instance-local latency/status
/// stores and their process-global obs mirrors.
fn observe_request(state: &ServeState, route: &'static str, status: u16, dur_us: u64) {
    let class = status_class(status);
    match class {
        "2xx" => state.status_2xx.fetch_add(1, Ordering::Relaxed),
        "4xx" => state.status_4xx.fetch_add(1, Ordering::Relaxed),
        _ => state.status_5xx.fetch_add(1, Ordering::Relaxed),
    };
    obs::metrics::counter_add(&format!("serve/http/{class}"), 1);
    obs::metrics::counter_add(&format!("serve/http/route/{route}"), 1);
    obs::metrics::histogram_record(&format!("serve/http/latency_us/{route}"), dur_us as f64);
    state
        .latency
        .lock()
        .unwrap()
        .entry((route.to_string(), class))
        .or_default()
        .record(dur_us as f64);
    *state
        .route_hits
        .lock()
        .unwrap()
        .entry(route.to_string())
        .or_insert(0) += 1;
}

fn route(
    state: &ServeState,
    request: &Request,
    tel: &mut ReqTelemetry,
) -> (u16, &'static str, &'static str, String) {
    let method = request.method.as_str();
    match request.path.as_str() {
        "/healthz" if method == "GET" => (200, "OK", "application/json", healthz(state)),
        "/metrics" if method == "GET" => (
            200,
            "OK",
            "text/plain; version=0.0.4",
            render_metrics(state),
        ),
        "/predict" if method == "POST" => match predict_route(state, &request.body, tel) {
            Ok(body) => (200, "OK", "application/json", body),
            Err(msg) => (400, "Bad Request", "application/json", error_json(&msg)),
        },
        "/dse" if method == "POST" => match dse_submit(state, &request.body) {
            Ok(body) => (200, "OK", "application/json", body),
            Err(msg) => (400, "Bad Request", "application/json", error_json(&msg)),
        },
        "/debug/requests" if method == "GET" => (
            200,
            "OK",
            "application/json",
            obs::flight::to_json().to_string(),
        ),
        "/debug/vars" if method == "GET" => (200, "OK", "application/json", debug_vars(state)),
        "/healthz" | "/metrics" | "/predict" | "/dse" | "/debug/requests" | "/debug/vars" => (
            405,
            "Method Not Allowed",
            "application/json",
            error_json("method not allowed"),
        ),
        path if path.starts_with("/dse/") => dse_job(state, method, &path["/dse/".len()..]),
        _ => (
            404,
            "Not Found",
            "application/json",
            error_json("no such route"),
        ),
    }
}

/// `GET /debug/vars`: build info, thread/cache/flight configuration and
/// coarse counters, for humans and smoke tests.
fn debug_vars(state: &ServeState) -> String {
    let stats = state.session.stats();
    let dse = state.runner.stats();
    Json::obj(vec![
        ("version", Json::str(env!("CARGO_PKG_VERSION"))),
        ("uptime_s", Json::UInt(state.started.elapsed().as_secs())),
        ("instance", Json::UInt(state.instance)),
        ("threads", Json::UInt(par::threads() as u64)),
        ("log_level", Json::str(obs::log::level_name())),
        (
            "requests",
            Json::UInt(state.requests.load(Ordering::Relaxed)),
        ),
        (
            "predictions",
            Json::UInt(state.predictions.load(Ordering::Relaxed)),
        ),
        (
            "status",
            Json::obj(vec![
                ("2xx", Json::UInt(state.status_2xx.load(Ordering::Relaxed))),
                ("4xx", Json::UInt(state.status_4xx.load(Ordering::Relaxed))),
                ("5xx", Json::UInt(state.status_5xx.load(Ordering::Relaxed))),
            ]),
        ),
        ("cache", cache_json(&stats)),
        (
            "dse",
            Json::obj(vec![
                ("submitted", Json::UInt(dse.submitted)),
                ("completed", Json::UInt(dse.completed)),
                ("failed", Json::UInt(dse.failed)),
                ("cancelled", Json::UInt(dse.cancelled)),
                ("evaluations", Json::UInt(dse.evaluations)),
            ]),
        ),
        (
            "flight",
            Json::obj(vec![
                ("capacity", Json::UInt(obs::flight::capacity() as u64)),
                ("recorded", Json::UInt(obs::flight::len() as u64)),
            ]),
        ),
    ])
    .to_string()
}

fn healthz(state: &ServeState) -> String {
    Json::obj(vec![
        ("status", Json::str("ok")),
        (
            "requests",
            Json::UInt(state.requests.load(Ordering::Relaxed)),
        ),
        (
            "predictions",
            Json::UInt(state.predictions.load(Ordering::Relaxed)),
        ),
        ("cache", cache_json(&state.session.stats())),
    ])
    .to_string()
}

fn error_json(message: &str) -> String {
    Json::obj(vec![("error", Json::str(message))]).to_string()
}

// ------------------------------------------------------------- predictions

/// One decoded prediction request.
struct PredictRequest {
    kernel: Option<String>,
    source: Option<(String, String)>, // (top, source)
    cfg: PragmaConfig,
}

fn predict_route(
    state: &ServeState,
    body: &[u8],
    tel: &mut ReqTelemetry,
) -> Result<String, String> {
    let t_decode = Instant::now();
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| e.to_string())?;

    if let Some(batch) = json::field(&doc, "requests") {
        let items = json::as_array(batch).ok_or("\"requests\" must be an array")?;
        let decoded: Vec<PredictRequest> = items
            .iter()
            .enumerate()
            .map(|(i, item)| decode_request(item).map_err(|e| format!("request {i}: {e}")))
            .collect::<Result<_, _>>()?;
        tel.stage("decode", t_decode.elapsed().as_micros() as u64);
        // fan the batch through the deterministic executor: results come
        // back in request order for any worker count; workers adopt the
        // request's trace so their cache events stay attributable
        let t_predict = Instant::now();
        let req_trace = trace::current_raw();
        let results = par::map("serve/predict", &decoded, |_, req| {
            let _g = trace::adopt_raw(req_trace);
            predict_one(state, req)
        });
        tel.stage("predict", t_predict.elapsed().as_micros() as u64);
        let results: Vec<Json> = results
            .into_iter()
            .map(|r| match r {
                Ok(report) => {
                    tel.absorb(&report);
                    Json::obj(vec![("qor", qor_json(&report.qor))])
                }
                Err(e) => Json::obj(vec![("error", Json::str(e.to_string()))]),
            })
            .collect();
        Ok(Json::obj(vec![
            ("results", Json::Arr(results)),
            ("cache", cache_json(&state.session.stats())),
        ])
        .to_string())
    } else {
        let req = decode_request(&doc)?;
        tel.stage("decode", t_decode.elapsed().as_micros() as u64);
        let report = predict_one(state, &req).map_err(|e| e.to_string())?;
        tel.absorb(&report);
        tel.stage("lower", report.lower_us);
        tel.stage("prepare", report.prepare_us);
        tel.stage("infer", report.infer_us);
        Ok(Json::obj(vec![
            ("qor", qor_json(&report.qor)),
            ("cache", cache_json(&state.session.stats())),
        ])
        .to_string())
    }
}

fn predict_one(state: &ServeState, req: &PredictRequest) -> Result<PredictReport, QorError> {
    state.predictions.fetch_add(1, Ordering::Relaxed);
    if let Some(kernel) = &req.kernel {
        state.session.predict_kernel_report(kernel, &req.cfg)
    } else {
        let (top, source) = req
            .source
            .as_ref()
            .expect("decode guarantees one of the two");
        state.session.predict_source_report(top, source, &req.cfg)
    }
}

fn decode_request(doc: &Json) -> Result<PredictRequest, String> {
    let kernel = json::field(doc, "kernel")
        .map(|v| {
            json::as_str(v)
                .map(str::to_string)
                .ok_or("\"kernel\" must be a string")
        })
        .transpose()?;
    let source = match json::field(doc, "source") {
        Some(v) => {
            let source = json::as_str(v).ok_or("\"source\" must be a string")?;
            let top = json::field(doc, "top")
                .and_then(json::as_str)
                .ok_or("inline \"source\" requires a \"top\" function name")?;
            Some((top.to_string(), source.to_string()))
        }
        None => None,
    };
    if kernel.is_some() == source.is_some() {
        return Err("provide exactly one of \"kernel\" or \"source\"".into());
    }
    let cfg = match json::field(doc, "config") {
        Some(c) => decode_config(c)?,
        None => PragmaConfig::default(),
    };
    Ok(PredictRequest {
        kernel,
        source,
        cfg,
    })
}

fn decode_config(doc: &Json) -> Result<PragmaConfig, String> {
    let mut cfg = PragmaConfig::default();
    if let Some(loops) = json::field(doc, "loops") {
        for (i, entry) in json::as_array(loops)
            .ok_or("\"loops\" must be an array")?
            .iter()
            .enumerate()
        {
            let at = |msg: &str| format!("loops[{i}]: {msg}");
            let path = json::field(entry, "loop").ok_or_else(|| at("missing \"loop\" path"))?;
            let segs: Vec<u16> = json::as_array(path)
                .ok_or_else(|| at("\"loop\" must be an array of indices"))?
                .iter()
                .map(|s| {
                    json::as_u64(s)
                        .and_then(|v| u16::try_from(v).ok())
                        .ok_or_else(|| at("loop index out of range"))
                })
                .collect::<Result<_, _>>()?;
            let id = LoopId::from_path(&segs);
            if let Some(v) = json::field(entry, "pipeline") {
                cfg.set_pipeline(
                    id.clone(),
                    json::as_bool(v).ok_or_else(|| at("\"pipeline\" must be a boolean"))?,
                );
            }
            if let Some(v) = json::field(entry, "flatten") {
                cfg.set_flatten(
                    id.clone(),
                    json::as_bool(v).ok_or_else(|| at("\"flatten\" must be a boolean"))?,
                );
            }
            if let Some(v) = json::field(entry, "unroll") {
                let unroll = match (json::as_str(v), json::as_u64(v)) {
                    (Some("full"), _) => Unroll::Full,
                    (_, Some(0 | 1)) => Unroll::Off,
                    (_, Some(f)) if f <= u64::from(u32::MAX) => Unroll::Factor(f as u32),
                    _ => return Err(at("\"unroll\" must be a factor or \"full\"")),
                };
                cfg.set_unroll(id.clone(), unroll);
            }
        }
    }
    if let Some(arrays) = json::field(doc, "arrays") {
        for (i, entry) in json::as_array(arrays)
            .ok_or("\"arrays\" must be an array")?
            .iter()
            .enumerate()
        {
            let at = |msg: &str| format!("arrays[{i}]: {msg}");
            let array = json::field(entry, "array")
                .and_then(json::as_str)
                .ok_or_else(|| at("missing \"array\" name"))?;
            let dim = json::field(entry, "dim")
                .and_then(json::as_u64)
                .and_then(|v| u32::try_from(v).ok())
                .filter(|&d| d >= 1)
                .ok_or_else(|| at("\"dim\" must be a 1-based integer"))?;
            let kind = match json::field(entry, "kind").and_then(json::as_str) {
                Some("cyclic") | None => PartitionKind::Cyclic,
                Some("block") => PartitionKind::Block,
                Some("complete") => PartitionKind::Complete,
                Some(other) => return Err(at(&format!("unknown partition kind {other:?}"))),
            };
            let factor = json::field(entry, "factor")
                .map(|v| {
                    json::as_u64(v)
                        .and_then(|f| u32::try_from(f).ok())
                        .ok_or_else(|| at("\"factor\" must be an integer"))
                })
                .transpose()?
                .unwrap_or(1);
            cfg.set_partition(array, dim, ArrayPartition { kind, factor });
        }
    }
    Ok(cfg)
}

fn qor_json(qor: &hlsim::Qor) -> Json {
    Json::obj(vec![
        ("latency", Json::UInt(qor.latency)),
        ("lut", Json::UInt(qor.lut)),
        ("ff", Json::UInt(qor.ff)),
        ("dsp", Json::UInt(qor.dsp)),
    ])
}

fn cache_json(stats: &CacheStats) -> Json {
    Json::obj(vec![
        ("hits", Json::UInt(stats.hits)),
        ("misses", Json::UInt(stats.misses)),
        ("evictions", Json::UInt(stats.evictions)),
        ("kernel_hits", Json::UInt(stats.kernel_hits)),
        ("kernel_misses", Json::UInt(stats.kernel_misses)),
        ("len", Json::UInt(stats.len as u64)),
        ("capacity", Json::UInt(stats.capacity as u64)),
    ])
}

// ---------------------------------------------------------------- dse jobs

/// Decodes a `POST /dse` body and submits the job, returning
/// `{"id":"job-N"}`. Validation runs synchronously: bad kernels,
/// strategies, or spaces are a 400 and no job is created.
fn dse_submit(state: &ServeState, body: &[u8]) -> Result<String, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| e.to_string())?;

    let kernel = json::field(&doc, "kernel")
        .and_then(json::as_str)
        .ok_or("\"kernel\" must name a bundled kernel")?;
    let strategy = match json::field(&doc, "strategy") {
        Some(v) => {
            let name = json::as_str(v).ok_or("\"strategy\" must be a string")?;
            StrategyKind::parse(name)
                .ok_or_else(|| format!("unknown strategy {name:?} (random|anneal|genetic)"))?
        }
        None => StrategyKind::Anneal,
    };
    let uint = |key: &str, default: u64| -> Result<u64, String> {
        match json::field(&doc, key) {
            Some(v) => json::as_u64(v).ok_or(format!("\"{key}\" must be a non-negative integer")),
            None => Ok(default),
        }
    };
    let budget = uint("budget", 64)?;
    let seed = uint("seed", 0)?;
    let batch = uint("batch", 8)?;
    let batch = usize::try_from(batch)
        .ok()
        .filter(|&b| b >= 1)
        .ok_or("\"batch\" must be at least 1")?;

    let opts = SearchOptions::new(kernel, strategy, budget)
        .with_seed(seed)
        .with_batch(batch);
    let id = state.runner.submit(opts).map_err(|e| e.to_string())?;
    Ok(Json::obj(vec![("id", Json::str(id))]).to_string())
}

/// Routes `GET`/`DELETE /dse/<id>`.
fn dse_job(
    state: &ServeState,
    method: &str,
    id: &str,
) -> (u16, &'static str, &'static str, String) {
    match method {
        "GET" => match state.runner.get(id) {
            Some(progress) => (
                200,
                "OK",
                "application/json",
                progress_json(id, &progress).to_string(),
            ),
            None => (
                404,
                "Not Found",
                "application/json",
                error_json("no such job"),
            ),
        },
        "DELETE" => {
            if state.runner.delete(id) {
                (
                    200,
                    "OK",
                    "application/json",
                    Json::obj(vec![("deleted", Json::Bool(true))]).to_string(),
                )
            } else {
                (
                    404,
                    "Not Found",
                    "application/json",
                    error_json("no such job"),
                )
            }
        }
        _ => (
            405,
            "Method Not Allowed",
            "application/json",
            error_json("method not allowed"),
        ),
    }
}

fn progress_json(id: &str, progress: &JobProgress) -> Json {
    let front: Vec<Json> = progress
        .front
        .iter()
        .map(|&(fingerprint, latency, area)| {
            Json::obj(vec![
                ("fingerprint", Json::UInt(fingerprint)),
                ("latency", Json::Float(latency)),
                ("area", Json::Float(area)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("id", Json::str(id)),
        ("trace", Json::Str(format!("{:016x}", progress.trace))),
        ("status", Json::str(progress.status.name())),
        ("kernel", Json::str(&progress.kernel)),
        ("strategy", Json::str(&progress.strategy)),
        ("budget", Json::UInt(progress.budget)),
        ("spent", Json::UInt(progress.spent)),
        ("iterations", Json::UInt(progress.iterations)),
        ("front", Json::Arr(front)),
    ];
    if let Some(error) = &progress.error {
        fields.push(("error", Json::str(error)));
    }
    Json::obj(fields)
}

// ----------------------------------------------------------------- metrics

/// Renders the `/metrics` body: server/session gauges first (always live,
/// independent of whether `obs` collection is enabled), then whatever the
/// `obs` registry holds, names sanitized to the Prometheus charset and
/// prefixed `qor_`.
fn render_metrics(state: &ServeState) -> String {
    let mut out = String::new();
    let stats = state.session.stats();
    let mut put = |name: &str, kind: &str, value: String| {
        out.push_str(&format!("# TYPE {name} {kind}\n{name} {value}\n"));
    };
    put(
        "qor_http_requests_total",
        "counter",
        state.requests.load(Ordering::Relaxed).to_string(),
    );
    put(
        "qor_http_client_errors_total",
        "counter",
        state.client_errors.load(Ordering::Relaxed).to_string(),
    );
    put(
        "qor_predictions_total",
        "counter",
        state.predictions.load(Ordering::Relaxed).to_string(),
    );
    put(
        "qor_session_cache_hits_total",
        "counter",
        stats.hits.to_string(),
    );
    put(
        "qor_session_cache_misses_total",
        "counter",
        stats.misses.to_string(),
    );
    put(
        "qor_session_cache_evictions_total",
        "counter",
        stats.evictions.to_string(),
    );
    put(
        "qor_session_kernel_hits_total",
        "counter",
        stats.kernel_hits.to_string(),
    );
    put(
        "qor_session_kernel_misses_total",
        "counter",
        stats.kernel_misses.to_string(),
    );
    put("qor_session_cache_size", "gauge", stats.len.to_string());
    put(
        "qor_session_cache_capacity",
        "gauge",
        stats.capacity.to_string(),
    );

    let dse = state.runner.stats();
    put(
        "qor_dse_jobs_submitted_total",
        "counter",
        dse.submitted.to_string(),
    );
    put(
        "qor_dse_jobs_completed_total",
        "counter",
        dse.completed.to_string(),
    );
    put(
        "qor_dse_jobs_failed_total",
        "counter",
        dse.failed.to_string(),
    );
    put(
        "qor_dse_jobs_cancelled_total",
        "counter",
        dse.cancelled.to_string(),
    );
    put(
        "qor_dse_evaluations_total",
        "counter",
        dse.evaluations.to_string(),
    );
    put(
        "qor_dse_evals_per_second",
        "gauge",
        format_float(dse.evals_per_sec),
    );

    put(
        "qor_http_responses_2xx_total",
        "counter",
        state.status_2xx.load(Ordering::Relaxed).to_string(),
    );
    put(
        "qor_http_responses_4xx_total",
        "counter",
        state.status_4xx.load(Ordering::Relaxed).to_string(),
    );
    put(
        "qor_http_responses_5xx_total",
        "counter",
        state.status_5xx.load(Ordering::Relaxed).to_string(),
    );

    {
        let route_hits = state.route_hits.lock().unwrap();
        if !route_hits.is_empty() {
            out.push_str("# TYPE qor_http_route_requests_total counter\n");
            for (route, hits) in route_hits.iter() {
                out.push_str(&format!(
                    "qor_http_route_requests_total{{route=\"{route}\"}} {hits}\n"
                ));
            }
        }
    }
    {
        // per-(route, status-class) request latency: one Prometheus
        // histogram family with labels, plus exact-quantile gauges
        let latency = state.latency.lock().unwrap();
        if !latency.is_empty() {
            out.push_str("# TYPE qor_http_request_duration_us histogram\n");
            for ((route, class), hist) in latency.iter() {
                let labels = format!("route=\"{route}\",status=\"{class}\"");
                render_histogram(
                    &mut out,
                    "qor_http_request_duration_us",
                    &labels,
                    &hist.detail(),
                );
            }
            out.push_str("# TYPE qor_http_request_duration_us_quantile gauge\n");
            for ((route, class), hist) in latency.iter() {
                let detail = hist.detail();
                for (q, tag) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                    out.push_str(&format!(
                        "qor_http_request_duration_us_quantile{{route=\"{route}\",status=\"{class}\",q=\"{tag}\"}} {}\n",
                        format_float(detail.quantile(q))
                    ));
                }
            }
        }
    }

    for (name, snap) in obs::metrics::snapshot() {
        // the session/* counters above are authoritative; their obs mirrors
        // only move while collection is on and would shadow them — and the
        // serve/http/* mirrors are process-global, so the instance-local
        // stores rendered above are authoritative for this server
        if name.starts_with("session/") || name.starts_with("serve/http/") {
            continue;
        }
        let clean = sanitize_metric_name(&name);
        match snap {
            obs::metrics::Snapshot::Counter(v) => {
                put_one(
                    &mut out,
                    &format!("qor_{clean}_total"),
                    "counter",
                    &v.to_string(),
                );
            }
            obs::metrics::Snapshot::Gauge(v) | obs::metrics::Snapshot::SeriesLast(_, v) => {
                put_one(&mut out, &format!("qor_{clean}"), "gauge", &format_float(v));
            }
            obs::metrics::Snapshot::Histogram { .. } => {
                // a histogram must never be misreported as a gauge or a
                // bare counter pair: emit full cumulative-bucket exposition
                if let Some(detail) = obs::metrics::histogram_detail(&name) {
                    out.push_str(&format!("# TYPE qor_{clean} histogram\n"));
                    render_histogram(&mut out, &format!("qor_{clean}"), "", &detail);
                }
            }
        }
    }
    out
}

/// Appends one `# TYPE` + value line.
fn put_one(out: &mut String, name: &str, kind: &str, value: &str) {
    out.push_str(&format!("# TYPE {name} {kind}\n{name} {value}\n"));
}

/// Appends the `_bucket{le=...}` / `_sum` / `_count` exposition of one
/// histogram (cumulative buckets, closed by `le="+Inf"`). `labels` is an
/// optional pre-rendered `key="value"` list joined into each bucket line.
fn render_histogram(out: &mut String, name: &str, labels: &str, detail: &HistogramDetail) {
    let sep = if labels.is_empty() { "" } else { "," };
    for (le, cumulative) in &detail.buckets {
        let le = if le.is_finite() {
            format_float(*le)
        } else {
            "+Inf".to_string()
        };
        out.push_str(&format!(
            "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}\n"
        ));
    }
    let braces = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    out.push_str(&format!(
        "{name}_sum{braces} {}\n",
        format_float(detail.sum)
    ));
    out.push_str(&format!("{name}_count{braces} {}\n", detail.count));
}

fn format_float(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "NaN".to_string()
    }
}

/// Maps an obs metric name (`dse/mvt/adrs_percent`, `cdfg.nodes_built`)
/// onto the Prometheus charset `[a-zA-Z0-9_]`.
fn sanitize_metric_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_decoding_covers_loops_and_arrays() {
        let doc = json::parse(
            r#"{"loops":[{"loop":[0,1],"pipeline":true,"unroll":4},
                        {"loop":[0],"unroll":"full","flatten":true}],
                "arrays":[{"array":"a","dim":1,"kind":"cyclic","factor":2},
                          {"array":"b","dim":2,"kind":"complete"}]}"#,
        )
        .unwrap();
        let cfg = decode_config(&doc).unwrap();
        let p01 = cfg.loop_pragma(&LoopId::from_path(&[0, 1]));
        assert!(p01.pipeline);
        assert_eq!(p01.unroll, Unroll::Factor(4));
        let p0 = cfg.loop_pragma(&LoopId::from_path(&[0]));
        assert!(p0.flatten);
        assert_eq!(p0.unroll, Unroll::Full);
        assert_eq!(
            cfg.partition("a", 1),
            ArrayPartition {
                kind: PartitionKind::Cyclic,
                factor: 2
            }
        );
        assert_eq!(cfg.partition("b", 2).kind, PartitionKind::Complete);
    }

    #[test]
    fn config_decoding_rejects_bad_shapes() {
        for (doc, needle) in [
            (r#"{"loops":[{"pipeline":true}]}"#, "loop"),
            (r#"{"loops":[{"loop":[0],"unroll":"half"}]}"#, "unroll"),
            (r#"{"loops":[{"loop":[99999999]}]}"#, "index"),
            (r#"{"arrays":[{"dim":1}]}"#, "array"),
            (r#"{"arrays":[{"array":"a","dim":0}]}"#, "dim"),
            (
                r#"{"arrays":[{"array":"a","dim":1,"kind":"diagonal"}]}"#,
                "kind",
            ),
        ] {
            let parsed = json::parse(doc).unwrap();
            let err = decode_config(&parsed).unwrap_err();
            assert!(err.contains(needle), "{doc}: {err}");
        }
    }

    #[test]
    fn request_decoding_requires_exactly_one_input_form() {
        let both = json::parse(r#"{"kernel":"mvt","source":"void f(){}","top":"f"}"#).unwrap();
        assert!(decode_request(&both).is_err());
        let neither = json::parse(r#"{"config":{}}"#).unwrap();
        assert!(decode_request(&neither).is_err());
        let source_without_top = json::parse(r#"{"source":"void f(){}"}"#).unwrap();
        assert!(decode_request(&source_without_top).is_err());
        let ok = json::parse(r#"{"kernel":"mvt"}"#).unwrap();
        assert!(decode_request(&ok).is_ok());
    }

    #[test]
    fn metric_names_sanitize_to_prometheus_charset() {
        assert_eq!(
            sanitize_metric_name("dse/mvt/adrs_percent"),
            "dse_mvt_adrs_percent"
        );
        assert_eq!(sanitize_metric_name("cdfg.nodes_built"), "cdfg_nodes_built");
        assert_eq!(sanitize_metric_name("2fast"), "_2fast");
    }
}
