//! The fleet dispatch wire: [`HttpTransport`] carries one work unit per
//! `POST /v1/fleet/eval` request over the server's existing HTTP layer.
//!
//! Request body (coordinator → worker):
//!
//! ```json
//! {"unit": 3, "job": "job-1", "kernel": "bicg",
//!  "unroll_factors": [1, 4],
//!  "genomes": [[0, 2, 1], [1, 0, 3]]}
//! ```
//!
//! Response body (worker → coordinator):
//!
//! ```json
//! {"unit": 3, "points": [[412.0, 931.5], [388.0, 1104.0]]}
//! ```
//!
//! Scores cross the wire as JSON numbers printed with Rust's shortest
//! round-tripping `f64` formatting and parsed back with `str::parse`, so
//! a fleet run's merged score vector is bit-identical to the worker's —
//! which is what lets the whole distributed run stay byte-identical to a
//! single-process run. The coordinator's active trace id rides the
//! `x-qor-trace` header, so one job's spans chain across the dispatch hop
//! into every worker's flight recorder.

use std::net::SocketAddr;
use std::time::Duration;

use fleet::{Transport, UnitRequest};
use obs::Json;
use search::space::Genome;

use crate::http;
use crate::json;

/// Default per-unit request deadline (connect + read + write each).
pub const DEFAULT_UNIT_TIMEOUT: Duration = Duration::from_secs(10);

/// [`fleet::Transport`] over the server's own HTTP/1.1 wire.
pub struct HttpTransport {
    timeout: Duration,
}

impl HttpTransport {
    /// A transport with the default per-request deadline, honoring a
    /// `QOR_FLEET_TIMEOUT_MS` override.
    pub fn from_env() -> HttpTransport {
        let timeout = std::env::var("QOR_FLEET_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map_or(DEFAULT_UNIT_TIMEOUT, Duration::from_millis);
        HttpTransport { timeout }
    }

    /// A transport with an explicit per-request deadline.
    pub fn with_timeout(timeout: Duration) -> HttpTransport {
        HttpTransport { timeout }
    }
}

impl Transport for HttpTransport {
    fn eval_unit(&self, addr: &str, request: &UnitRequest<'_>) -> Result<Vec<(f64, f64)>, String> {
        let sock: SocketAddr = addr
            .parse()
            .map_err(|_| format!("unparseable worker address {addr:?}"))?;
        let body = encode_unit_request(request).to_string();
        let trace_hex = format!("{:016x}", obs::trace::current_raw());
        let (status, _, reply) = http::client_request_timeout(
            sock,
            "POST",
            "/v1/fleet/eval",
            Some(&body),
            &[("x-qor-trace", &trace_hex)],
            self.timeout,
        )
        .map_err(|e| format!("POST /v1/fleet/eval: {e}"))?;
        if status != 200 {
            let mut detail = reply;
            detail.truncate(200);
            return Err(format!("status {status}: {detail}"));
        }
        decode_unit_response(&reply, request.genomes.len())
    }

    fn probe(&self, addr: &str) -> bool {
        let Ok(sock) = addr.parse::<SocketAddr>() else {
            return false;
        };
        matches!(
            http::client_request_timeout(sock, "GET", "/v1/healthz", None, &[], self.timeout),
            Ok((200, _, _))
        )
    }
}

/// Serializes one work unit as the `POST /v1/fleet/eval` body.
pub fn encode_unit_request(request: &UnitRequest<'_>) -> Json {
    let mut fields = vec![
        ("unit", Json::UInt(request.unit as u64)),
        ("job", Json::str(request.job)),
        ("kernel", Json::str(request.kernel)),
    ];
    if let Some(factors) = request.unroll_factors {
        fields.push((
            "unroll_factors",
            Json::Arr(factors.iter().map(|&f| Json::UInt(u64::from(f))).collect()),
        ));
    }
    fields.push((
        "genomes",
        Json::Arr(
            request
                .genomes
                .iter()
                .map(|g| Json::Arr(g.0.iter().map(|&v| Json::UInt(u64::from(v))).collect()))
                .collect(),
        ),
    ));
    Json::obj(fields)
}

/// Decoded `POST /v1/fleet/eval` body, worker side.
#[derive(Debug)]
pub struct UnitBody {
    /// Unit index (echoed back for log correlation).
    pub unit: u64,
    /// Kernel whose pragma space the genomes index.
    pub kernel: String,
    /// Unroll-factor override the coordinator's space was built with.
    pub unroll_factors: Option<Vec<u32>>,
    /// The candidates to score, in unit order.
    pub genomes: Vec<Genome>,
}

/// Parses a `POST /v1/fleet/eval` request body.
///
/// # Errors
///
/// A human-readable message for any missing or mistyped field (the server
/// maps it to a 400).
pub fn decode_unit_body(doc: &Json) -> Result<UnitBody, String> {
    let unit = json::field(doc, "unit").and_then(json::as_u64).unwrap_or(0);
    let kernel = json::field(doc, "kernel")
        .and_then(json::as_str)
        .ok_or("\"kernel\" must be a string")?
        .to_string();
    let unroll_factors = match json::field(doc, "unroll_factors") {
        Some(v) => Some(
            json::as_array(v)
                .ok_or("\"unroll_factors\" must be an array")?
                .iter()
                .map(|f| {
                    json::as_u64(f)
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or("\"unroll_factors\" entries must be u32 integers")
                })
                .collect::<Result<Vec<u32>, _>>()?,
        ),
        None => None,
    };
    let genomes = json::field(doc, "genomes")
        .and_then(json::as_array)
        .ok_or("\"genomes\" must be an array of genomes")?
        .iter()
        .map(|g| {
            json::as_array(g)
                .ok_or("each genome must be an array of integers")?
                .iter()
                .map(|v| {
                    json::as_u64(v)
                        .and_then(|v| u16::try_from(v).ok())
                        .ok_or("genome entries must be u16 integers")
                })
                .collect::<Result<Vec<u16>, _>>()
                .map(Genome)
        })
        .collect::<Result<Vec<Genome>, _>>()?;
    Ok(UnitBody {
        unit,
        kernel,
        unroll_factors,
        genomes,
    })
}

/// Serializes the worker's scores as the `POST /v1/fleet/eval` response.
pub fn encode_unit_response(unit: u64, points: &[(f64, f64)]) -> Json {
    Json::obj(vec![
        ("unit", Json::UInt(unit)),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|&(lat, area)| Json::Arr(vec![Json::Float(lat), Json::Float(area)]))
                    .collect(),
            ),
        ),
    ])
}

/// Parses a worker's response back into score pairs, enforcing the
/// one-point-per-genome contract.
///
/// # Errors
///
/// A transport-grade message for malformed JSON or a length mismatch (the
/// dispatcher treats both as a failed attempt).
pub fn decode_unit_response(body: &str, expected: usize) -> Result<Vec<(f64, f64)>, String> {
    let doc = json::parse(body).map_err(|e| format!("malformed reply: {e}"))?;
    let points = json::field(&doc, "points")
        .and_then(json::as_array)
        .ok_or("reply has no \"points\" array")?
        .iter()
        .map(|p| {
            let pair = json::as_array(p).filter(|a| a.len() == 2);
            match pair {
                Some([lat, area]) => match (json::as_f64(lat), json::as_f64(area)) {
                    (Some(lat), Some(area)) => Ok((lat, area)),
                    _ => Err("non-numeric point".to_string()),
                },
                _ => Err("each point must be a [latency, area] pair".to_string()),
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    if points.len() != expected {
        return Err(format!(
            "reply carries {} points for {expected} genomes",
            points.len()
        ));
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_request_and_response_round_trip_bit_exactly() {
        let genomes = vec![Genome(vec![0, 7, 2]), Genome(vec![65535, 1, 0])];
        let request = UnitRequest {
            unit: 3,
            job: "job-9",
            kernel: "bicg",
            unroll_factors: Some(&[1, 4]),
            genomes: &genomes,
        };
        let body = encode_unit_request(&request).to_string();
        let decoded = decode_unit_body(&json::parse(&body).unwrap()).unwrap();
        assert_eq!(decoded.unit, 3);
        assert_eq!(decoded.kernel, "bicg");
        assert_eq!(decoded.unroll_factors.as_deref(), Some(&[1u32, 4][..]));
        assert_eq!(decoded.genomes, genomes);

        // scores must survive the wire bit-for-bit, including awkward ones
        let points = vec![(412.0, 931.5), (0.1 + 0.2, 1.0e-12), (f64::MAX, 3.0)];
        let reply = encode_unit_response(3, &points).to_string();
        let back = decode_unit_response(&reply, points.len()).unwrap();
        for ((al, aa), (bl, ba)) in points.iter().zip(&back) {
            assert_eq!(al.to_bits(), bl.to_bits());
            assert_eq!(aa.to_bits(), ba.to_bits());
        }
        assert!(decode_unit_response(&reply, 2).is_err(), "length mismatch");
    }

    #[test]
    fn malformed_unit_bodies_are_rejected_with_messages() {
        for (body, needle) in [
            (r#"{"genomes":[[0]]}"#, "kernel"),
            (r#"{"kernel":"fir"}"#, "genomes"),
            (r#"{"kernel":"fir","genomes":[[70000]]}"#, "u16"),
            (
                r#"{"kernel":"fir","genomes":[[0]],"unroll_factors":"x"}"#,
                "unroll",
            ),
        ] {
            let doc = json::parse(body).unwrap();
            let err = decode_unit_body(&doc).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }
}
