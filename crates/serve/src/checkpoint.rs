//! Versioned, checksummed binary checkpoints for the hierarchical model.
//!
//! # Format (version 1)
//!
//! All integers are little-endian. A checkpoint is one contiguous byte
//! stream:
//!
//! | field      | size        | value                                     |
//! |------------|-------------|-------------------------------------------|
//! | magic      | 8           | `"QORCKPT\0"`                             |
//! | version    | u32         | `1`                                       |
//! | kind       | u8          | `0` = full model, `1` = single bank       |
//! | payload    | …           | kind-specific records (below)             |
//! | checksum   | u64         | FNV-1a over every preceding byte          |
//!
//! A **full model** payload is a [`TrainOptions`] record (enough to rebuild
//! the architecture with [`HierarchicalModel::new`]) followed by a bank
//! count and that many bank records in [`qor_core::BANKS`] order. A
//! **single bank** payload is one bank record. A bank record is:
//!
//! | field        | size             | value                             |
//! |--------------|------------------|-----------------------------------|
//! | name         | u16 len + bytes  | `gnn_p` / `gnn_np` / `gnn_g`      |
//! | normalizer   | u32 dim + 2·dim f32 | target means then stds         |
//! | tensor count | u32              | number of parameter tensors       |
//! | tensors      | …                | name, dtype u8 (`0` = f32), rows  |
//! |              |                  | u32, cols u32, rows·cols f32      |
//!
//! Tensors appear in [`tensor::ParamStore`] registration order, which is
//! deterministic for a given architecture.
//!
//! # Guarantees
//!
//! * **Bit-exact round-trip**: weights and normalizer statistics are stored
//!   as raw IEEE-754 bits, so a loaded model produces bit-identical
//!   predictions to the model that was saved.
//! * **No panics on malformed input**: the checksum is verified over the
//!   whole stream before any record is parsed, so truncation and bit flips
//!   surface as [`QorError::Corrupt`]; an unknown version as
//!   [`QorError::UnsupportedVersion`]; tensors whose shapes do not match
//!   the rebuilt architecture as [`QorError::Shape`].
//! * **Versioned**: readers reject versions they do not understand instead
//!   of misparsing them. [`ConvKind::code`] values are append-only for the
//!   same reason.

use gnn::{ConvKind, Normalizer};
use qor_core::wire::{self, put_f32, put_str, put_u32, put_u64, Cursor};
use qor_core::{DataOptions, HierarchicalModel, QorError, TrainOptions, BANKS};
use tensor::{Matrix, ParamStore};

/// Leading magic bytes of every checkpoint.
pub const MAGIC: [u8; 8] = *b"QORCKPT\0";

/// The format version this build writes (and the only one it reads).
pub const FORMAT_VERSION: u32 = 1;

/// `kind` byte of a full-model checkpoint.
const KIND_MODEL: u8 = 0;
/// `kind` byte of a single-bank checkpoint.
const KIND_BANK: u8 = 1;
/// The only tensor dtype of format version 1.
const DTYPE_F32: u8 = 0;

// ------------------------------------------------------------------ encode
//
// The byte-level primitives (integer/float/string encoders, the sealed
// FNV-1a frame, and the bounds-checked payload cursor) live in
// `qor_core::wire`, shared with the `.qorjob` format in `crates/search`.

fn put_options(out: &mut Vec<u8>, opts: &TrainOptions) {
    out.push(opts.conv.code());
    put_u32(out, opts.hidden as u32);
    put_u32(out, opts.inner_epochs as u32);
    put_u32(out, opts.global_epochs as u32);
    put_u32(out, opts.batch_size as u32);
    put_f32(out, opts.lr);
    put_u64(out, opts.seed);
    put_u32(out, opts.data.max_designs_per_kernel as u32);
    put_u64(out, opts.data.seed);
    put_u32(out, opts.graph_max_nodes as u32);
    put_u32(out, opts.log_every as u32);
    out.push(u8::from(opts.shared_inner));
}

fn put_bank(out: &mut Vec<u8>, name: &str, store: &ParamStore, norm: &Normalizer) {
    put_str(out, name);
    put_u32(out, norm.dim() as u32);
    for v in norm.mean() {
        put_f32(out, *v);
    }
    for v in norm.std() {
        put_f32(out, *v);
    }
    let count = store.entries().count();
    put_u32(out, count as u32);
    for (pname, m) in store.entries() {
        put_str(out, pname);
        out.push(DTYPE_F32);
        put_u32(out, m.rows() as u32);
        put_u32(out, m.cols() as u32);
        for v in m.as_slice() {
            put_f32(out, *v);
        }
    }
}

fn seal(out: Vec<u8>) -> Vec<u8> {
    wire::seal(out)
}

fn header(kind: u8) -> Vec<u8> {
    wire::header(&MAGIC, FORMAT_VERSION, kind)
}

/// Encodes a full model (architecture, weights, normalizers) as a
/// checkpoint byte stream.
pub fn save_model(model: &HierarchicalModel) -> Vec<u8> {
    let _sp = obs::span("checkpoint_save");
    let mut out = header(KIND_MODEL);
    put_options(&mut out, model.options());
    put_u32(&mut out, BANKS.len() as u32);
    for (name, store) in model.banks() {
        let norm = model.normalizer(name).expect("bank has a normalizer");
        put_bank(&mut out, name, store, norm);
    }
    obs::metrics::counter_add("checkpoint/saves", 1);
    seal(out)
}

/// Encodes one parameter bank (`gnn_p`, `gnn_np` or `gnn_g`) with its
/// target normalizer.
///
/// # Errors
///
/// [`QorError::Corrupt`] for an unknown bank name.
pub fn save_bank(model: &HierarchicalModel, bank: &str) -> Result<Vec<u8>, QorError> {
    let (_, store) = model
        .banks()
        .into_iter()
        .find(|(name, _)| *name == bank)
        .ok_or_else(|| QorError::Corrupt(format!("unknown bank {bank:?}")))?;
    let norm = model.normalizer(bank).expect("bank has a normalizer");
    let mut out = header(KIND_BANK);
    put_bank(&mut out, bank, store, norm);
    Ok(seal(out))
}

/// Writes a full-model checkpoint to `path`.
///
/// # Errors
///
/// [`QorError::Io`] on filesystem failure.
pub fn save_model_file(
    path: impl AsRef<std::path::Path>,
    model: &HierarchicalModel,
) -> Result<(), QorError> {
    std::fs::write(path, save_model(model))?;
    Ok(())
}

// ------------------------------------------------------------------ decode

/// Verifies magic, version and checksum; returns `(kind, payload)`.
fn open(bytes: &[u8]) -> Result<(u8, Cursor<'_>), QorError> {
    wire::open(bytes, &MAGIC, FORMAT_VERSION)
}

fn read_options(c: &mut Cursor<'_>) -> Result<TrainOptions, QorError> {
    let code = c.u8("conv kind")?;
    let conv = ConvKind::from_code(code)
        .ok_or_else(|| QorError::Corrupt(format!("unknown conv kind code {code}")))?;
    let hidden = c.u32("hidden")? as usize;
    let inner_epochs = c.u32("inner_epochs")? as usize;
    let global_epochs = c.u32("global_epochs")? as usize;
    let batch_size = c.u32("batch_size")? as usize;
    let lr = c.f32("lr")?;
    let seed = c.u64("seed")?;
    let max_designs_per_kernel = c.u32("max_designs_per_kernel")? as usize;
    let data_seed = c.u64("data seed")?;
    let graph_max_nodes = c.u32("graph_max_nodes")? as usize;
    let log_every = c.u32("log_every")? as usize;
    let shared_inner = match c.u8("shared_inner")? {
        0 => false,
        1 => true,
        b => return Err(QorError::Corrupt(format!("bad shared_inner byte {b}"))),
    };
    if hidden == 0 || hidden > 1 << 16 {
        return Err(QorError::Corrupt(format!(
            "implausible hidden width {hidden}"
        )));
    }
    Ok(TrainOptions {
        conv,
        hidden,
        inner_epochs,
        global_epochs,
        batch_size,
        lr,
        seed,
        data: DataOptions {
            max_designs_per_kernel,
            seed: data_seed,
        },
        graph_max_nodes,
        log_every,
        shared_inner,
    })
}

/// Reads one bank record into the matching bank of `model`; returns the
/// bank name.
fn read_bank_into(c: &mut Cursor<'_>, model: &mut HierarchicalModel) -> Result<String, QorError> {
    let bank = c.str("bank name")?.to_string();
    if !BANKS.contains(&bank.as_str()) {
        return Err(QorError::Corrupt(format!("unknown bank {bank:?}")));
    }
    let dim = c.u32("normalizer dim")? as usize;
    if dim > 1 << 10 {
        return Err(QorError::Corrupt(format!(
            "implausible normalizer dim {dim}"
        )));
    }
    let mean = c.f32s(dim, "normalizer means")?;
    let std = c.f32s(dim, "normalizer stds")?;
    model.set_normalizer(&bank, Normalizer::from_stats(mean, std))?;

    let count = c.u32("tensor count")? as usize;
    let store = model
        .banks_mut()
        .into_iter()
        .find(|(name, _)| *name == bank)
        .map(|(_, store)| store)
        .expect("bank name validated above");
    let expected = store.entries().count();
    if count != expected {
        return Err(QorError::Corrupt(format!(
            "bank {bank:?} has {count} tensors, architecture expects {expected}"
        )));
    }
    for _ in 0..count {
        let pname = c.str("tensor name")?.to_string();
        let dtype = c.u8("tensor dtype")?;
        if dtype != DTYPE_F32 {
            return Err(QorError::Corrupt(format!(
                "tensor {pname:?}: unknown dtype {dtype}"
            )));
        }
        let rows = c.u32("tensor rows")? as usize;
        let cols = c.u32("tensor cols")? as usize;
        let len = rows
            .checked_mul(cols)
            .ok_or_else(|| QorError::Corrupt(format!("tensor {pname:?}: shape overflow")))?;
        let data = c.f32s(len, "tensor data")?;
        store.import(&pname, Matrix::from_vec(rows, cols, data))?;
    }
    Ok(bank)
}

/// Decodes a full-model checkpoint, rebuilding the architecture from the
/// stored [`TrainOptions`] and restoring all weights and normalizers.
///
/// # Errors
///
/// [`QorError::Corrupt`] for malformed bytes (bad magic, truncation,
/// checksum mismatch, unknown records), [`QorError::UnsupportedVersion`]
/// for future format versions, [`QorError::Shape`] for tensor records that
/// do not match the rebuilt architecture. Never panics.
pub fn load_model(bytes: &[u8]) -> Result<HierarchicalModel, QorError> {
    let _sp = obs::span("checkpoint_load");
    let (kind, mut c) = open(bytes)?;
    if kind != KIND_MODEL {
        return Err(QorError::Corrupt(format!(
            "expected a model checkpoint, found kind {kind}"
        )));
    }
    let opts = read_options(&mut c)?;
    let mut model = HierarchicalModel::new(&opts);
    let banks = c.u32("bank count")? as usize;
    if banks != BANKS.len() {
        return Err(QorError::Corrupt(format!(
            "model checkpoint has {banks} banks, expected {}",
            BANKS.len()
        )));
    }
    let mut seen = Vec::with_capacity(banks);
    for _ in 0..banks {
        let name = read_bank_into(&mut c, &mut model)?;
        if seen.contains(&name) {
            return Err(QorError::Corrupt(format!("duplicate bank {name:?}")));
        }
        seen.push(name);
    }
    if !c.done() {
        return Err(QorError::Corrupt(format!(
            "{} trailing bytes after the last record",
            c.remaining()
        )));
    }
    obs::metrics::counter_add("checkpoint/loads", 1);
    Ok(model)
}

/// Decodes a single-bank checkpoint into the matching bank of an existing
/// model (weights and normalizer); returns the bank name restored.
///
/// # Errors
///
/// As [`load_model`], plus [`QorError::Corrupt`] when the stream is a
/// full-model checkpoint.
pub fn load_bank_into(bytes: &[u8], model: &mut HierarchicalModel) -> Result<String, QorError> {
    let (kind, mut c) = open(bytes)?;
    if kind != KIND_BANK {
        return Err(QorError::Corrupt(format!(
            "expected a bank checkpoint, found kind {kind}"
        )));
    }
    let name = read_bank_into(&mut c, model)?;
    if !c.done() {
        return Err(QorError::Corrupt(format!(
            "{} trailing bytes after the last record",
            c.remaining()
        )));
    }
    Ok(name)
}

/// Reads a full-model checkpoint from `path`.
///
/// # Errors
///
/// [`QorError::Io`] on filesystem failure; otherwise as [`load_model`].
pub fn load_model_file(path: impl AsRef<std::path::Path>) -> Result<HierarchicalModel, QorError> {
    let bytes = std::fs::read(path)?;
    load_model(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> HierarchicalModel {
        HierarchicalModel::new(&TrainOptions::quick().with_hidden(10).with_seed(3))
    }

    #[test]
    fn model_checkpoint_round_trips_options_and_weights() {
        let model = tiny_model();
        let bytes = save_model(&model);
        assert_eq!(&bytes[..8], &MAGIC);
        let restored = load_model(&bytes).unwrap();
        assert_eq!(restored.options(), model.options());
        for ((_, a), (_, b)) in model.banks().into_iter().zip(restored.banks()) {
            let av: Vec<_> = a.entries().collect();
            let bv: Vec<_> = b.entries().collect();
            assert_eq!(av.len(), bv.len());
            for ((an, am), (bn, bm)) in av.iter().zip(&bv) {
                assert_eq!(an, bn);
                assert_eq!(am.as_slice(), bm.as_slice(), "weights differ in {an}");
            }
        }
        for bank in BANKS {
            assert_eq!(model.normalizer(bank), restored.normalizer(bank));
        }
    }

    #[test]
    fn bank_checkpoint_round_trips_one_bank() {
        let model = tiny_model();
        let bytes = save_bank(&model, "gnn_np").unwrap();
        // restore into a differently-seeded model: only gnn_np converges
        let mut other = HierarchicalModel::new(&TrainOptions::quick().with_hidden(10).with_seed(9));
        let name = load_bank_into(&bytes, &mut other).unwrap();
        assert_eq!(name, "gnn_np");
        let src: Vec<_> = model.banks()[1]
            .1
            .entries()
            .map(|(_, m)| m.clone())
            .collect();
        let dst: Vec<_> = other.banks()[1]
            .1
            .entries()
            .map(|(_, m)| m.clone())
            .collect();
        for (a, b) in src.iter().zip(&dst) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        assert!(matches!(
            save_bank(&model, "gnn_x"),
            Err(QorError::Corrupt(_))
        ));
    }

    #[test]
    fn checkpoints_are_deterministic() {
        let model = tiny_model();
        assert_eq!(save_model(&model), save_model(&model));
    }

    #[test]
    fn model_and_bank_kinds_do_not_cross_load() {
        let model = tiny_model();
        let bank = save_bank(&model, "gnn_p").unwrap();
        assert!(matches!(load_model(&bank), Err(QorError::Corrupt(_))));
        let full = save_model(&model);
        let mut m = tiny_model();
        assert!(matches!(
            load_bank_into(&full, &mut m),
            Err(QorError::Corrupt(_))
        ));
    }
}
