//! `qor-serve` — the QoR-prediction inference server.
//!
//! ```text
//! qor-serve [--addr HOST:PORT] [--checkpoint FILE | --train-quick]
//!           [--save FILE] [--cache-cap N] [--self-test]
//! ```
//!
//! Model source (first match wins):
//!
//! * `--checkpoint FILE` — load a checkpoint written by `--save` or
//!   `serve::checkpoint::save_model_file`.
//! * `--train-quick` — train on the bundled kernels with
//!   `TrainOptions::quick()` (a few minutes), then serve.
//! * neither — serve an untrained model (weights at init); useful only for
//!   smoke tests.
//!
//! `--save FILE` writes the model (after loading/training) as a checkpoint
//! and keeps serving. `--self-test` skips the network-facing loop: it binds
//! an ephemeral port, drives the full request matrix against itself
//! (health, single + batched predictions, cache-hit verification, metrics,
//! a `/dse` search-job cycle, clean shutdown) and exits non-zero on any
//! mismatch — this is the CI server gate.

use std::process::ExitCode;

use qor_core::{HierarchicalModel, Session, TrainOptions};
use serve::http::client_request;
use serve::Server;

struct Args {
    addr: String,
    checkpoint: Option<String>,
    train_quick: bool,
    save: Option<String>,
    cache_cap: Option<usize>,
    self_test: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7845".to_string(),
        checkpoint: None,
        train_quick: false,
        save: None,
        cache_cap: None,
        self_test: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint")?),
            "--train-quick" => args.train_quick = true,
            "--save" => args.save = Some(value("--save")?),
            "--cache-cap" => {
                args.cache_cap = Some(
                    value("--cache-cap")?
                        .parse()
                        .map_err(|_| "--cache-cap must be an integer".to_string())?,
                )
            }
            "--self-test" => args.self_test = true,
            "--help" | "-h" => {
                println!(
                    "usage: qor-serve [--addr HOST:PORT] [--checkpoint FILE | --train-quick] \
                     [--save FILE] [--cache-cap N] [--self-test]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn build_model(args: &Args) -> Result<HierarchicalModel, String> {
    if let Some(path) = &args.checkpoint {
        eprintln!("loading checkpoint {path}");
        return serve::load_model_file(path).map_err(|e| format!("loading {path}: {e}"));
    }
    if args.train_quick {
        eprintln!("training on bundled kernels (quick profile)");
        let (model, stats) = HierarchicalModel::train_on_kernels(&TrainOptions::quick())
            .map_err(|e| format!("training: {e}"))?;
        eprintln!(
            "trained: GNN_g latency MAPE {:.2}% over {} test designs",
            stats.global.latency_mape, stats.global.n
        );
        return Ok(model);
    }
    eprintln!("serving an UNTRAINED model (pass --checkpoint or --train-quick)");
    Ok(HierarchicalModel::new(&TrainOptions::quick()))
}

fn main() -> ExitCode {
    let _obs = obs::init();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("qor-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.self_test {
        return match self_test() {
            Ok(()) => {
                println!("self-test ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("self-test FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let model = match build_model(&args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("qor-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.save {
        if let Err(e) = serve::save_model_file(path, &model) {
            eprintln!("qor-serve: saving {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("checkpoint written to {path}");
    }
    let session = match args.cache_cap {
        Some(cap) => Session::with_capacity(model, cap),
        None => Session::new(model),
    };
    let server = match Server::bind(&args.addr, session) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("qor-serve: binding {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => eprintln!("listening on http://{addr}"),
        Err(_) => eprintln!("listening on {}", args.addr),
    }
    server.run();
    ExitCode::SUCCESS
}

/// End-to-end smoke test against an in-process server (the CI gate; no
/// curl in the build environment).
fn self_test() -> Result<(), String> {
    use pragma::{LoopId, PragmaConfig};
    use serve::json;

    let io = |e: std::io::Error| format!("io: {e}");

    // 1. checkpoint round-trip must be bit-exact
    let opts = TrainOptions::quick().with_hidden(12);
    let model = HierarchicalModel::new(&opts);
    let func =
        std::sync::Arc::new(kernels::lower_kernel("mvt").map_err(|e| format!("lower mvt: {e}"))?);
    let mut cfg = PragmaConfig::default();
    cfg.set_pipeline(LoopId::from_path(&[0]), true);
    let direct = model.predict(&func, &cfg);
    let restored = serve::load_model(&serve::save_model(&model))
        .map_err(|e| format!("checkpoint round-trip: {e}"))?;
    if restored.predict(&func, &cfg) != direct {
        return Err("restored model diverges from the saved one".into());
    }
    println!("checkpoint round-trip: bit-exact");

    // 2. serve the model and drive the endpoints
    let handle = Server::bind("127.0.0.1:0", Session::with_capacity(model, 64))
        .map_err(io)?
        .spawn()
        .map_err(io)?;
    let addr = handle.addr();
    let result = (|| {
        let (status, body) = client_request(addr, "GET", "/healthz", None).map_err(io)?;
        if status != 200 || !body.contains("\"ok\"") {
            return Err(format!("healthz: status {status}, body {body}"));
        }

        // the response qor must equal the library-path prediction bit-exactly
        let latency_of = |body: &str| -> Result<u64, String> {
            let doc = json::parse(body).map_err(|e| format!("response: {e}"))?;
            json::field(&doc, "qor")
                .and_then(|q| json::field(q, "latency"))
                .and_then(json::as_u64)
                .ok_or_else(|| format!("no qor.latency in {body}"))
        };
        let request = r#"{"kernel":"mvt","config":{"loops":[{"loop":[0],"pipeline":true}]}}"#;
        let (status, first) =
            client_request(addr, "POST", "/predict", Some(request)).map_err(io)?;
        if status != 200 {
            return Err(format!("predict: status {status}, body {first}"));
        }
        if latency_of(&first)? != direct.latency {
            return Err(format!(
                "server prediction diverges from the library path: {} vs {}",
                latency_of(&first)?,
                direct.latency
            ));
        }
        let (status, second) =
            client_request(addr, "POST", "/predict", Some(request)).map_err(io)?;
        if status != 200 || latency_of(&second)? != direct.latency {
            return Err(format!("repeat predict: status {status}, body {second}"));
        }
        println!(
            "single predict: matches library path ({} cycles)",
            direct.latency
        );

        let batch = r#"{"requests":[{"kernel":"mvt","config":{"loops":[{"loop":[0],"pipeline":true}]}},{"kernel":"bicg"},{"kernel":"mvt","config":{"loops":[{"loop":[0],"pipeline":true}]}}]}"#;
        let (status, body) = client_request(addr, "POST", "/predict", Some(batch)).map_err(io)?;
        if status != 200 || body.matches("\"qor\"").count() != 3 {
            return Err(format!("batch predict: status {status}, body {body}"));
        }

        let (status, metrics) = client_request(addr, "GET", "/metrics", None).map_err(io)?;
        if status != 200 || !metrics.contains("qor_session_cache_hits_total") {
            return Err(format!("metrics: status {status}"));
        }
        // real Prometheus histogram exposition for request latency:
        // cumulative le-buckets closed by +Inf, plus quantile gauges
        for needle in [
            "# TYPE qor_http_request_duration_us histogram",
            "qor_http_request_duration_us_bucket{route=\"predict\",status=\"2xx\",le=\"",
            "le=\"+Inf\"}",
            "qor_http_request_duration_us_count{route=\"predict\",status=\"2xx\"}",
            "qor_http_request_duration_us_quantile{route=\"predict\",status=\"2xx\",q=\"0.99\"}",
            "qor_http_responses_2xx_total",
            "qor_http_route_requests_total{route=\"predict\"}",
        ] {
            if !metrics.contains(needle) {
                return Err(format!("metrics missing {needle:?}: {metrics}"));
            }
        }
        println!("metrics: histogram buckets + quantile gauges exposed");

        // tracing: an inbound x-qor-trace header must be echoed and show
        // up in the flight recorder via /debug/requests
        let trace_hex = "00000000deadbeef";
        let (status, headers, _) = serve::http::client_request_with(
            addr,
            "POST",
            "/predict",
            Some(request),
            &[("x-qor-trace", trace_hex)],
        )
        .map_err(io)?;
        if status != 200 {
            return Err(format!("traced predict: status {status}"));
        }
        if headers
            .iter()
            .find(|(n, _)| n == "x-qor-trace")
            .map(|(_, v)| v.as_str())
            != Some(trace_hex)
        {
            return Err(format!("x-qor-trace not echoed: {headers:?}"));
        }
        let (status, dump) = client_request(addr, "GET", "/debug/requests", None).map_err(io)?;
        if status != 200 {
            return Err(format!("debug/requests: status {status}"));
        }
        for needle in [
            &format!("\"trace\":\"{trace_hex}\"") as &str,
            "\"kind\":\"http\"",
            "\"label\":\"POST /predict\"",
            "\"stages\":[",
            "\"cache_hits\":",
        ] {
            if !dump.contains(needle) {
                return Err(format!("debug/requests missing {needle:?}: {dump}"));
            }
        }
        let (status, vars) = client_request(addr, "GET", "/debug/vars", None).map_err(io)?;
        if status != 200 {
            return Err(format!("debug/vars: status {status}"));
        }
        for needle in ["\"version\":", "\"threads\":", "\"cache\":", "\"flight\":"] {
            if !vars.contains(needle) {
                return Err(format!("debug/vars missing {needle:?}: {vars}"));
            }
        }
        println!("tracing: x-qor-trace echoed; /debug/requests + /debug/vars ok");

        let (status, _) =
            client_request(addr, "POST", "/predict", Some("{not json")).map_err(io)?;
        if status != 400 {
            return Err(format!("bad body must 400, got {status}"));
        }
        let (status, _) = client_request(addr, "GET", "/nope", None).map_err(io)?;
        if status != 404 {
            return Err(format!("unknown route must 404, got {status}"));
        }

        // 3. dse job cycle: submit, poll to done, check metrics, delete
        let job = r#"{"kernel":"fir","strategy":"genetic","budget":6,"seed":5,"batch":3}"#;
        let (status, body) = client_request(addr, "POST", "/dse", Some(job)).map_err(io)?;
        if status != 200 {
            return Err(format!("dse submit: status {status}, body {body}"));
        }
        let doc = json::parse(&body).map_err(|e| format!("dse submit response: {e}"))?;
        let id = json::field(&doc, "id")
            .and_then(json::as_str)
            .ok_or_else(|| format!("no job id in {body}"))?
            .to_string();
        let path = format!("/dse/{id}");
        let mut final_status = String::new();
        let mut spent = 0u64;
        for _ in 0..1500 {
            let (status, body) = client_request(addr, "GET", &path, None).map_err(io)?;
            if status != 200 {
                return Err(format!("dse poll: status {status}, body {body}"));
            }
            let doc = json::parse(&body).map_err(|e| format!("dse poll response: {e}"))?;
            final_status = json::field(&doc, "status")
                .and_then(json::as_str)
                .ok_or_else(|| format!("no status in {body}"))?
                .to_string();
            if final_status != "running" {
                spent = json::field(&doc, "spent")
                    .and_then(json::as_u64)
                    .ok_or_else(|| format!("no spent in {body}"))?;
                if !body.contains("\"front\"") || body.matches("\"fingerprint\"").count() == 0 {
                    return Err(format!("finished job published no front: {body}"));
                }
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        if final_status != "done" {
            return Err(format!("dse job ended as {final_status:?}, expected done"));
        }
        if spent == 0 || spent > 6 {
            return Err(format!("dse spent {spent} outside the budget of 6"));
        }
        let (status, metrics) = client_request(addr, "GET", "/metrics", None).map_err(io)?;
        if status != 200
            || !metrics.contains("qor_dse_jobs_submitted_total 1")
            || !metrics.contains("qor_dse_jobs_completed_total 1")
            || !metrics.contains("qor_dse_evals_per_second")
        {
            return Err(format!("dse metrics missing: {metrics}"));
        }
        let (status, body) = client_request(addr, "DELETE", &path, None).map_err(io)?;
        if status != 200 || !body.contains("true") {
            return Err(format!("dse delete: status {status}, body {body}"));
        }
        let (status, _) = client_request(addr, "GET", &path, None).map_err(io)?;
        if status != 404 {
            return Err(format!("deleted job must 404, got {status}"));
        }
        println!("dse job cycle: submitted, ran to done ({spent}/6 evals), deleted");
        Ok(())
    })();
    let stats = handle.stats();
    handle.shutdown();
    result?;
    if stats.hits == 0 {
        return Err("server session recorded no cache hits".into());
    }
    println!(
        "cache: {} hits / {} misses over {} predictions",
        stats.hits,
        stats.misses,
        stats.hits + stats.misses
    );
    Ok(())
}
