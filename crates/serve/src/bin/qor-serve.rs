//! `qor-serve` — the QoR-prediction inference server.
//!
//! ```text
//! qor-serve [--addr HOST:PORT] [--checkpoint FILE | --train-quick]
//!           [--model NAME=FILE]... [--save FILE] [--cache-cap N]
//!           [--batch-max N] [--batch-wait-us N] [--no-batch] [--self-test]
//! ```
//!
//! Default-model source (first match wins):
//!
//! * `--checkpoint FILE` — load a checkpoint written by `--save` or
//!   `serve::checkpoint::save_model_file`.
//! * `--train-quick` — train on the bundled kernels with
//!   `TrainOptions::quick()` (a few minutes), then serve.
//! * neither — serve an untrained model (weights at init); useful only for
//!   smoke tests.
//!
//! `--model NAME=FILE` (repeatable) registers additional named model
//! versions from checkpoints; requests select one with `"model": "NAME"`.
//! All versions can also be hot-reloaded at runtime via
//! `PUT /v1/models/<name>`.
//!
//! `--batch-max` / `--batch-wait-us` tune the cross-request batching
//! queue (defaults 32 items / 500 µs, also settable via `QOR_BATCH_MAX`
//! and `QOR_BATCH_WAIT_US`); `--no-batch` serves every request inline on
//! its connection thread instead.
//!
//! `--save FILE` writes the default model (after loading/training) as a
//! checkpoint and keeps serving. `--self-test` skips the network-facing
//! loop: it binds an ephemeral port, drives the full request matrix
//! against itself (health, single + batched predictions through the
//! batching queue, both flush triggers, a registry hot-reload cycle,
//! metrics, a `/v1/dse` search-job cycle, clean shutdown) and exits
//! non-zero on any mismatch — this is the CI server gate.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use qor_core::{HierarchicalModel, TrainOptions};
use serve::http::client_request;
use serve::{BatchOptions, DispatchMode, ModelRegistry, Server, ServerConfig};

struct Args {
    addr: String,
    checkpoint: Option<String>,
    models: Vec<(String, String)>,
    train_quick: bool,
    save: Option<String>,
    cache_cap: Option<usize>,
    batch_max: Option<usize>,
    batch_wait_us: Option<u64>,
    no_batch: bool,
    self_test: bool,
    fleet_self_test: bool,
    jobs_dir: Option<String>,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7845".to_string(),
        checkpoint: None,
        models: Vec::new(),
        train_quick: false,
        save: None,
        cache_cap: None,
        batch_max: None,
        batch_wait_us: None,
        no_batch: false,
        self_test: false,
        fleet_self_test: false,
        jobs_dir: None,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint")?),
            "--model" => {
                let spec = value("--model")?;
                let (name, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--model expects NAME=FILE, got {spec:?}"))?;
                if name.is_empty() || path.is_empty() {
                    return Err(format!("--model expects NAME=FILE, got {spec:?}"));
                }
                args.models.push((name.to_string(), path.to_string()));
            }
            "--train-quick" => args.train_quick = true,
            "--save" => args.save = Some(value("--save")?),
            "--cache-cap" => {
                args.cache_cap = Some(
                    value("--cache-cap")?
                        .parse()
                        .map_err(|_| "--cache-cap must be an integer".to_string())?,
                )
            }
            "--batch-max" => {
                args.batch_max = Some(
                    value("--batch-max")?
                        .parse::<usize>()
                        .ok()
                        .filter(|&v| v >= 1)
                        .ok_or_else(|| "--batch-max must be a positive integer".to_string())?,
                )
            }
            "--batch-wait-us" => {
                args.batch_wait_us = Some(
                    value("--batch-wait-us")?
                        .parse()
                        .map_err(|_| "--batch-wait-us must be an integer".to_string())?,
                )
            }
            "--no-batch" => args.no_batch = true,
            "--self-test" => args.self_test = true,
            "--fleet-self-test" => args.fleet_self_test = true,
            "--jobs-dir" => args.jobs_dir = Some(value("--jobs-dir")?),
            "--out" => args.out = Some(value("--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: qor-serve [--addr HOST:PORT] [--checkpoint FILE | --train-quick] \
                     [--model NAME=FILE]... [--save FILE] [--cache-cap N] \
                     [--batch-max N] [--batch-wait-us N] [--no-batch] [--jobs-dir DIR] \
                     [--self-test] [--fleet-self-test [--out FILE]]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn build_model(args: &Args) -> Result<HierarchicalModel, String> {
    if let Some(path) = &args.checkpoint {
        eprintln!("loading checkpoint {path}");
        return serve::load_model_file(path).map_err(|e| format!("loading {path}: {e}"));
    }
    if args.train_quick {
        eprintln!("training on bundled kernels (quick profile)");
        let (model, stats) = HierarchicalModel::train_on_kernels(&TrainOptions::quick())
            .map_err(|e| format!("training: {e}"))?;
        eprintln!(
            "trained: GNN_g latency MAPE {:.2}% over {} test designs",
            stats.global.latency_mape, stats.global.n
        );
        return Ok(model);
    }
    eprintln!("serving an UNTRAINED model (pass --checkpoint or --train-quick)");
    Ok(HierarchicalModel::new(&TrainOptions::quick()))
}

fn dispatch_mode(args: &Args) -> DispatchMode {
    if args.no_batch {
        return DispatchMode::Direct;
    }
    let mut opts = BatchOptions::from_env();
    if let Some(max) = args.batch_max {
        opts.max_batch = max;
    }
    if let Some(us) = args.batch_wait_us {
        opts.max_wait = Duration::from_micros(us);
    }
    DispatchMode::Batched(opts)
}

fn main() -> ExitCode {
    let _obs = obs::init();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("qor-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.self_test {
        return match self_test() {
            Ok(()) => {
                println!("self-test ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("self-test FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.fleet_self_test {
        return match fleet_self_test(args.out.as_deref()) {
            Ok(()) => {
                println!("fleet self-test ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("fleet self-test FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let model = match build_model(&args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("qor-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.save {
        if let Err(e) = serve::save_model_file(path, &model) {
            eprintln!("qor-serve: saving {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("checkpoint written to {path}");
    }
    let capacity = args.cache_cap.unwrap_or(qor_core::DEFAULT_CACHE_CAP);
    let registry = Arc::new(ModelRegistry::with_default(model, capacity));
    for (name, path) in &args.models {
        match registry.load_file(name, path) {
            Ok(entry) => eprintln!("registered model {} from {path}", entry.tag()),
            Err(e) => {
                eprintln!("qor-serve: loading --model {name}={path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let config = ServerConfig {
        dispatch: dispatch_mode(&args),
        jobs_dir: args.jobs_dir.clone().map(std::path::PathBuf::from),
    };
    match config.dispatch {
        DispatchMode::Batched(opts) => eprintln!(
            "batching: up to {} items / {} µs",
            opts.max_batch,
            opts.max_wait.as_micros()
        ),
        DispatchMode::Direct => eprintln!("batching disabled (--no-batch)"),
    }
    let server = match Server::bind_with(&args.addr, registry, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("qor-serve: binding {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => eprintln!("listening on http://{addr}"),
        Err(_) => eprintln!("listening on {}", args.addr),
    }
    server.run();
    ExitCode::SUCCESS
}

/// End-to-end smoke test against an in-process server (the CI gate; no
/// curl in the build environment).
fn self_test() -> Result<(), String> {
    use pragma::{LoopId, PragmaConfig};
    use serve::json;

    let io = |e: std::io::Error| format!("io: {e}");

    // 1. checkpoint round-trip must be bit-exact
    let opts = TrainOptions::quick().with_hidden(12);
    let model = HierarchicalModel::new(&opts);
    let func =
        std::sync::Arc::new(kernels::lower_kernel("mvt").map_err(|e| format!("lower mvt: {e}"))?);
    let mut cfg = PragmaConfig::default();
    cfg.set_pipeline(LoopId::from_path(&[0]), true);
    let direct = model.predict(&func, &cfg);
    let restored = serve::load_model(&serve::save_model(&model))
        .map_err(|e| format!("checkpoint round-trip: {e}"))?;
    if restored.predict(&func, &cfg) != direct {
        return Err("restored model diverges from the saved one".into());
    }
    println!("checkpoint round-trip: bit-exact");

    // 2. serve the model through the batching queue and drive the surface
    let registry = Arc::new(ModelRegistry::with_default(model, 64));
    let handle = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServerConfig {
            dispatch: DispatchMode::Batched(BatchOptions {
                max_batch: 4,
                max_wait: Duration::from_millis(10),
            }),
            ..ServerConfig::default()
        },
    )
    .map_err(io)?
    .spawn()
    .map_err(io)?;
    let addr = handle.addr();
    let result = (|| {
        let (status, body) = client_request(addr, "GET", "/v1/healthz", None).map_err(io)?;
        if status != 200 || !body.contains("\"ok\"") {
            return Err(format!("healthz: status {status}, body {body}"));
        }

        // the response qor must equal the library-path prediction bit-exactly
        let latency_of = |body: &str| -> Result<u64, String> {
            let doc = json::parse(body).map_err(|e| format!("response: {e}"))?;
            json::field(&doc, "qor")
                .and_then(|q| json::field(q, "latency"))
                .and_then(json::as_u64)
                .ok_or_else(|| format!("no qor.latency in {body}"))
        };
        let request = r#"{"kernel":"mvt","config":{"loops":[{"loop":[0],"pipeline":true}]}}"#;
        let (status, first) =
            client_request(addr, "POST", "/v1/predict", Some(request)).map_err(io)?;
        if status != 200 {
            return Err(format!("predict: status {status}, body {first}"));
        }
        if latency_of(&first)? != direct.latency {
            return Err(format!(
                "server prediction diverges from the library path: {} vs {}",
                latency_of(&first)?,
                direct.latency
            ));
        }
        // a lone request is a timeout-flushed batch of one
        let doc = json::parse(&first).map_err(|e| format!("response: {e}"))?;
        let batch_size = json::field(&doc, "batch")
            .and_then(|b| json::field(b, "size"))
            .and_then(json::as_u64);
        if batch_size != Some(1) {
            return Err(format!("lone predict batch size: {first}"));
        }
        let (status, second) =
            client_request(addr, "POST", "/v1/predict", Some(request)).map_err(io)?;
        if status != 200 || latency_of(&second)? != direct.latency {
            return Err(format!("repeat predict: status {status}, body {second}"));
        }
        println!(
            "single predict: matches library path ({} cycles), served as a batch of 1",
            direct.latency
        );

        // a 4-item request fills max_batch and must flush on size, with
        // the duplicate pair single-flighted
        let batch = r#"{"requests":[
            {"kernel":"mvt","config":{"loops":[{"loop":[0],"pipeline":true}]}},
            {"kernel":"bicg"},
            {"kernel":"mvt","config":{"loops":[{"loop":[0],"pipeline":true}]}},
            {"kernel":"gemm"}
        ]}"#;
        let (status, body) =
            client_request(addr, "POST", "/v1/predict", Some(batch)).map_err(io)?;
        if status != 200 || body.matches("\"qor\"").count() != 4 {
            return Err(format!("batch predict: status {status}, body {body}"));
        }
        if body.matches("\"deduped\":true").count() != 2 {
            return Err(format!("duplicate pair must be single-flighted: {body}"));
        }

        // both flush triggers must have fired by now
        let (status, vars) = client_request(addr, "GET", "/debug/vars", None).map_err(io)?;
        if status != 200 {
            return Err(format!("debug/vars: status {status}"));
        }
        let doc = json::parse(&vars).map_err(|e| format!("debug/vars: {e}"))?;
        let batcher = json::field(&doc, "batcher").ok_or("no batcher in /debug/vars")?;
        let stat = |key: &str| {
            json::field(batcher, key)
                .and_then(json::as_u64)
                .ok_or_else(|| format!("no batcher.{key} in {vars}"))
        };
        if stat("flush_timeout")? < 2 {
            return Err(format!("wait-deadline flushes not counted: {vars}"));
        }
        if stat("flush_full")? < 1 {
            return Err(format!("size-triggered flush not counted: {vars}"));
        }
        if stat("deduped")? < 1 {
            return Err(format!("single-flight dedup not counted: {vars}"));
        }
        println!(
            "batcher: {} flushes ({} on deadline, {} on size), {} deduped",
            stat("batches")?,
            stat("flush_timeout")?,
            stat("flush_full")?,
            stat("deduped")?
        );

        // 3. registry hot-reload cycle: save a second model, PUT it under
        // "default", verify the generation bump and the new bits
        let alt = HierarchicalModel::new(&TrainOptions::quick().with_hidden(12).with_seed(1));
        let alt_direct = alt.predict(&func, &cfg);
        let ckpt =
            std::env::temp_dir().join(format!("qor-selftest-{}.qorckpt", std::process::id()));
        serve::save_model_file(&ckpt, &alt).map_err(|e| format!("saving reload ckpt: {e}"))?;
        let put = format!("{{\"checkpoint\":{:?}}}", ckpt.display().to_string());
        let (status, body) =
            client_request(addr, "PUT", "/v1/models/default", Some(&put)).map_err(io)?;
        let _ = std::fs::remove_file(&ckpt);
        if status != 200 {
            return Err(format!("hot-reload PUT: status {status}, body {body}"));
        }
        let doc = json::parse(&body).map_err(|e| format!("reload response: {e}"))?;
        let generation = json::field(&doc, "model")
            .and_then(|m| json::field(m, "generation"))
            .and_then(json::as_u64)
            .ok_or_else(|| format!("no generation in {body}"))?;
        if generation != 2 {
            return Err(format!("reload must serve generation 2, got {generation}"));
        }
        let (status, body) =
            client_request(addr, "POST", "/v1/predict", Some(request)).map_err(io)?;
        if status != 200 || latency_of(&body)? != alt_direct.latency {
            return Err(format!(
                "post-reload prediction must come from the new weights: {body}"
            ));
        }
        let (_, models) = client_request(addr, "GET", "/v1/models", None).map_err(io)?;
        if !models.contains("\"generation\":2") {
            return Err(format!("/v1/models must list generation 2: {models}"));
        }
        println!("hot-reload: generation 1 -> 2, new weights serving");

        let (status, metrics) = client_request(addr, "GET", "/v1/metrics", None).map_err(io)?;
        if status != 200 || !metrics.contains("qor_session_cache_hits_total") {
            return Err(format!("metrics: status {status}"));
        }
        // real Prometheus histogram exposition for request latency, plus
        // the new per-model and batching-queue series
        for needle in [
            "# TYPE qor_http_request_duration_us histogram",
            "qor_http_request_duration_us_bucket{route=\"predict\",status=\"2xx\",le=\"",
            "le=\"+Inf\"}",
            "qor_http_request_duration_us_count{route=\"predict\",status=\"2xx\"}",
            "qor_http_request_duration_us_quantile{route=\"predict\",status=\"2xx\",q=\"0.99\"}",
            "qor_http_responses_2xx_total",
            "qor_http_route_requests_total{route=\"predict\"}",
            "qor_model_generation{model=\"default\"} 2",
            "qor_model_predictions_total{model=\"default\",generation=\"2\"}",
            "qor_batch_flushes_total",
            "qor_batch_deduped_total",
        ] {
            if !metrics.contains(needle) {
                return Err(format!("metrics missing {needle:?}: {metrics}"));
            }
        }
        println!("metrics: histograms + per-model + batcher series exposed");

        // tracing: an inbound x-qor-trace header must be echoed and show
        // up in the flight recorder via /debug/requests
        let trace_hex = "00000000deadbeef";
        let (status, headers, _) = serve::http::client_request_with(
            addr,
            "POST",
            "/v1/predict",
            Some(request),
            &[("x-qor-trace", trace_hex)],
        )
        .map_err(io)?;
        if status != 200 {
            return Err(format!("traced predict: status {status}"));
        }
        if headers
            .iter()
            .find(|(n, _)| n == "x-qor-trace")
            .map(|(_, v)| v.as_str())
            != Some(trace_hex)
        {
            return Err(format!("x-qor-trace not echoed: {headers:?}"));
        }
        let (status, dump) = client_request(addr, "GET", "/debug/requests", None).map_err(io)?;
        if status != 200 {
            return Err(format!("debug/requests: status {status}"));
        }
        for needle in [
            &format!("\"trace\":\"{trace_hex}\"") as &str,
            "\"kind\":\"http\"",
            "\"label\":\"POST /v1/predict\"",
            "\"stages\":[",
            "\"cache_hits\":",
            "\"attrs\":{\"model\":\"default@2\"",
        ] {
            if !dump.contains(needle) {
                return Err(format!("debug/requests missing {needle:?}: {dump}"));
            }
        }
        println!("tracing: x-qor-trace echoed; /debug/requests + /debug/vars ok");

        // deprecated aliases still serve, marked with the successor link
        let (status, headers, _) =
            serve::http::client_request_with(addr, "POST", "/predict", Some(request), &[])
                .map_err(io)?;
        if status != 200 {
            return Err(format!("legacy /predict: status {status}"));
        }
        if !headers
            .iter()
            .any(|(n, v)| n == "deprecation" && v == "true")
        {
            return Err(format!("legacy /predict must be deprecated: {headers:?}"));
        }
        if !headers
            .iter()
            .any(|(n, v)| n == "link" && v.contains("/v1/predict"))
        {
            return Err(format!(
                "legacy /predict must link its successor: {headers:?}"
            ));
        }
        println!("legacy aliases: served with Deprecation + successor Link");

        // error envelope on every non-2xx
        let (status, body) =
            client_request(addr, "POST", "/v1/predict", Some("{not json")).map_err(io)?;
        if status != 400 || !body.contains("\"code\":\"bad_request\"") {
            return Err(format!(
                "bad body must 400 with envelope, got {status}: {body}"
            ));
        }
        let (status, body) = client_request(addr, "GET", "/nope", None).map_err(io)?;
        if status != 404 || !body.contains("\"code\":\"not_found\"") {
            return Err(format!("unknown route must 404 with envelope: {body}"));
        }

        // 4. dse job cycle: submit, poll to done, check metrics, delete
        let job = r#"{"kernel":"fir","strategy":"genetic","budget":6,"seed":5,"batch":3}"#;
        let (status, body) = client_request(addr, "POST", "/v1/dse", Some(job)).map_err(io)?;
        if status != 200 {
            return Err(format!("dse submit: status {status}, body {body}"));
        }
        let doc = json::parse(&body).map_err(|e| format!("dse submit response: {e}"))?;
        let id = json::field(&doc, "id")
            .and_then(json::as_str)
            .ok_or_else(|| format!("no job id in {body}"))?
            .to_string();
        let path = format!("/v1/dse/{id}");
        let mut final_status = String::new();
        let mut spent = 0u64;
        for _ in 0..1500 {
            let (status, body) = client_request(addr, "GET", &path, None).map_err(io)?;
            if status != 200 {
                return Err(format!("dse poll: status {status}, body {body}"));
            }
            let doc = json::parse(&body).map_err(|e| format!("dse poll response: {e}"))?;
            final_status = json::field(&doc, "status")
                .and_then(json::as_str)
                .ok_or_else(|| format!("no status in {body}"))?
                .to_string();
            if final_status != "running" {
                spent = json::field(&doc, "spent")
                    .and_then(json::as_u64)
                    .ok_or_else(|| format!("no spent in {body}"))?;
                if !body.contains("\"front\"") || body.matches("\"fingerprint\"").count() == 0 {
                    return Err(format!("finished job published no front: {body}"));
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        if final_status != "done" {
            return Err(format!("dse job ended as {final_status:?}, expected done"));
        }
        if spent == 0 || spent > 6 {
            return Err(format!("dse spent {spent} outside the budget of 6"));
        }
        let (status, metrics) = client_request(addr, "GET", "/v1/metrics", None).map_err(io)?;
        if status != 200
            || !metrics.contains("qor_dse_jobs_submitted_total 1")
            || !metrics.contains("qor_dse_jobs_completed_total 1")
            || !metrics.contains("qor_dse_evals_per_second")
        {
            return Err(format!("dse metrics missing: {metrics}"));
        }
        let (status, body) = client_request(addr, "DELETE", &path, None).map_err(io)?;
        if status != 200 || !body.contains("true") {
            return Err(format!("dse delete: status {status}, body {body}"));
        }
        let (status, _) = client_request(addr, "GET", &path, None).map_err(io)?;
        if status != 404 {
            return Err(format!("deleted job must 404, got {status}"));
        }
        println!("dse job cycle: submitted, ran to done ({spent}/6 evals), deleted");
        Ok(())
    })();
    let stats = handle.stats();
    handle.shutdown();
    result?;
    if stats.hits == 0 {
        return Err("server session recorded no cache hits".into());
    }
    println!(
        "cache: {} hits / {} misses over {} predictions",
        stats.hits,
        stats.misses,
        stats.hits + stats.misses
    );
    Ok(())
}

/// Distributed-search gate: a coordinator and two worker servers on real
/// loopback HTTP. A seeded fleet job must produce a front byte-identical
/// to the same job run in-process on the coordinator, keep doing so after
/// a worker is shut down mid-roster (retry + eviction), and fail typed
/// (HTTP 503, code `fleet`) once no worker remains. `--out FILE` writes a
/// digest JSON that CI compares across `QOR_THREADS` settings.
fn fleet_self_test(out: Option<&str>) -> Result<(), String> {
    use serve::json;

    let io = |e: std::io::Error| format!("io: {e}");
    let spawn_server = || -> Result<serve::ServerHandle, String> {
        // identical TrainOptions on every server -> identical weights, so
        // worker-scored candidates match the coordinator's own session
        let model = HierarchicalModel::new(&TrainOptions::quick().with_hidden(12).with_seed(1));
        let registry = Arc::new(ModelRegistry::with_default(model, 128));
        Server::bind_with(
            "127.0.0.1:0",
            registry,
            ServerConfig {
                dispatch: DispatchMode::Direct,
                ..ServerConfig::default()
            },
        )
        .map_err(io)?
        .spawn()
        .map_err(io)
    };
    let worker_a = spawn_server()?;
    let worker_b = spawn_server()?;
    let coord = spawn_server()?;
    let addr = coord.addr();
    let addr_a = worker_a.addr().to_string();
    let addr_b = worker_b.addr().to_string();

    for worker in [&addr_a, &addr_b] {
        let body = format!("{{\"addr\":{worker:?}}}");
        let (status, reply) =
            client_request(addr, "POST", "/v1/fleet/workers", Some(&body)).map_err(io)?;
        if status != 200 || !reply.contains("\"registered\":true") {
            return Err(format!("register {worker}: status {status}, body {reply}"));
        }
    }
    let (status, roster) = client_request(addr, "GET", "/v1/fleet/workers", None).map_err(io)?;
    if status != 200 || !roster.contains("\"workers_alive\":2") {
        return Err(format!("roster after registration: {roster}"));
    }
    println!("fleet: 2 workers registered with the coordinator");

    let run_job = |body: &str| -> Result<String, String> {
        let (status, reply) = client_request(addr, "POST", "/v1/dse", Some(body)).map_err(io)?;
        if status != 200 {
            return Err(format!("dse submit: status {status}, body {reply}"));
        }
        let doc = json::parse(&reply).map_err(|e| format!("submit reply: {e}"))?;
        let id = json::field(&doc, "id")
            .and_then(json::as_str)
            .ok_or_else(|| format!("no job id in {reply}"))?
            .to_string();
        let path = format!("/v1/dse/{id}");
        for _ in 0..3000 {
            let (status, progress) = client_request(addr, "GET", &path, None).map_err(io)?;
            if status != 200 {
                return Err(format!("dse poll: status {status}, body {progress}"));
            }
            let doc = json::parse(&progress).map_err(|e| format!("poll reply: {e}"))?;
            match json::field(&doc, "status").and_then(json::as_str) {
                Some("running") => std::thread::sleep(Duration::from_millis(10)),
                Some("done") => return Ok(progress),
                other => return Err(format!("job ended as {other:?}: {progress}")),
            }
        }
        Err("job did not finish within the poll budget".into())
    };
    // the raw `"front":[...]` byte range: objects inside carry no brackets,
    // so the first `]` closes the array — an exact byte-compare needs no
    // canonicalization step
    fn front_of(body: &str) -> Result<&str, String> {
        let start = body
            .find("\"front\":[")
            .ok_or_else(|| format!("no front in {body}"))?;
        let end = body[start..]
            .find(']')
            .ok_or_else(|| format!("unterminated front in {body}"))?;
        Ok(&body[start..=start + end])
    }
    let spent_of = |body: &str| -> Result<u64, String> {
        let doc = json::parse(body).map_err(|e| format!("progress: {e}"))?;
        json::field(&doc, "spent")
            .and_then(json::as_u64)
            .ok_or_else(|| format!("no spent in {body}"))
    };

    let base = r#""kernel":"bicg","strategy":"genetic","budget":16,"seed":77,"batch":6"#;
    let fleet_body = format!("{{{base},\"fleet\":true,\"unit_size\":2}}");
    let solo_body = format!("{{{base}}}");

    let fleet_progress = run_job(&fleet_body)?;
    if !fleet_progress.contains("\"fleet\":{") || !fleet_progress.contains("\"workers\":2") {
        return Err(format!(
            "fleet job published no fleet detail: {fleet_progress}"
        ));
    }
    let solo_progress = run_job(&solo_body)?;
    let fleet_front = front_of(&fleet_progress)?;
    if fleet_front != front_of(&solo_progress)? {
        return Err(format!(
            "fleet front diverged from single-process:\n  fleet: {fleet_front}\n  solo:  {}",
            front_of(&solo_progress)?
        ));
    }
    let spent = spent_of(&fleet_progress)?;
    if spent != spent_of(&solo_progress)? {
        return Err("fleet job spent a different budget than single-process".into());
    }
    println!("fleet(2 workers) == single-process: front byte-identical, spent {spent}/16");

    let (status, metrics) = client_request(addr, "GET", "/v1/metrics", None).map_err(io)?;
    if status != 200
        || !metrics.contains("qor_fleet_workers 2")
        || metrics.contains("qor_fleet_units_dispatched_total 0")
        || !metrics.contains("qor_fleet_units_dispatched_total")
    {
        return Err(format!("fleet metrics missing: {metrics}"));
    }

    // worker loss mid-roster: the survivor absorbs reassigned units and
    // the result still matches
    worker_b.shutdown();
    let degraded = run_job(&fleet_body)?;
    if front_of(&degraded)? != fleet_front {
        return Err("front diverged after losing a worker".into());
    }
    let (_, roster) = client_request(addr, "GET", "/v1/fleet/workers", None).map_err(io)?;
    if !roster.contains("\"workers_alive\":1") {
        return Err(format!("dead worker not evicted: {roster}"));
    }
    println!("fleet(1 worker after kill): front still byte-identical; dead worker evicted");

    // no live workers: the submit must fail typed, budget untouched
    for worker in [&addr_a, &addr_b] {
        let path = format!("/v1/fleet/workers/{worker}");
        let (status, reply) = client_request(addr, "DELETE", &path, None).map_err(io)?;
        if status != 200 {
            return Err(format!(
                "deregister {worker}: status {status}, body {reply}"
            ));
        }
    }
    let (status, reply) = client_request(addr, "POST", "/v1/dse", Some(&fleet_body)).map_err(io)?;
    if status != 503 || !reply.contains("\"code\":\"fleet\"") {
        return Err(format!(
            "empty roster must 503 with the fleet code, got {status}: {reply}"
        ));
    }
    println!("empty roster: submit rejected with 503 code=fleet");

    worker_a.shutdown();
    coord.shutdown();

    if let Some(path) = out {
        let mut bytes = Vec::from(fleet_front.as_bytes());
        bytes.extend_from_slice(&spent.to_be_bytes());
        let digest = qor_core::fnv1a(&bytes);
        let doc = format!(
            "{{\"schema\":1,\"kernel\":\"bicg\",\"seed\":77,\"budget\":16,\"spent\":{spent},\
             \"digest\":\"{digest:016x}\",{fleet_front}}}\n"
        );
        std::fs::write(path, doc).map_err(io)?;
        println!("digest written to {path}");
    }
    Ok(())
}
