#![warn(missing_docs)]
//! Pragma-aware control/data-flow graph construction (paper §III-A).
//!
//! Graphs are built from the HIR with the pragma configuration *embedded in
//! the structure*, exactly as the paper prescribes:
//!
//! * **pipelining** leaves the graph unchanged (it is captured by loop-level
//!   features instead),
//! * **unrolling** replicates the body nodes and rewires def-use and
//!   loop-carried edges across replicas,
//! * **array partitioning** splits each array's memory-port node into one
//!   node per bank; loads/stores connect to the banks their affine indices
//!   can reach (all banks for dynamic indices).
//!
//! The same builder also produces the **inner-hierarchy subgraphs** and the
//! **condensed outer graphs** in which inner loops are replaced by *super
//! nodes* annotated with (predicted) QoR, which is the core of the paper's
//! hierarchical method (§III-C).
//!
//! # Example
//!
//! ```
//! use cdfg::GraphBuilder;
//! use pragma::{LoopId, PragmaConfig, Unroll};
//!
//! let src = "void k(float a[16], float b[16]) {
//!     for (int i = 0; i < 16; i++) { b[i] = a[i] * 2.0; }
//! }";
//! let module = hir::lower(&frontc::parse(src)?)?;
//! let func = module.function("k").unwrap();
//!
//! let plain = GraphBuilder::new(func, &PragmaConfig::default()).build();
//! let mut cfg = PragmaConfig::default();
//! cfg.set_unroll(LoopId::from_path(&[0]), Unroll::Factor(4));
//! let unrolled = GraphBuilder::new(func, &cfg).build();
//! assert!(unrolled.num_nodes() > plain.num_nodes());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod banks;
mod build;
mod graph;

pub use banks::bank_candidates;
pub use build::{GraphBuilder, GraphOptions};
pub use graph::{Edge, EdgeKind, Graph, Node, NodeKind, SuperFeatures};
