//! Memory-bank reachability analysis for partitioned arrays.
//!
//! Given a load/store's affine access pattern, the partitioning of each
//! dimension, and the *known residues* of unrolled loop variables, this
//! module computes which banks the access can touch. This implements the
//! paper's LLVM-pass analysis that "analyzes the index values of each load
//! and store operation to determine which memory ports should be connected"
//! (§III-A.3), including the fall-back: dynamic or unresolvable indices
//! connect to all ports.

use std::collections::HashMap;

use hir::{AccessPattern, AffineIndex, ArrayInfo};
use pragma::{LoopId, PartitionKind, PragmaConfig};

/// Computes the set of flat bank indices an access can reach.
///
/// `residues` maps unroll-replicated loops to `(replica_index, factor)`; a
/// loop present there is known to satisfy `i ≡ replica (mod factor)`.
///
/// Returns bank indices in `0..total_banks` (row-major over dimensions).
pub fn bank_candidates(
    array: &ArrayInfo,
    cfg: &PragmaConfig,
    access: &AccessPattern,
    residues: &HashMap<LoopId, (u32, u32)>,
) -> Vec<u32> {
    let per_dim_banks: Vec<u32> = array
        .dims
        .iter()
        .enumerate()
        .map(|(d, &n)| dim_banks(cfg, &array.name, d as u32 + 1, n))
        .collect();
    let total: u32 = per_dim_banks.iter().product::<u32>().max(1);

    let AccessPattern::Affine(indices) = access else {
        return (0..total).collect();
    };
    if indices.len() != array.dims.len() {
        return (0..total).collect();
    }

    // candidate banks per dimension
    let mut per_dim: Vec<Vec<u32>> = Vec::with_capacity(indices.len());
    for (d, idx) in indices.iter().enumerate() {
        let banks = per_dim_banks[d];
        if banks <= 1 {
            per_dim.push(vec![0]);
            continue;
        }
        let kind = cfg.partition(&array.name, d as u32 + 1).kind;
        match kind {
            PartitionKind::Cyclic | PartitionKind::Complete => {
                match residue_mod(idx, banks, residues) {
                    Some(r) => per_dim.push(vec![r]),
                    None => per_dim.push((0..banks).collect()),
                }
            }
            PartitionKind::Block => {
                // block bank = floor(index / block_size): requires the full
                // index value, which only constants provide
                if idx.terms.is_empty() {
                    let n = array.dims[d] as u32;
                    let block = n.div_ceil(banks).max(1);
                    let b = ((idx.constant.rem_euclid(i64::from(n)) as u32) / block).min(banks - 1);
                    per_dim.push(vec![b]);
                } else {
                    per_dim.push((0..banks).collect());
                }
            }
        }
    }

    // cross product, flattened row-major
    let mut out = vec![0u32];
    for (d, cands) in per_dim.iter().enumerate() {
        let stride: u32 = per_dim_banks[d + 1..].iter().product::<u32>().max(1);
        let mut next = Vec::with_capacity(out.len() * cands.len());
        for &base in &out {
            for &c in cands {
                next.push(base + c * stride);
            }
        }
        out = next;
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Effective bank count along one dimension.
fn dim_banks(cfg: &PragmaConfig, array: &str, dim: u32, n: usize) -> u32 {
    let p = cfg.partition(array, dim);
    match p.kind {
        PartitionKind::Complete => n as u32,
        _ => p.factor.clamp(1, n.max(1) as u32),
    }
}

/// `index mod banks` when statically determined, else `None`.
///
/// A term `c * i` contributes a known residue when either `c ≡ 0 (mod banks)`
/// or `i`'s residue modulo `banks` is pinned by unrolling (requires the
/// unroll factor to be a multiple of `banks` — the usual
/// partition-factor = unroll-factor case — or vice versa with `banks`
/// dividing the factor).
fn residue_mod(
    idx: &AffineIndex,
    banks: u32,
    residues: &HashMap<LoopId, (u32, u32)>,
) -> Option<u32> {
    let m = i64::from(banks);
    let mut acc = idx.constant.rem_euclid(m);
    for (l, c) in &idx.terms {
        let c_mod = c.rem_euclid(m);
        if c_mod == 0 {
            continue;
        }
        let (replica, factor) = residues.get(l).copied()?;
        if factor % banks != 0 {
            return None; // replica residue does not pin `i mod banks`
        }
        let i_mod = i64::from(replica % banks);
        acc = (acc + c_mod * i_mod).rem_euclid(m);
    }
    Some(acc as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hir::ScalarType;
    use pragma::ArrayPartition;

    fn arr(dims: &[usize]) -> ArrayInfo {
        ArrayInfo {
            name: "a".into(),
            elem: ScalarType::Float,
            dims: dims.to_vec(),
        }
    }

    fn cyclic(factor: u32, dim: u32) -> PragmaConfig {
        let mut cfg = PragmaConfig::new();
        cfg.set_partition(
            "a",
            dim,
            ArrayPartition {
                kind: PartitionKind::Cyclic,
                factor,
            },
        );
        cfg
    }

    #[test]
    fn unpartitioned_single_bank() {
        let a = arr(&[16]);
        let cfg = PragmaConfig::new();
        let access = AccessPattern::Affine(vec![AffineIndex::var(LoopId::from_path(&[0]))]);
        assert_eq!(bank_candidates(&a, &cfg, &access, &HashMap::new()), vec![0]);
    }

    #[test]
    fn replica_residue_pins_cyclic_bank() {
        let a = arr(&[16]);
        let cfg = cyclic(4, 1);
        let i = LoopId::from_path(&[0]);
        let access = AccessPattern::Affine(vec![AffineIndex::var(i.clone())]);
        // replica 2 of an unroll-by-4 loop: i ≡ 2 (mod 4)
        let mut residues = HashMap::new();
        residues.insert(i, (2, 4));
        assert_eq!(bank_candidates(&a, &cfg, &access, &residues), vec![2]);
    }

    #[test]
    fn unknown_variable_reaches_all_banks() {
        let a = arr(&[16]);
        let cfg = cyclic(4, 1);
        let access = AccessPattern::Affine(vec![AffineIndex::var(LoopId::from_path(&[0]))]);
        assert_eq!(
            bank_candidates(&a, &cfg, &access, &HashMap::new()),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn constant_offset_shifts_bank() {
        let a = arr(&[16]);
        let cfg = cyclic(4, 1);
        let i = LoopId::from_path(&[0]);
        let mut idx = AffineIndex::var(i.clone());
        idx.constant = 3;
        let access = AccessPattern::Affine(vec![idx]);
        let mut residues = HashMap::new();
        residues.insert(i, (2, 4));
        // (2 + 3) mod 4 = 1
        assert_eq!(bank_candidates(&a, &cfg, &access, &residues), vec![1]);
    }

    #[test]
    fn coefficient_multiple_of_banks_vanishes() {
        let a = arr(&[64]);
        let cfg = cyclic(4, 1);
        let i = LoopId::from_path(&[0]);
        // index 4*i + 1: bank always 1, regardless of i
        let idx = AffineIndex {
            terms: vec![(i, 4)],
            constant: 1,
        };
        let access = AccessPattern::Affine(vec![idx]);
        assert_eq!(bank_candidates(&a, &cfg, &access, &HashMap::new()), vec![1]);
    }

    #[test]
    fn dynamic_access_reaches_all_banks() {
        let a = arr(&[16]);
        let cfg = cyclic(4, 1);
        let access = AccessPattern::Dynamic { rank: 1 };
        assert_eq!(
            bank_candidates(&a, &cfg, &access, &HashMap::new()),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn two_dimensional_banks_flatten_row_major() {
        let a = arr(&[8, 8]);
        let mut cfg = cyclic(2, 1);
        cfg.set_partition(
            "a",
            2,
            ArrayPartition {
                kind: PartitionKind::Cyclic,
                factor: 2,
            },
        );
        let i = LoopId::from_path(&[0]);
        let j = LoopId::from_path(&[0, 0]);
        let access = AccessPattern::Affine(vec![
            AffineIndex::var(i.clone()),
            AffineIndex::var(j.clone()),
        ]);
        let mut residues = HashMap::new();
        residues.insert(i, (1, 2));
        residues.insert(j, (0, 2));
        // dim0 bank 1, dim1 bank 0 -> flat = 1*2 + 0 = 2
        assert_eq!(bank_candidates(&a, &cfg, &access, &residues), vec![2]);
    }

    #[test]
    fn partial_knowledge_expands_along_unknown_dim() {
        let a = arr(&[8, 8]);
        let mut cfg = cyclic(2, 1);
        cfg.set_partition(
            "a",
            2,
            ArrayPartition {
                kind: PartitionKind::Cyclic,
                factor: 2,
            },
        );
        let i = LoopId::from_path(&[0]);
        let j = LoopId::from_path(&[0, 0]);
        let access = AccessPattern::Affine(vec![AffineIndex::var(i.clone()), AffineIndex::var(j)]);
        let mut residues = HashMap::new();
        residues.insert(i, (1, 2));
        // dim0 pinned to 1, dim1 unknown -> banks {2, 3}
        assert_eq!(bank_candidates(&a, &cfg, &access, &residues), vec![2, 3]);
    }

    #[test]
    fn block_partition_with_constant_index() {
        let a = arr(&[16]);
        let mut cfg = PragmaConfig::new();
        cfg.set_partition(
            "a",
            1,
            ArrayPartition {
                kind: PartitionKind::Block,
                factor: 4,
            },
        );
        // block size = 4; index 9 -> bank 2
        let access = AccessPattern::Affine(vec![AffineIndex::constant(9)]);
        assert_eq!(bank_candidates(&a, &cfg, &access, &HashMap::new()), vec![2]);
    }
}
