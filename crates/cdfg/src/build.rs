//! The pragma-aware graph emitter.

use std::collections::{BTreeMap, HashMap};

use hir::{Block, Function, HirLoop, Item, OpId, OpKind, Operand};
use pragma::{LoopId, PragmaConfig};

use crate::banks::bank_candidates;
use crate::graph::{EdgeKind, Graph, Node, NodeKind, SuperFeatures};

/// Builder options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphOptions {
    /// Soft cap on emitted nodes. When unrolling would exceed the cap,
    /// fewer replicas are materialized and the `#invocation` feature of the
    /// emitted ones is scaled up to preserve totals.
    pub max_nodes: usize,
}

impl Default for GraphOptions {
    fn default() -> Self {
        GraphOptions { max_nodes: 640 }
    }
}

/// Builds [`Graph`]s from a function + pragma configuration.
///
/// See the [crate docs](crate) for the construction rules.
#[derive(Debug)]
pub struct GraphBuilder<'a> {
    func: &'a Function,
    cfg: &'a PragmaConfig,
    opts: GraphOptions,
    condense: BTreeMap<LoopId, SuperFeatures>,
    scope: Option<LoopId>,
}

impl<'a> GraphBuilder<'a> {
    /// Creates a builder for the whole function.
    pub fn new(func: &'a Function, cfg: &'a PragmaConfig) -> Self {
        GraphBuilder {
            func,
            cfg,
            opts: GraphOptions::default(),
            condense: BTreeMap::new(),
            scope: None,
        }
    }

    /// Overrides the default options.
    pub fn options(mut self, opts: GraphOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Restricts construction to the subgraph of one loop (the paper's
    /// inner-hierarchy extraction).
    pub fn subgraph(mut self, loop_id: LoopId) -> Self {
        self.scope = Some(loop_id);
        self
    }

    /// Replaces the given loops by super nodes carrying `features` (the
    /// paper's condensation step for the outer hierarchy).
    pub fn condense(mut self, supers: BTreeMap<LoopId, SuperFeatures>) -> Self {
        self.condense = supers;
        self
    }

    /// Builds the graph.
    ///
    /// # Panics
    ///
    /// Panics if a requested subgraph loop does not exist.
    pub fn build(self) -> Graph {
        let sp = obs::span("cdfg_build");
        sp.attr("func", self.func.name.as_str());
        let mut em = Emitter {
            func: self.func,
            cfg: self.cfg,
            opts: self.opts,
            condense: &self.condense,
            graph: Graph::default(),
            ports: HashMap::new(),
        };
        let mut env: Env = HashMap::new();
        let residues = HashMap::new();
        match &self.scope {
            Some(id) => {
                let l = self
                    .func
                    .find_loop(id)
                    .unwrap_or_else(|| panic!("subgraph loop {id} not found"));
                em.emit_loop(l, &mut env, &residues, 1, 1, None);
            }
            None => {
                em.emit_block(&self.func.body, &mut env, &residues, 1, 1, None);
            }
        }
        sp.attr("nodes", em.graph.nodes.len());
        sp.attr("edges", em.graph.edges.len());
        obs::metrics::counter_add("cdfg/graphs_built", 1);
        obs::metrics::counter_add("cdfg/nodes_emitted", em.graph.nodes.len() as u64);
        em.graph
    }
}

type Env = HashMap<OpId, u32>;
type Residues = HashMap<LoopId, (u32, u32)>;

struct Emitter<'a> {
    func: &'a Function,
    cfg: &'a PragmaConfig,
    opts: GraphOptions,
    condense: &'a BTreeMap<LoopId, SuperFeatures>,
    graph: Graph,
    ports: HashMap<(String, u32), u32>,
}

impl<'a> Emitter<'a> {
    fn port_node(&mut self, array: &str, bank: u32) -> u32 {
        if let Some(&n) = self.ports.get(&(array.to_string(), bank)) {
            return n;
        }
        let idx = self.graph.add_node(Node {
            kind: NodeKind::MemPort {
                array: array.to_string(),
                bank,
            },
            mnemonic: "port",
            loop_path: LoopId::root(),
            invocations: 1,
            hw_weight: 1,
        });
        self.ports.insert((array.to_string(), bank), idx);
        idx
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_block(
        &mut self,
        block: &Block,
        env: &mut Env,
        residues: &Residues,
        invocations: u64,
        hw: u64,
        ctrl: Option<u32>,
    ) {
        for item in &block.items {
            match item {
                Item::Op(id) => {
                    self.emit_op(*id, env, residues, invocations, hw, ctrl, 0);
                }
                Item::Loop(l) => {
                    self.emit_loop(l, env, residues, invocations, hw, ctrl);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_op(
        &mut self,
        id: OpId,
        env: &mut Env,
        residues: &Residues,
        invocations: u64,
        hw: u64,
        ctrl: Option<u32>,
        replica: u32,
    ) -> u32 {
        let op = self.func.op(id);
        let idx = self.graph.add_node(Node {
            kind: NodeKind::Instr {
                op: Some(id),
                replica,
            },
            mnemonic: op.kind.mnemonic(),
            loop_path: op.in_loop.clone(),
            invocations,
            hw_weight: hw,
        });
        for operand in &op.operands {
            if let Operand::Value(v) = operand {
                if let Some(&src) = env.get(v) {
                    self.graph.add_edge(src, idx, EdgeKind::Data);
                }
            }
        }
        if let Some(c) = op.ctrl {
            if let Some(&src) = env.get(&c) {
                self.graph.add_edge(src, idx, EdgeKind::Control);
            }
        }
        if let Some(br) = ctrl {
            self.graph.add_edge(br, idx, EdgeKind::Control);
        }
        // memory-port edges
        match &op.kind {
            OpKind::Load { array, access } => {
                if let Some(info) = self.func.array(array) {
                    for bank in bank_candidates(info, self.cfg, access, residues) {
                        let p = self.port_node(array, bank);
                        self.graph.add_edge(p, idx, EdgeKind::Memory);
                    }
                }
            }
            OpKind::Store { array, access } => {
                if let Some(info) = self.func.array(array) {
                    for bank in bank_candidates(info, self.cfg, access, residues) {
                        let p = self.port_node(array, bank);
                        self.graph.add_edge(idx, p, EdgeKind::Memory);
                    }
                }
            }
            _ => {}
        }
        env.insert(id, idx);
        idx
    }

    fn emit_loop(
        &mut self,
        l: &HirLoop,
        env: &mut Env,
        residues: &Residues,
        invocations: u64,
        hw: u64,
        _ctrl: Option<u32>,
    ) {
        if let Some(features) = self.condense.get(&l.id) {
            self.emit_super(l, env, invocations, hw, *features);
            return;
        }

        let p = self.cfg.loop_pragma(&l.id);
        let tc = l.trip_count().max(1);
        let unroll = p.unroll.factor(tc);
        let iterations = tc.div_ceil(unroll.max(1));

        // node-budget clamping: emit fewer replicas, scale invocations
        let subtree = self.estimate_nodes(l);
        let remaining = self
            .opts
            .max_nodes
            .saturating_sub(self.graph.num_nodes())
            .max(subtree); // always allow at least one replica
        let emit_r = unroll.min((remaining / subtree.max(1)) as u64).max(1);
        let fold = unroll.div_ceil(emit_r); // replicas represented per emitted one
        let node_inv = invocations * iterations;
        let node_hw = hw * fold;

        let mut prev_env: Option<Env> = None;
        let mut first_phis: Vec<(OpId, u32)> = Vec::new();
        let mut last_env: Option<Env> = None;

        for j in 0..emit_r {
            let mut residues_j = residues.clone();
            if emit_r == unroll && unroll > 1 && l.step == 1 {
                residues_j.insert(l.id.clone(), (j as u32, unroll as u32));
            }

            // loop control: exit compare + branch
            let icmp = self.graph.add_node(Node {
                kind: NodeKind::Instr {
                    op: None,
                    replica: j as u32,
                },
                mnemonic: "icmp",
                loop_path: l.id.clone(),
                invocations: node_inv,
                hw_weight: node_hw,
            });
            let br = self.graph.add_node(Node {
                kind: NodeKind::Instr {
                    op: None,
                    replica: j as u32,
                },
                mnemonic: "br",
                loop_path: l.id.clone(),
                invocations: node_inv,
                hw_weight: node_hw,
            });
            self.graph.add_edge(icmp, br, EdgeKind::Data);
            self.graph.add_edge(br, icmp, EdgeKind::Control);

            let mut env_j = env.clone();

            // phis: initial value for replica 0, chained for later replicas
            for &phi in &l.phis {
                let phi_idx = self.graph.add_node(Node {
                    kind: NodeKind::Instr {
                        op: Some(phi),
                        replica: j as u32,
                    },
                    mnemonic: "phi",
                    loop_path: l.id.clone(),
                    invocations: node_inv,
                    hw_weight: node_hw,
                });
                let op = self.func.op(phi);
                if j == 0 {
                    if let Operand::Value(init) = &op.operands[0] {
                        if let Some(&src) = env.get(init) {
                            self.graph.add_edge(src, phi_idx, EdgeKind::Data);
                        }
                    }
                    first_phis.push((phi, phi_idx));
                } else if let Some(prev) = &prev_env {
                    if let Operand::Value(back) = &op.operands[1] {
                        if let Some(&src) = prev.get(back) {
                            self.graph.add_edge(src, phi_idx, EdgeKind::Data);
                        }
                    }
                }
                env_j.insert(phi, phi_idx);
            }

            self.emit_block(
                &l.body,
                &mut env_j,
                &residues_j,
                node_inv,
                node_hw,
                Some(br),
            );

            prev_env = Some(env_j.clone());
            last_env = Some(env_j);
        }

        // loop-carried edge: last replica's back-edge producers feed the
        // first replica's phis (closing the cycle across iterations)
        if let Some(last) = &last_env {
            for (phi, phi_idx) in &first_phis {
                if let Operand::Value(back) = &self.func.op(*phi).operands[1] {
                    if let Some(&src) = last.get(back) {
                        self.graph.add_edge(src, *phi_idx, EdgeKind::Data);
                    }
                }
            }
        }

        // values defined inside become visible to later consumers
        if let Some(last) = last_env {
            env.extend(last);
        }
    }

    fn emit_super(
        &mut self,
        l: &HirLoop,
        env: &mut Env,
        invocations: u64,
        hw: u64,
        features: SuperFeatures,
    ) {
        let idx = self.graph.add_node(Node {
            kind: NodeKind::Super {
                loop_id: l.id.clone(),
                features,
            },
            mnemonic: "super",
            loop_path: l.id.clone(),
            invocations,
            hw_weight: hw,
        });
        // data-in edges: external values consumed inside the region
        let inside: std::collections::HashSet<OpId> = self
            .func
            .ops_in_loop(&l.id, true)
            .into_iter()
            .chain(l.phis.iter().copied())
            .collect();
        for &op_id in &inside {
            for operand in &self.func.op(op_id).operands {
                if let Operand::Value(v) = operand {
                    if !inside.contains(v) {
                        if let Some(&src) = env.get(v) {
                            self.graph.add_edge(src, idx, EdgeKind::Data);
                        }
                    }
                }
            }
        }
        // memory edges: one per accessed array bank
        for use_ in hir::array_uses(self.func, &l.id, true) {
            if let Some(info) = self.func.array(&use_.array) {
                let banks = self.cfg.array_banks(&use_.array, &info.dims) as u32;
                for bank in 0..banks {
                    let p = self.port_node(&use_.array, bank);
                    if use_.loads > 0 {
                        self.graph.add_edge(p, idx, EdgeKind::Memory);
                    }
                    if use_.stores > 0 {
                        self.graph.add_edge(idx, p, EdgeKind::Memory);
                    }
                }
            }
        }
        // all interior values now resolve to the super node
        for op_id in inside {
            env.insert(op_id, idx);
        }
    }

    /// Estimated nodes for one replica of the loop subtree under the
    /// current configuration (body ops + control + phis, recursively with
    /// nested replication).
    fn estimate_nodes(&self, l: &HirLoop) -> usize {
        let own: usize = l
            .body
            .items
            .iter()
            .filter(|i| matches!(i, Item::Op(_)))
            .count()
            + 2
            + l.phis.len();
        let nested: usize = l
            .children()
            .map(|c| {
                let tc = c.trip_count().max(1);
                let u = self.cfg.loop_pragma(&c.id).unroll.factor(tc) as usize;
                self.estimate_nodes(c) * u.max(1)
            })
            .sum();
        own + nested
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pragma::{ArrayPartition, PartitionKind, Unroll};

    fn func(src: &str, name: &str) -> Function {
        hir::lower(&frontc::parse(src).unwrap())
            .unwrap()
            .function(name)
            .unwrap()
            .clone()
    }

    const SCALE: &str = "void k(float a[16], float b[16]) {
        for (int i = 0; i < 16; i++) { b[i] = a[i] * 2.0; }
    }";

    #[test]
    fn pipelining_leaves_graph_unchanged() {
        let f = func(SCALE, "k");
        let base = GraphBuilder::new(&f, &PragmaConfig::default()).build();
        let mut cfg = PragmaConfig::default();
        cfg.set_pipeline(LoopId::from_path(&[0]), true);
        let piped = GraphBuilder::new(&f, &cfg).build();
        assert_eq!(base.num_nodes(), piped.num_nodes());
        assert_eq!(base.num_edges(), piped.num_edges());
    }

    #[test]
    fn unrolling_replicates_body_nodes() {
        let f = func(SCALE, "k");
        let base = GraphBuilder::new(&f, &PragmaConfig::default()).build();
        let mut cfg = PragmaConfig::default();
        cfg.set_unroll(LoopId::from_path(&[0]), Unroll::Factor(4));
        let unrolled = GraphBuilder::new(&f, &cfg).build();
        assert_eq!(
            unrolled.count_mnemonic("load"),
            4 * base.count_mnemonic("load")
        );
        assert_eq!(
            unrolled.count_mnemonic("store"),
            4 * base.count_mnemonic("store")
        );
    }

    #[test]
    fn partitioning_splits_port_nodes_and_residues_pin_banks() {
        let f = func(SCALE, "k");
        let mut cfg = PragmaConfig::default();
        cfg.set_unroll(LoopId::from_path(&[0]), Unroll::Factor(4));
        for arr in ["a", "b"] {
            cfg.set_partition(
                arr,
                1,
                ArrayPartition {
                    kind: PartitionKind::Cyclic,
                    factor: 4,
                },
            );
        }
        let g = GraphBuilder::new(&f, &cfg).build();
        assert_eq!(g.ports_of("a").len(), 4);
        assert_eq!(g.ports_of("b").len(), 4);
        // each load replica touches exactly one bank: 4 memory edges into
        // loads of `a` overall
        let mem_edges_from_a_ports: usize = g
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Memory && g.ports_of("a").contains(&e.src))
            .count();
        assert_eq!(mem_edges_from_a_ports, 4);
    }

    #[test]
    fn unpartitioned_unrolled_loads_fan_into_single_port() {
        let f = func(SCALE, "k");
        let mut cfg = PragmaConfig::default();
        cfg.set_unroll(LoopId::from_path(&[0]), Unroll::Factor(4));
        let g = GraphBuilder::new(&f, &cfg).build();
        assert_eq!(g.ports_of("a").len(), 1);
        let port = g.ports_of("a")[0];
        let fanout = g
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Memory && e.src == port)
            .count();
        assert_eq!(fanout, 4, "all four replicas read the single bank");
    }

    #[test]
    fn accumulator_chains_across_replicas() {
        let src = "void dot(float a[16], float b[16], float o[1]) {
            float acc = 0.0;
            for (int i = 0; i < 16; i++) { acc += a[i] * b[i]; }
            o[0] = acc;
        }";
        let f = func(src, "dot");
        let mut cfg = PragmaConfig::default();
        cfg.set_unroll(LoopId::from_path(&[0]), Unroll::Factor(4));
        let g = GraphBuilder::new(&f, &cfg).build();
        // 4 phis (one per replica), each later phi fed by the previous
        // replica's fadd; plus the loop-carried cycle edge
        assert_eq!(g.count_mnemonic("phi"), 4);
        assert_eq!(g.count_mnemonic("fadd"), 4);
        let phi_in_edges = g
            .edges
            .iter()
            .filter(|e| g.nodes[e.dst as usize].mnemonic == "phi" && e.kind == EdgeKind::Data)
            .count();
        // replica 0: init edge (const init -> none, actually no producer) +
        // cycle edge; replicas 1..3: one chain edge each
        assert!(phi_in_edges >= 4, "phi chain edges missing: {phi_in_edges}");
    }

    #[test]
    fn node_budget_folds_replicas_preserving_invocations() {
        let f = func(SCALE, "k");
        let mut cfg = PragmaConfig::default();
        cfg.set_unroll(LoopId::from_path(&[0]), Unroll::Factor(16));
        let g = GraphBuilder::new(&f, &cfg)
            .options(GraphOptions { max_nodes: 24 })
            .build();
        assert!(g.num_nodes() <= 40, "cap blown: {}", g.num_nodes());
        // total hardware x invocation mass of loads must still be 16
        let total: u64 = g
            .nodes
            .iter()
            .filter(|n| n.mnemonic == "load")
            .map(|n| n.invocations * n.hw_weight)
            .sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn subgraph_extracts_single_loop() {
        let src = "void two(float a[8], float b[8]) {
            for (int i = 0; i < 8; i++) { a[i] = a[i] + 1.0; }
            for (int i = 0; i < 8; i++) { b[i] = b[i] * 2.0; }
        }";
        let f = func(src, "two");
        let g0 = GraphBuilder::new(&f, &PragmaConfig::default())
            .subgraph(LoopId::from_path(&[0]))
            .build();
        assert!(g0.count_mnemonic("fadd") == 1 && g0.count_mnemonic("fmul") == 0);
        let g1 = GraphBuilder::new(&f, &PragmaConfig::default())
            .subgraph(LoopId::from_path(&[1]))
            .build();
        assert!(g1.count_mnemonic("fadd") == 0 && g1.count_mnemonic("fmul") == 1);
    }

    #[test]
    fn condensation_replaces_loop_with_super_node() {
        let src = "void nest(float a[8][8], float s[1]) {
            float acc = 0.0;
            for (int i = 0; i < 8; i++) {
                for (int j = 0; j < 8; j++) {
                    acc += a[i][j];
                }
            }
            s[0] = acc;
        }";
        let f = func(src, "nest");
        let inner = LoopId::from_path(&[0, 0]);
        let mut supers = BTreeMap::new();
        supers.insert(
            inner,
            SuperFeatures {
                latency: 100.0,
                il: 10.0,
                ii: 4.0,
                tc: 8.0,
                lut: 500.0,
                ff: 700.0,
                dsp: 2.0,
            },
        );
        let full = GraphBuilder::new(&f, &PragmaConfig::default()).build();
        let condensed = GraphBuilder::new(&f, &PragmaConfig::default())
            .condense(supers)
            .build();
        assert!(condensed.num_nodes() < full.num_nodes());
        assert_eq!(condensed.count_mnemonic("super"), 1);
        // the super node reads from array `a`'s port
        let super_idx = condensed
            .nodes
            .iter()
            .position(|n| n.mnemonic == "super")
            .unwrap() as u32;
        assert!(condensed
            .edges
            .iter()
            .any(|e| e.kind == EdgeKind::Memory && e.dst == super_idx));
    }

    #[test]
    fn outer_unroll_replicates_super_nodes() {
        let src = "void nest(float a[8][8], float o[8]) {
            for (int i = 0; i < 8; i++) {
                float acc = 0.0;
                for (int j = 0; j < 8; j++) {
                    acc += a[i][j];
                }
                o[i] = acc;
            }
        }";
        let f = func(src, "nest");
        let mut cfg = PragmaConfig::default();
        cfg.set_unroll(LoopId::from_path(&[0]), Unroll::Factor(2));
        let mut supers = BTreeMap::new();
        supers.insert(LoopId::from_path(&[0, 0]), SuperFeatures::default());
        let g = GraphBuilder::new(&f, &cfg).condense(supers).build();
        assert_eq!(
            g.count_mnemonic("super"),
            2,
            "outer unroll must replicate the super node"
        );
    }

    #[test]
    fn invocation_counts_multiply_through_nesting() {
        let src = "void nest(float a[4][4]) {
            for (int i = 0; i < 4; i++) {
                for (int j = 0; j < 4; j++) {
                    a[i][j] = a[i][j] + 1.0;
                }
            }
        }";
        let f = func(src, "nest");
        let g = GraphBuilder::new(&f, &PragmaConfig::default()).build();
        let fadd = g.nodes.iter().find(|n| n.mnemonic == "fadd").unwrap();
        assert_eq!(fadd.invocations, 16, "4x4 executions");
    }
}
