//! Graph data structures.

use hir::OpId;
use pragma::LoopId;

/// QoR annotation carried by a super node (predicted by the inner-hierarchy
/// models during inference, or ground truth during `GNN_g` training).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SuperFeatures {
    /// Loop latency in cycles.
    pub latency: f64,
    /// Iteration latency.
    pub il: f64,
    /// Initiation interval.
    pub ii: f64,
    /// Effective trip count.
    pub tc: f64,
    /// LUT usage of one replica.
    pub lut: f64,
    /// FF usage of one replica.
    pub ff: f64,
    /// DSP usage of one replica.
    pub dsp: f64,
}

/// Node flavours.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// An operation instance (possibly one of several unroll replicas).
    Instr {
        /// Originating HIR op (`None` for synthesized control ops).
        op: Option<OpId>,
        /// Replica index within the innermost replicated loop.
        replica: u32,
    },
    /// A memory-port (bank) node of one array.
    MemPort {
        /// Array name.
        array: String,
        /// Bank index.
        bank: u32,
    },
    /// A condensed inner-hierarchy loop.
    Super {
        /// The condensed loop.
        loop_id: LoopId,
        /// QoR annotation (features of the super node).
        features: SuperFeatures,
    },
}

/// One graph node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Flavour and payload.
    pub kind: NodeKind,
    /// Operation mnemonic (`"fadd"`, `"load"`, `"icmp"`, `"br"`, `"port"`,
    /// `"super"`, …) — drives the one-hot optype feature.
    pub mnemonic: &'static str,
    /// Innermost loop containing the node.
    pub loop_path: LoopId,
    /// Estimated number of executions (the `#invocation` feature).
    pub invocations: u64,
    /// Number of hardware replicas this node stands for. Normally 1; larger
    /// when the builder folds unroll replicas to respect the node budget.
    pub hw_weight: u64,
}

/// Edge flavours (the CDFG's control and data flow, plus memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Def-use data dependence.
    Data,
    /// Control dependence (loop branches, `if` predicates).
    Control,
    /// Memory-port connection.
    Memory,
}

/// A directed edge `src -> dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source node index.
    pub src: u32,
    /// Destination node index.
    pub dst: u32,
    /// Flavour.
    pub kind: EdgeKind,
}

/// An attributed program graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Graph {
    /// Nodes.
    pub nodes: Vec<Node>,
    /// Directed edges.
    pub edges: Vec<Edge>,
}

impl Graph {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self, node: Node) -> u32 {
        self.nodes.push(node);
        (self.nodes.len() - 1) as u32
    }

    /// Adds an edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds.
    pub fn add_edge(&mut self, src: u32, dst: u32, kind: EdgeKind) {
        assert!(
            (src as usize) < self.nodes.len() && (dst as usize) < self.nodes.len(),
            "edge ({src},{dst}) out of bounds for {} nodes",
            self.nodes.len()
        );
        self.edges.push(Edge { src, dst, kind });
    }

    /// In-degrees of every node.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.nodes.len()];
        for e in &self.edges {
            deg[e.dst as usize] += 1;
        }
        deg
    }

    /// Out-degrees of every node.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.nodes.len()];
        for e in &self.edges {
            deg[e.src as usize] += 1;
        }
        deg
    }

    /// Number of nodes with a given mnemonic (handy in tests).
    pub fn count_mnemonic(&self, m: &str) -> usize {
        self.nodes.iter().filter(|n| n.mnemonic == m).count()
    }

    /// Renders the graph in Graphviz DOT format.
    ///
    /// Data edges are solid black, control edges dashed blue, memory edges
    /// solid red; port nodes are boxes, super nodes double octagons.
    pub fn to_dot(&self, title: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "digraph {:?} {{", title);
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [fontname=\"monospace\"];");
        for (i, n) in self.nodes.iter().enumerate() {
            let shape = match n.kind {
                NodeKind::MemPort { .. } => "box",
                NodeKind::Super { .. } => "doubleoctagon",
                NodeKind::Instr { .. } => "ellipse",
            };
            let label = match &n.kind {
                NodeKind::MemPort { array, bank } => format!("{array}[bank {bank}]"),
                NodeKind::Super { loop_id, .. } => format!("super {loop_id}"),
                NodeKind::Instr { .. } => {
                    if n.invocations > 1 {
                        format!("{} x{}", n.mnemonic, n.invocations)
                    } else {
                        n.mnemonic.to_string()
                    }
                }
            };
            let _ = writeln!(out, "  n{i} [label={label:?}, shape={shape}];");
        }
        for e in &self.edges {
            let style = match e.kind {
                EdgeKind::Data => "color=black",
                EdgeKind::Control => "color=blue, style=dashed",
                EdgeKind::Memory => "color=red",
            };
            let _ = writeln!(out, "  n{} -> n{} [{}];", e.src, e.dst, style);
        }
        out.push_str("}\n");
        out
    }

    /// Indices of all memory-port nodes of an array.
    pub fn ports_of(&self, array: &str) -> Vec<u32> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match &n.kind {
                NodeKind::MemPort { array: a, .. } if a == array => Some(i as u32),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_count_edges() {
        let mut g = Graph::default();
        let a = g.add_node(Node {
            kind: NodeKind::Instr {
                op: None,
                replica: 0,
            },
            mnemonic: "add",
            loop_path: LoopId::root(),
            invocations: 1,
            hw_weight: 1,
        });
        let b = g.add_node(Node {
            kind: NodeKind::Instr {
                op: None,
                replica: 0,
            },
            mnemonic: "store",
            loop_path: LoopId::root(),
            invocations: 1,
            hw_weight: 1,
        });
        g.add_edge(a, b, EdgeKind::Data);
        g.add_edge(a, b, EdgeKind::Control);
        assert_eq!(g.in_degrees(), vec![0, 2]);
        assert_eq!(g.out_degrees(), vec![2, 0]);
        assert_eq!(g.count_mnemonic("add"), 1);
    }

    #[test]
    #[should_panic]
    fn bad_edge_panics() {
        let mut g = Graph::default();
        g.add_edge(0, 1, EdgeKind::Data);
    }
}
