//! Design-space description and enumeration.

use frontc::PartitionKind;

use crate::config::{ArrayPartition, LoopId, PragmaConfig, Unroll};

/// Shape of one loop in a kernel's loop nest (enough structure to enumerate
/// pragma configurations without the full IR).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopShape {
    /// The loop's identifier.
    pub id: LoopId,
    /// Static trip count.
    pub trip_count: u64,
    /// Nested loops.
    pub children: Vec<LoopShape>,
    /// Whether this loop body contains nothing but its single child loop
    /// (a perfect-nest level, eligible for `loop_flatten`).
    pub perfect: bool,
}

impl LoopShape {
    /// A leaf (innermost) loop.
    pub fn leaf(id: LoopId, trip_count: u64) -> Self {
        LoopShape {
            id,
            trip_count,
            children: Vec::new(),
            perfect: false,
        }
    }

    /// A nest level with children.
    pub fn nest(id: LoopId, trip_count: u64, perfect: bool, children: Vec<LoopShape>) -> Self {
        LoopShape {
            id,
            trip_count,
            children,
            perfect,
        }
    }

    /// Whether the subtree rooted here is a perfect chain down to a leaf.
    pub fn is_perfect_chain(&self) -> bool {
        if self.children.is_empty() {
            true
        } else {
            self.children.len() == 1 && self.perfect && self.children[0].is_perfect_chain()
        }
    }

    /// All loop ids in the subtree (pre-order).
    pub fn ids(&self) -> Vec<LoopId> {
        let mut out = vec![self.id.clone()];
        for c in &self.children {
            out.extend(c.ids());
        }
        out
    }
}

/// Ties an array dimension's partitioning factor to a loop's unroll factor,
/// as the paper does ("partitioning factors consistent with unroll factors").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayBinding {
    /// Array name.
    pub array: String,
    /// 1-based dimension.
    pub dim: u32,
    /// Loop whose unroll factor drives the partitioning.
    pub loop_id: LoopId,
}

/// The pragma design space of one kernel.
///
/// # Example
///
/// ```
/// use pragma::{DesignSpace, LoopId, LoopShape};
///
/// let inner = LoopShape::leaf(LoopId::from_path(&[0, 0]), 16);
/// let outer = LoopShape::nest(LoopId::from_path(&[0]), 16, true, vec![inner]);
/// let space = DesignSpace::new("toy", vec![outer], vec![], vec![]);
/// let configs = space.enumerate();
/// assert!(configs.len() > 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignSpace {
    /// Kernel name.
    pub kernel: String,
    /// Top-level loop nests.
    pub roots: Vec<LoopShape>,
    /// Arrays and their dimensions.
    pub arrays: Vec<(String, Vec<usize>)>,
    /// Partition-to-unroll bindings.
    pub bindings: Vec<ArrayBinding>,
    /// Unroll factors explored (the paper uses `{1, 2, 4, 8, 16}`).
    pub unroll_factors: Vec<u32>,
}

/// Pragma choices for one loop subtree, as `(loop, pragma)` assignments.
type Assignment = Vec<(LoopId, crate::config::LoopPragma)>;

impl DesignSpace {
    /// Creates a design space with the paper's default unroll factors.
    pub fn new(
        kernel: impl Into<String>,
        roots: Vec<LoopShape>,
        arrays: Vec<(String, Vec<usize>)>,
        bindings: Vec<ArrayBinding>,
    ) -> Self {
        DesignSpace {
            kernel: kernel.into(),
            roots,
            arrays,
            bindings,
            unroll_factors: vec![1, 2, 4, 8, 16],
        }
    }

    /// Enumerates every legal pragma configuration.
    ///
    /// Legality rules (mirroring Vitis HLS semantics used in the paper):
    ///
    /// * loops strictly inside a pipelined loop are fully unrolled,
    /// * `loop_flatten` is only offered on perfect nest chains, together with
    ///   pipelining the innermost level,
    /// * unroll factors above the trip count collapse to full unrolling,
    /// * duplicate configurations (by fingerprint) are pruned.
    pub fn enumerate(&self) -> Vec<PragmaConfig> {
        let sp = obs::span("pragma_enumerate");
        let mut per_root: Vec<Vec<Assignment>> = Vec::new();
        for root in &self.roots {
            per_root.push(self.enumerate_loop(root, false));
        }
        // cross product over roots
        let mut combos: Vec<Assignment> = vec![Vec::new()];
        for choices in per_root {
            let mut next = Vec::with_capacity(combos.len() * choices.len());
            for base in &combos {
                for choice in &choices {
                    let mut merged = base.clone();
                    merged.extend(choice.iter().cloned());
                    next.push(merged);
                }
            }
            combos = next;
        }

        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::with_capacity(combos.len());
        for combo in combos {
            let mut cfg = PragmaConfig::new();
            for (id, p) in &combo {
                cfg.set_pipeline(id.clone(), p.pipeline);
                cfg.set_unroll(id.clone(), p.unroll);
                cfg.set_flatten(id.clone(), p.flatten);
            }
            self.apply_bindings(&mut cfg);
            if seen.insert(cfg.fingerprint()) {
                out.push(cfg);
            }
        }
        sp.attr("configs", out.len());
        out
    }

    /// Deterministically subsamples the space to at most `n` configurations
    /// (always keeping the pragma-free design if present).
    pub fn enumerate_capped(&self, n: usize) -> Vec<PragmaConfig> {
        let all = self.enumerate();
        if all.len() <= n || n == 0 {
            return all;
        }
        let stride = all.len() as f64 / n as f64;
        let mut out = Vec::with_capacity(n);
        let mut cursor = 0.0f64;
        while out.len() < n {
            let idx = (cursor as usize).min(all.len() - 1);
            out.push(all[idx].clone());
            cursor += stride;
        }
        out
    }

    /// Derives array partitioning from the loop unroll factors via bindings
    /// (cyclic partitioning, factor = effective unroll factor).
    ///
    /// Public so heuristic explorers that synthesize configurations outside
    /// [`DesignSpace::enumerate`] (the genome decoder in `crates/search`)
    /// land in exactly the same configuration space as the exhaustive
    /// enumeration — partitioning is always *derived*, never an independent
    /// search dimension.
    pub fn apply_bindings(&self, cfg: &mut PragmaConfig) {
        for b in &self.bindings {
            let pragma = cfg.loop_pragma(&b.loop_id);
            let tc = self
                .find_loop(&b.loop_id)
                .map(|l| l.trip_count)
                .unwrap_or(1);
            let factor = pragma.unroll.factor(tc) as u32;
            if factor > 1 {
                cfg.set_partition(
                    b.array.clone(),
                    b.dim,
                    ArrayPartition {
                        kind: PartitionKind::Cyclic,
                        factor,
                    },
                );
            }
        }
    }

    fn find_loop(&self, id: &LoopId) -> Option<&LoopShape> {
        fn walk<'a>(shape: &'a LoopShape, id: &LoopId) -> Option<&'a LoopShape> {
            if &shape.id == id {
                return Some(shape);
            }
            shape.children.iter().find_map(|c| walk(c, id))
        }
        self.roots.iter().find_map(|r| walk(r, id))
    }

    /// Enumerates pragma assignments for the subtree rooted at `node`.
    ///
    /// `forced_full` is set when an ancestor pipeline requires this loop to
    /// be fully unrolled.
    fn enumerate_loop(&self, node: &LoopShape, forced_full: bool) -> Vec<Assignment> {
        use crate::config::LoopPragma;

        if forced_full {
            let mut assignment = vec![(
                node.id.clone(),
                LoopPragma {
                    pipeline: false,
                    unroll: Unroll::Full,
                    flatten: false,
                },
            )];
            for c in &node.children {
                // exactly one choice below a pipeline
                assignment.extend(self.enumerate_loop(c, true).remove(0));
            }
            return vec![assignment];
        }

        let mut out: Vec<Assignment> = Vec::new();

        // (a) pipeline here (+ optional partial unroll); children fully unroll
        for &f in &self.unroll_factors {
            if u64::from(f) > node.trip_count {
                continue;
            }
            let unroll = if f == 1 {
                Unroll::Off
            } else {
                Unroll::Factor(f)
            };
            let mut assignment = vec![(
                node.id.clone(),
                LoopPragma {
                    pipeline: true,
                    unroll,
                    flatten: false,
                },
            )];
            for c in &node.children {
                assignment.extend(self.enumerate_loop(c, true).remove(0));
            }
            out.push(assignment);
        }

        // (b) no pipeline here: choose an unroll factor and recurse
        let child_choice_sets: Vec<Vec<Assignment>> = node
            .children
            .iter()
            .map(|c| self.enumerate_loop(c, false))
            .collect();
        let mut child_combos: Vec<Assignment> = vec![Vec::new()];
        for set in &child_choice_sets {
            let mut next = Vec::with_capacity(child_combos.len() * set.len());
            for base in &child_combos {
                for choice in set {
                    let mut merged = base.clone();
                    merged.extend(choice.iter().cloned());
                    next.push(merged);
                }
            }
            child_combos = next;
        }
        for &f in &self.unroll_factors {
            if u64::from(f) > node.trip_count {
                continue;
            }
            let unroll = if f == 1 {
                Unroll::Off
            } else {
                Unroll::Factor(f)
            };
            for children in &child_combos {
                let mut assignment = vec![(
                    node.id.clone(),
                    LoopPragma {
                        pipeline: false,
                        unroll,
                        flatten: false,
                    },
                )];
                assignment.extend(children.iter().cloned());
                out.push(assignment);
            }
        }

        // (c) flatten + pipeline the innermost level of a perfect chain
        if !node.children.is_empty() && node.is_perfect_chain() {
            let mut assignment = Vec::new();
            let mut cur = node;
            loop {
                if cur.children.is_empty() {
                    assignment.push((
                        cur.id.clone(),
                        LoopPragma {
                            pipeline: true,
                            unroll: Unroll::Off,
                            flatten: true,
                        },
                    ));
                    break;
                }
                assignment.push((
                    cur.id.clone(),
                    LoopPragma {
                        pipeline: false,
                        unroll: Unroll::Off,
                        flatten: true,
                    },
                ));
                cur = &cur.children[0];
            }
            out.push(assignment);
        }

        out
    }

    /// Number of loops in the space.
    pub fn num_loops(&self) -> usize {
        self.roots.iter().map(|r| r.ids().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level_nest() -> LoopShape {
        let inner = LoopShape::leaf(LoopId::from_path(&[0, 0]), 16);
        LoopShape::nest(LoopId::from_path(&[0]), 16, true, vec![inner])
    }

    #[test]
    fn enumeration_covers_expected_families() {
        let space = DesignSpace::new("k", vec![two_level_nest()], vec![], vec![]);
        let configs = space.enumerate();
        let outer = LoopId::from_path(&[0]);
        let inner = LoopId::from_path(&[0, 0]);

        // outer pipeline, inner forced full
        assert!(configs.iter().any(|c| {
            c.loop_pragma(&outer).pipeline && c.loop_pragma(&inner).unroll == Unroll::Full
        }));
        // inner pipeline only
        assert!(configs
            .iter()
            .any(|c| !c.loop_pragma(&outer).pipeline && c.loop_pragma(&inner).pipeline));
        // flatten chain
        assert!(configs.iter().any(|c| {
            c.loop_pragma(&outer).flatten
                && c.loop_pragma(&inner).flatten
                && c.loop_pragma(&inner).pipeline
        }));
        // pragma-free design present
        assert!(configs.iter().any(PragmaConfig::is_trivial));
    }

    #[test]
    fn enumeration_size_in_paper_range_for_two_nests() {
        let n1 = two_level_nest();
        let inner2 = LoopShape::leaf(LoopId::from_path(&[1, 0]), 16);
        let n2 = LoopShape::nest(LoopId::from_path(&[1]), 16, true, vec![inner2]);
        let space = DesignSpace::new("k", vec![n1, n2], vec![], vec![]);
        let n = space.enumerate().len();
        // the paper's DSE spaces have 1972..2796 configurations
        assert!((1000..6000).contains(&n), "unexpected space size {n}");
    }

    #[test]
    fn bindings_tie_partition_to_unroll() {
        let space = DesignSpace::new(
            "k",
            vec![two_level_nest()],
            vec![("a".into(), vec![16])],
            vec![ArrayBinding {
                array: "a".into(),
                dim: 1,
                loop_id: LoopId::from_path(&[0, 0]),
            }],
        );
        let configs = space.enumerate();
        let inner = LoopId::from_path(&[0, 0]);
        for cfg in &configs {
            let unroll = cfg.loop_pragma(&inner).unroll.factor(16) as u32;
            let banks = cfg.array_banks("a", &[16]) as u32;
            assert_eq!(banks, unroll.max(1), "partition must follow unroll");
        }
    }

    #[test]
    fn no_duplicate_fingerprints() {
        let space = DesignSpace::new("k", vec![two_level_nest()], vec![], vec![]);
        let configs = space.enumerate();
        let mut fps: Vec<u64> = configs.iter().map(PragmaConfig::fingerprint).collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), configs.len());
    }

    #[test]
    fn capped_enumeration_subsamples() {
        let space = DesignSpace::new("k", vec![two_level_nest()], vec![], vec![]);
        let all = space.enumerate();
        let capped = space.enumerate_capped(10);
        assert_eq!(capped.len(), 10.min(all.len()));
    }

    #[test]
    fn pipelined_inner_loops_forced_full_below_pipeline() {
        let space = DesignSpace::new("k", vec![two_level_nest()], vec![], vec![]);
        for cfg in space.enumerate() {
            let outer = cfg.loop_pragma(&LoopId::from_path(&[0]));
            let inner = cfg.loop_pragma(&LoopId::from_path(&[0, 0]));
            if outer.pipeline {
                assert_eq!(inner.unroll, Unroll::Full);
                assert!(!inner.pipeline);
            }
        }
    }
}
