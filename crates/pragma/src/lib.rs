#![warn(missing_docs)]
//! HLS pragma configurations and design-space enumeration.
//!
//! A [`PragmaConfig`] assigns pipelining / unrolling / flattening decisions to
//! loops (addressed by [`LoopId`] paths) and partitioning decisions to
//! arrays. A [`DesignSpace`] describes the legal configuration set of one
//! kernel and enumerates it the way the paper's DSE experiment does
//! (§IV-D): pragmas applied iteratively from inner to outer loops, unroll
//! factors from `{1, 2, 4, 8, 16}`, array partitioning factors tied to
//! unroll factors.
//!
//! # Example
//!
//! ```
//! use pragma::{LoopId, PragmaConfig, Unroll};
//!
//! let mut cfg = PragmaConfig::default();
//! let inner = LoopId::from_path(&[0, 0]);
//! cfg.set_pipeline(inner.clone(), true);
//! cfg.set_unroll(LoopId::from_path(&[0]), Unroll::Factor(2));
//! assert!(cfg.loop_pragma(&inner).pipeline);
//! ```

mod config;
mod space;

pub use config::{ArrayPartition, LoopId, LoopPragma, PragmaConfig, Unroll};
pub use frontc::PartitionKind;
pub use space::{ArrayBinding, DesignSpace, LoopShape};
