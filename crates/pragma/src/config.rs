//! Pragma configuration types.

use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hasher;

use frontc::PartitionKind;
use obs::hash::Fnv1aHasher;

/// Identifies a loop by its path of loop indices from the function body.
///
/// `[0]` is the first top-level loop, `[0, 1]` the second loop nested
/// directly inside it, and so on. Only loop statements are counted.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LoopId(Vec<u16>);

impl LoopId {
    /// The root path (used as a parent for top-level loops).
    pub fn root() -> Self {
        LoopId(Vec::new())
    }

    /// Builds an id from an explicit path.
    pub fn from_path(path: &[u16]) -> Self {
        LoopId(path.to_vec())
    }

    /// The child loop with index `i` under this loop.
    pub fn child(&self, i: u16) -> LoopId {
        let mut p = self.0.clone();
        p.push(i);
        LoopId(p)
    }

    /// Parent loop id, or `None` for top-level loops.
    pub fn parent(&self) -> Option<LoopId> {
        if self.0.is_empty() {
            None
        } else {
            Some(LoopId(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// Nesting depth (1 for top-level loops).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// Whether `self` is an ancestor of (or equal to) `other`.
    pub fn contains(&self, other: &LoopId) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// Raw path.
    pub fn path(&self) -> &[u16] {
        &self.0
    }
}

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("<root>");
        }
        for (i, seg) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "L{seg}")?;
        }
        Ok(())
    }
}

/// Unrolling decision for one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Unroll {
    /// No unrolling (factor 1).
    #[default]
    Off,
    /// Partial unroll by the given factor (> 1).
    Factor(u32),
    /// Complete unroll (replicate the body trip-count times).
    Full,
}

impl Unroll {
    /// Effective replication factor given the loop trip count.
    pub fn factor(&self, trip_count: u64) -> u64 {
        match self {
            Unroll::Off => 1,
            Unroll::Factor(f) => u64::from(*f).min(trip_count.max(1)),
            Unroll::Full => trip_count.max(1),
        }
    }

    /// Whether the loop disappears entirely (full unroll).
    pub fn is_full(&self, trip_count: u64) -> bool {
        match self {
            Unroll::Off => false,
            Unroll::Factor(f) => u64::from(*f) >= trip_count,
            Unroll::Full => true,
        }
    }
}

/// Pragma decisions attached to one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LoopPragma {
    /// `#pragma HLS pipeline`
    pub pipeline: bool,
    /// `#pragma HLS unroll`
    pub unroll: Unroll,
    /// `#pragma HLS loop_flatten`
    pub flatten: bool,
}

/// Partitioning of one array dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayPartition {
    /// Partition flavour.
    pub kind: PartitionKind,
    /// Bank count along this dimension (1 = unpartitioned).
    pub factor: u32,
}

impl Default for ArrayPartition {
    fn default() -> Self {
        ArrayPartition {
            kind: PartitionKind::Cyclic,
            factor: 1,
        }
    }
}

/// A complete pragma configuration for one kernel.
///
/// Absent entries mean "no pragma": loops default to [`LoopPragma::default`]
/// and arrays to unpartitioned.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PragmaConfig {
    loops: BTreeMap<LoopId, LoopPragma>,
    /// Per-array, per-dimension partitioning.
    arrays: BTreeMap<String, Vec<ArrayPartition>>,
}

impl PragmaConfig {
    /// An empty (pragma-free) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// The pragma set of `loop_id` (default if absent).
    pub fn loop_pragma(&self, loop_id: &LoopId) -> LoopPragma {
        self.loops.get(loop_id).copied().unwrap_or_default()
    }

    /// Sets/clears pipelining on a loop.
    pub fn set_pipeline(&mut self, loop_id: LoopId, pipeline: bool) {
        self.loops.entry(loop_id).or_default().pipeline = pipeline;
    }

    /// Sets the unroll decision of a loop.
    pub fn set_unroll(&mut self, loop_id: LoopId, unroll: Unroll) {
        self.loops.entry(loop_id).or_default().unroll = unroll;
    }

    /// Sets/clears loop flattening on a loop.
    pub fn set_flatten(&mut self, loop_id: LoopId, flatten: bool) {
        self.loops.entry(loop_id).or_default().flatten = flatten;
    }

    /// Sets the partitioning of one array dimension (1-based `dim`).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn set_partition(&mut self, array: impl Into<String>, dim: u32, part: ArrayPartition) {
        assert!(dim >= 1, "dim is 1-based");
        let v = self.arrays.entry(array.into()).or_default();
        let d = dim as usize - 1;
        if v.len() <= d {
            v.resize(d + 1, ArrayPartition::default());
        }
        v[d] = part;
    }

    /// Partitioning of `array` along 1-based `dim` (default if absent).
    pub fn partition(&self, array: &str, dim: u32) -> ArrayPartition {
        self.arrays
            .get(array)
            .and_then(|v| v.get(dim as usize - 1))
            .copied()
            .unwrap_or_default()
    }

    /// Total bank count of an array with the given dimensions.
    ///
    /// `complete` partitioning along a dimension contributes that dimension's
    /// size; otherwise the factor (clamped to the dimension size).
    pub fn array_banks(&self, array: &str, dims: &[usize]) -> usize {
        dims.iter()
            .enumerate()
            .map(|(i, &n)| {
                let p = self.partition(array, i as u32 + 1);
                match p.kind {
                    PartitionKind::Complete if p.factor > 1 || self.is_partitioned(array, i) => n,
                    _ => (p.factor as usize).clamp(1, n.max(1)),
                }
            })
            .product::<usize>()
            .max(1)
    }

    fn is_partitioned(&self, array: &str, dim_idx: usize) -> bool {
        self.arrays
            .get(array)
            .and_then(|v| v.get(dim_idx))
            .is_some()
    }

    /// Iterates over loops with explicit pragma entries.
    pub fn loops(&self) -> impl Iterator<Item = (&LoopId, &LoopPragma)> {
        self.loops.iter()
    }

    /// Iterates over arrays with explicit partition entries.
    pub fn arrays(&self) -> impl Iterator<Item = (&str, &[ArrayPartition])> {
        self.arrays.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Whether this configuration applies any pragma at all.
    pub fn is_trivial(&self) -> bool {
        self.loops.values().all(|p| *p == LoopPragma::default())
            && self.arrays.values().all(|v| {
                v.iter()
                    .all(|p| p.factor <= 1 && p.kind != PartitionKind::Complete)
            })
    }

    /// A deterministic 64-bit fingerprint of the configuration (used to seed
    /// the simulated post-route variance per design point and as an `incr`
    /// dependency-value fingerprint). Hashed with the workspace's shared
    /// FNV-1a implementation ([`obs::hash`]); the byte stream is stable
    /// across releases.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1aHasher::new();
        for (id, p) in &self.loops {
            for seg in id.path() {
                h.write_u16(*seg);
            }
            h.write(&[u8::from(p.pipeline), u8::from(p.flatten)]);
            match p.unroll {
                Unroll::Off => h.write(&[0]),
                Unroll::Factor(f) => {
                    h.write(&[1]);
                    h.write_u32(f);
                }
                Unroll::Full => h.write(&[2]),
            }
            h.write(&[0xfe]);
        }
        for (name, parts) in &self.arrays {
            h.write(name.as_bytes());
            for p in parts {
                h.write(&[match p.kind {
                    PartitionKind::Cyclic => 1,
                    PartitionKind::Block => 2,
                    PartitionKind::Complete => 3,
                }]);
                h.write_u32(p.factor);
            }
            h.write(&[0xff]);
        }
        h.finish()
    }
}

impl fmt::Display for PragmaConfig {
    /// Renders the configuration as a compact pragma list, e.g.
    /// `L0:pipeline L0.L0:unroll=4 a@1:cyclic(4)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| {
            if first {
                first = false;
                Ok(())
            } else {
                f.write_str(" ")
            }
        };
        for (id, p) in &self.loops {
            let mut tags = Vec::new();
            if p.pipeline {
                tags.push("pipeline".to_string());
            }
            if p.flatten {
                tags.push("flatten".to_string());
            }
            match p.unroll {
                Unroll::Off => {}
                Unroll::Factor(u) => tags.push(format!("unroll={u}")),
                Unroll::Full => tags.push("unroll=full".to_string()),
            }
            if !tags.is_empty() {
                sep(f)?;
                write!(f, "{id}:{}", tags.join("+"))?;
            }
        }
        for (name, parts) in &self.arrays {
            for (d, p) in parts.iter().enumerate() {
                if p.factor > 1 || p.kind == PartitionKind::Complete {
                    sep(f)?;
                    write!(f, "{name}@{}:{}({})", d + 1, p.kind, p.factor)?;
                }
            }
        }
        if first {
            f.write_str("<no pragmas>")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_id_paths() {
        let root = LoopId::root();
        let a = root.child(0);
        let b = a.child(1);
        assert_eq!(b.path(), &[0, 1]);
        assert_eq!(b.parent(), Some(a.clone()));
        assert_eq!(b.depth(), 2);
        assert!(a.contains(&b));
        assert!(!b.contains(&a));
        assert_eq!(b.to_string(), "L0.L1");
    }

    #[test]
    fn unroll_factor_clamps_to_trip_count() {
        assert_eq!(Unroll::Off.factor(10), 1);
        assert_eq!(Unroll::Factor(4).factor(10), 4);
        assert_eq!(Unroll::Factor(16).factor(10), 10);
        assert_eq!(Unroll::Full.factor(10), 10);
        assert!(Unroll::Factor(16).is_full(10));
        assert!(!Unroll::Factor(2).is_full(10));
    }

    #[test]
    fn bank_counts_multiply_over_dims() {
        let mut cfg = PragmaConfig::new();
        cfg.set_partition(
            "a",
            1,
            ArrayPartition {
                kind: PartitionKind::Cyclic,
                factor: 4,
            },
        );
        cfg.set_partition(
            "a",
            2,
            ArrayPartition {
                kind: PartitionKind::Block,
                factor: 2,
            },
        );
        assert_eq!(cfg.array_banks("a", &[16, 16]), 8);
        assert_eq!(cfg.array_banks("b", &[16, 16]), 1);
    }

    #[test]
    fn complete_partition_uses_dimension_size() {
        let mut cfg = PragmaConfig::new();
        cfg.set_partition(
            "a",
            1,
            ArrayPartition {
                kind: PartitionKind::Complete,
                factor: 1,
            },
        );
        assert_eq!(cfg.array_banks("a", &[8]), 8);
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let mut a = PragmaConfig::new();
        a.set_pipeline(LoopId::from_path(&[0]), true);
        let mut b = PragmaConfig::new();
        b.set_unroll(LoopId::from_path(&[0]), Unroll::Factor(2));
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }

    #[test]
    fn display_renders_compact_pragma_list() {
        let mut cfg = PragmaConfig::new();
        assert_eq!(cfg.to_string(), "<no pragmas>");
        cfg.set_pipeline(LoopId::from_path(&[0, 1]), true);
        cfg.set_unroll(LoopId::from_path(&[0]), Unroll::Factor(4));
        cfg.set_partition(
            "a",
            1,
            ArrayPartition {
                kind: PartitionKind::Cyclic,
                factor: 4,
            },
        );
        let text = cfg.to_string();
        assert!(text.contains("L0:unroll=4"), "{text}");
        assert!(text.contains("L0.L1:pipeline"), "{text}");
        assert!(text.contains("a@1:cyclic(4)"), "{text}");
    }

    #[test]
    fn trivial_detection() {
        let mut cfg = PragmaConfig::new();
        assert!(cfg.is_trivial());
        cfg.set_pipeline(LoopId::from_path(&[0]), true);
        assert!(!cfg.is_trivial());
    }
}
