//! Trainable parameters with Adam optimizer state.

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::matrix::Matrix;
use crate::tape::Tape;

/// Handle to a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

struct Entry {
    name: String,
    value: Matrix,
    m: Matrix,
    v: Matrix,
}

/// Failure importing a parameter value by name (checkpoint restore).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportError {
    /// No parameter is registered under this name.
    UnknownParam(String),
    /// The imported value's shape differs from the registered parameter.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Shape the store registered.
        expected: (usize, usize),
        /// Shape the import carried.
        found: (usize, usize),
    },
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::UnknownParam(name) => write!(f, "unknown parameter {name:?}"),
            ImportError::ShapeMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "parameter {name:?} expects shape {}x{}, import has {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
        }
    }
}

impl std::error::Error for ImportError {}

/// Adam hyper-parameters.
///
/// # Example
///
/// ```
/// let cfg = tensor::AdamConfig::with_lr(3e-3);
/// assert_eq!(cfg.lr, 3e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    /// L2 weight decay (decoupled, AdamW-style).
    pub weight_decay: f32,
    /// Global gradient-norm clip (0 disables clipping).
    pub clip: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            clip: 0.0,
        }
    }
}

impl AdamConfig {
    /// Default configuration with the given learning rate.
    pub fn with_lr(lr: f32) -> Self {
        AdamConfig {
            lr,
            ..AdamConfig::default()
        }
    }
}

/// Per-parameter gradients extracted from one or more tapes, aligned with
/// the [`ParamStore`] that produced them.
///
/// `None` entries are parameters no gradient reached. Accumulation is
/// position-wise and order-sensitive only in the floating-point sense:
/// callers that need bit-reproducible results must accumulate sets in a
/// deterministic order (the `par` executor's ordered merge provides one).
#[derive(Debug, Clone)]
pub struct GradSet {
    grads: Vec<Option<Matrix>>,
}

impl GradSet {
    /// Adds `other` into `self`, position-wise.
    ///
    /// # Panics
    ///
    /// Panics if the sets come from stores of different sizes.
    pub fn accumulate(&mut self, other: &GradSet) {
        assert_eq!(self.grads.len(), other.grads.len(), "gradient set mismatch");
        for (a, b) in self.grads.iter_mut().zip(&other.grads) {
            match (a, b) {
                (Some(ga), Some(gb)) => ga.add_assign(gb),
                (slot @ None, Some(gb)) => *slot = Some(gb.clone()),
                (_, None) => {}
            }
        }
    }

    /// Scales every gradient by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for g in self.grads.iter_mut().flatten() {
            *g = g.scale(s);
        }
    }
}

/// Collection of named trainable parameters.
///
/// Models store [`ParamId`] handles; the values (and the Adam moments) live
/// here so optimizer steps and (de)serialization are centralized.
///
/// # Example
///
/// ```
/// use tensor::{Matrix, ParamStore};
/// let mut store = ParamStore::new();
/// let id = store.add("layer.weight", Matrix::zeros(4, 4));
/// assert_eq!(store.value(id).shape(), (4, 4));
/// ```
pub struct ParamStore {
    entries: Vec<Entry>,
    step: u64,
}

impl fmt::Debug for ParamStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ParamStore {{ params: {}, scalars: {}, step: {} }}",
            self.entries.len(),
            self.num_scalars(),
            self.step
        )
    }
}

impl Default for ParamStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore {
            entries: Vec::new(),
            step: 0,
        }
    }

    /// Registers a parameter, returning its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let (r, c) = value.shape();
        self.entries.push(Entry {
            name: name.into(),
            value,
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        });
        ParamId(self.entries.len() - 1)
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.entries[id.0].value
    }

    /// Mutable access to a parameter value (e.g. for custom initialization).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.entries[id.0].value
    }

    /// Name the parameter was registered under.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Optimizer step counter (number of `adam_step` calls so far).
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Collects the per-parameter gradients recorded on `tape` into a
    /// [`GradSet`] aligned with this store.
    ///
    /// The tape must have had [`Tape::backward`] run. Parameters bound more
    /// than once on the tape have their gradients summed. Gradient sets from
    /// several tapes (e.g. data-parallel micro-batches) can be combined with
    /// [`GradSet::accumulate`] and applied with [`ParamStore::adam_step_with`].
    pub fn grads_of(&self, tape: &Tape) -> GradSet {
        let mut grads: Vec<Option<Matrix>> = vec![None; self.entries.len()];
        for &(id, var) in tape.bindings() {
            let g = tape.grad(var);
            match &mut grads[id.0] {
                Some(acc) => acc.add_assign(&g),
                slot @ None => *slot = Some(g),
            }
        }
        GradSet { grads }
    }

    /// Applies one Adam update using the gradients recorded on `tape`.
    ///
    /// The tape must have had [`Tape::backward`] run. Parameters bound more
    /// than once on the tape have their gradients summed.
    pub fn adam_step(&mut self, tape: &Tape, cfg: &AdamConfig) {
        let grads = self.grads_of(tape);
        self.adam_step_with(grads, cfg);
    }

    /// Applies one Adam update from an explicit gradient set (the
    /// data-parallel entry point: accumulate micro-batch gradients in a
    /// fixed order, then step once).
    ///
    /// # Panics
    ///
    /// Panics if `grads` was built against a store with a different number
    /// of parameters.
    pub fn adam_step_with(&mut self, grads: GradSet, cfg: &AdamConfig) {
        assert_eq!(
            grads.grads.len(),
            self.entries.len(),
            "gradient set does not match this store"
        );
        obs::metrics::counter_add("tensor/adam_steps", 1);
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - cfg.beta1.powf(t);
        let bc2 = 1.0 - cfg.beta2.powf(t);
        let mut grads = grads.grads;
        // global gradient-norm clipping
        if cfg.clip > 0.0 {
            let norm: f32 = grads
                .iter()
                .flatten()
                .map(|g| g.as_slice().iter().map(|v| v * v).sum::<f32>())
                .sum::<f32>()
                .sqrt();
            if norm > cfg.clip {
                let scale = cfg.clip / norm;
                for g in grads.iter_mut().flatten() {
                    *g = g.scale(scale);
                }
            }
        }
        for (idx, g) in grads.into_iter().enumerate() {
            let Some(g) = g else { continue };
            let e = &mut self.entries[idx];
            for i in 0..g.len() {
                let gi = g.as_slice()[i] + cfg.weight_decay * e.value.as_slice()[i];
                let m = cfg.beta1 * e.m.as_slice()[i] + (1.0 - cfg.beta1) * gi;
                let v = cfg.beta2 * e.v.as_slice()[i] + (1.0 - cfg.beta2) * gi * gi;
                e.m.as_mut_slice()[i] = m;
                e.v.as_mut_slice()[i] = v;
                let mhat = m / bc1;
                let vhat = v / bc2;
                e.value.as_mut_slice()[i] -= cfg.lr * mhat / (vhat.sqrt() + cfg.eps);
            }
        }
    }

    /// Iterates `(name, value)` pairs in registration order.
    ///
    /// This is the weight-export entry point for external serializers
    /// (e.g. the `serve` checkpoint format); registration order is stable
    /// for a fixed model architecture, so exported record order is too.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &Matrix)> {
        self.entries.iter().map(|e| (e.name.as_str(), &e.value))
    }

    /// Replaces the value of the named parameter (weight import).
    ///
    /// Adam moments are left untouched: importing restores *inference*
    /// state, matching the plain-text snapshot semantics of
    /// [`ParamStore::save`].
    ///
    /// # Errors
    ///
    /// Returns [`ImportError::UnknownParam`] for an unregistered name and
    /// [`ImportError::ShapeMismatch`] when the shapes disagree.
    pub fn import(&mut self, name: &str, value: Matrix) -> Result<(), ImportError> {
        let entry = self
            .entries
            .iter_mut()
            .find(|e| e.name == name)
            .ok_or_else(|| ImportError::UnknownParam(name.to_string()))?;
        if entry.value.shape() != value.shape() {
            return Err(ImportError::ShapeMismatch {
                name: name.to_string(),
                expected: entry.value.shape(),
                found: value.shape(),
            });
        }
        entry.value = value;
        Ok(())
    }

    /// Serializes all parameter values as a plain text snapshot.
    ///
    /// Format: one `name rows cols v0 v1 ...` line per parameter. Adam
    /// moments are not persisted.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "paramstore v1 {}", self.entries.len())?;
        for e in &self.entries {
            write!(w, "{} {} {}", e.name, e.value.rows(), e.value.cols())?;
            for v in e.value.as_slice() {
                write!(w, " {}", v)?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// Restores parameter values from a snapshot created by [`ParamStore::save`].
    ///
    /// Parameters are matched by name; shapes must agree.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed input, unknown parameter names, or shape
    /// mismatches.
    pub fn load<R: BufRead>(&mut self, r: R) -> io::Result<()> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut lines = r.lines();
        let header = lines.next().ok_or_else(|| bad("empty snapshot"))??;
        if !header.starts_with("paramstore v1") {
            return Err(bad("unrecognized snapshot header"));
        }
        for line in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            let name = it.next().ok_or_else(|| bad("missing name"))?;
            let rows: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad("missing rows"))?;
            let cols: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad("missing cols"))?;
            let data: Vec<f32> = it.map(|s| s.parse().unwrap_or(0.0)).collect();
            if data.len() != rows * cols {
                return Err(bad("value count mismatch"));
            }
            let entry = self
                .entries
                .iter_mut()
                .find(|e| e.name == name)
                .ok_or_else(|| bad("unknown parameter name"))?;
            if entry.value.shape() != (rows, cols) {
                return Err(bad("parameter shape mismatch"));
            }
            entry.value = Matrix::from_vec(rows, cols, data);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_reduces_quadratic_loss() {
        // minimize (w - 3)^2 via the tape
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::scalar(0.0));
        let cfg = AdamConfig::with_lr(0.1);
        for _ in 0..300 {
            let mut t = Tape::new();
            let wv = t.param(&store, w);
            let target = t.leaf(Matrix::scalar(3.0));
            let loss = t.mse(wv, target);
            t.backward(loss);
            store.adam_step(&t, &cfg);
        }
        assert!((store.value(w).item() - 3.0).abs() < 1e-2);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let b = store.add("b", Matrix::scalar(-7.5));
        let mut buf = Vec::new();
        store.save(&mut buf).unwrap();

        let mut other = ParamStore::new();
        let a2 = other.add("a", Matrix::zeros(1, 3));
        let b2 = other.add("b", Matrix::zeros(1, 1));
        other.load(&buf[..]).unwrap();
        assert_eq!(other.value(a2), store.value(a));
        assert_eq!(other.value(b2), store.value(b));
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let mut store = ParamStore::new();
        store.add("a", Matrix::zeros(2, 2));
        let snapshot = b"paramstore v1 1\na 1 1 3.5\n";
        assert!(store.load(&snapshot[..]).is_err());
    }

    #[test]
    fn entries_export_in_registration_order() {
        let mut store = ParamStore::new();
        store.add("w1", Matrix::zeros(2, 3));
        store.add("w0", Matrix::zeros(1, 1));
        let names: Vec<&str> = store.entries().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["w1", "w0"]);
        let shapes: Vec<(usize, usize)> = store.entries().map(|(_, m)| m.shape()).collect();
        assert_eq!(shapes, vec![(2, 3), (1, 1)]);
    }

    #[test]
    fn import_replaces_values_and_rejects_mismatches() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::zeros(1, 2));
        store
            .import("w", Matrix::from_vec(1, 2, vec![4.0, 5.0]))
            .unwrap();
        assert_eq!(store.value(w).as_slice(), &[4.0, 5.0]);

        assert_eq!(
            store.import("nope", Matrix::zeros(1, 2)),
            Err(ImportError::UnknownParam("nope".into()))
        );
        assert!(matches!(
            store.import("w", Matrix::zeros(2, 1)),
            Err(ImportError::ShapeMismatch { .. })
        ));
        // failed imports must not clobber the value
        assert_eq!(store.value(w).as_slice(), &[4.0, 5.0]);
    }

    #[test]
    fn duplicate_bindings_sum_gradients() {
        // loss = (w + w) => dw = 2
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::scalar(1.0));
        let mut t = Tape::new();
        let w1 = t.param(&store, w);
        let w2 = t.param(&store, w);
        let s = t.add(w1, w2);
        t.backward(s);
        // both bindings carry gradient 1; adam should see total 2 and move w
        // in the negative direction
        let before = store.value(w).item();
        store.adam_step(&t, &AdamConfig::with_lr(0.5));
        assert!(store.value(w).item() < before);
    }
}
