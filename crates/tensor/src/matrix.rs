//! Row-major dense `f32` matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A row-major dense matrix of `f32` values.
///
/// `Matrix` is the only value type flowing through the autograd [`Tape`]
/// (vectors are `r x 1` or `1 x c` matrices, scalars are `1 x 1`).
///
/// [`Tape`]: crate::Tape
///
/// # Example
///
/// ```
/// use tensor::Matrix;
/// let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(8);
            for c in 0..show_cols {
                write!(f, "{:9.4}", self[(r, c)])?;
                if c + 1 < show_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 6 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for each element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates a single-column matrix from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Matrix::from_vec(values.len(), 1, values.to_vec())
    }

    /// Creates a `1x1` matrix holding a scalar.
    pub fn scalar(value: f32) -> Self {
        Matrix::from_vec(1, 1, vec![value])
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {} out of bounds ({})", r, self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {} out of bounds ({})", r, self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single element of a `1x1` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `1x1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 matrix");
        self.data[0]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop contiguous for both
        // operands, which matters for the training throughput.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum with `rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a * b)
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Adds `rhs` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// Scales all elements by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum element (`f32::NEG_INFINITY` if empty).
    pub fn max(&self) -> f32 {
        self.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    fn zip(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "element-wise op shape mismatch: {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let id = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::from_vec(2, 2, vec![5., 6., 7., 8.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![4., 5., 6.]);
        assert_eq!(a.add(&b).as_slice(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).as_slice(), &[3., 3., 3.]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4., 10., 18.]);
        assert_eq!(a.scale(2.0).as_slice(), &[2., 4., 6.]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_vec(2, 2, vec![1., -2., 3., 4.]);
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.max(), 4.0);
        assert!((a.norm() - 30.0_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn row_access() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.row(1), &[4., 5., 6.]);
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Matrix::scalar(7.5).item(), 7.5);
    }
}
