#![warn(missing_docs)]
//! Dense `f32` matrices with tape-based reverse-mode automatic differentiation.
//!
//! This crate is the numerical substrate for the GNN stack in this workspace.
//! It provides:
//!
//! * [`Matrix`] — a row-major dense `f32` matrix with the usual linear-algebra
//!   helpers,
//! * [`Tape`] — a dynamic computation tape recording forward operations and
//!   replaying them backwards to produce gradients,
//! * [`ParamStore`] — named trainable parameters with Adam optimizer state,
//! * segment/scatter operations (`gather_rows`, `scatter_add_rows`,
//!   `segment_max`, `segment_mean`, `segment_softmax`, …) which are the
//!   message-passing primitives used by graph neural networks.
//!
//! # Example
//!
//! ```
//! use tensor::{Matrix, ParamStore, Tape};
//!
//! let mut params = ParamStore::new();
//! let w = params.add("w", Matrix::from_vec(2, 1, vec![0.5, -0.25]));
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
//! let wv = tape.param(&params, w);
//! let y = tape.matmul(x, wv);
//! let target = tape.leaf(Matrix::zeros(3, 1));
//! let loss = tape.mse(y, target);
//! tape.backward(loss);
//! params.adam_step(&tape, &tensor::AdamConfig::with_lr(1e-2));
//! ```

mod matrix;
mod param;
mod tape;

pub mod check;
pub mod init;

pub use matrix::Matrix;
pub use param::{AdamConfig, GradSet, ImportError, ParamId, ParamStore};
pub use tape::{Tape, Var};
