//! Numerical gradient checking utilities.
//!
//! Used by this crate's own test suite and by downstream crates (e.g. the GNN
//! layers) to validate analytic gradients against central finite differences.

use crate::matrix::Matrix;
use crate::tape::{Tape, Var};

/// Checks the analytic gradient of `build` against finite differences.
///
/// `build` receives a fresh tape and a leaf variable of shape
/// `rows x cols` (deterministic pseudo-random contents) and must return a
/// scalar loss variable. The analytic gradient from [`Tape::backward`] is
/// compared element-wise against a central difference approximation.
///
/// # Panics
///
/// Panics if any element disagrees beyond a combined absolute/relative
/// tolerance — which is the desired behaviour inside tests.
pub fn numeric_grad(rows: usize, cols: usize, build: impl Fn(&mut Tape, Var) -> Var) {
    // Deterministic, non-degenerate inputs (avoid exact zeros so that
    // piecewise activations like ReLU are not probed at their kink).
    let base = Matrix::from_fn(rows, cols, |r, c| {
        let k = (r * cols + c) as f32;
        0.35 * (k * 0.7 + 0.4).sin() + 0.13 * (k + 1.0).cos() + 0.21
    });

    let mut t = Tape::new();
    let x = t.leaf(base.clone());
    let loss = build(&mut t, x);
    assert_eq!(
        t.value(loss).shape(),
        (1, 1),
        "numeric_grad: build must return a scalar loss"
    );
    t.backward(loss);
    let analytic = t.grad(x);

    let eps = 1e-3;
    for i in 0..rows {
        for j in 0..cols {
            let mut plus = base.clone();
            plus[(i, j)] += eps;
            let mut minus = base.clone();
            minus[(i, j)] -= eps;
            let lp = eval(&build, plus);
            let lm = eval(&build, minus);
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic[(i, j)];
            let tol = 2e-2 * (1.0 + a.abs().max(numeric.abs()));
            assert!(
                (a - numeric).abs() <= tol,
                "gradient mismatch at ({i},{j}): analytic={a}, numeric={numeric}"
            );
        }
    }
}

fn eval(build: &impl Fn(&mut Tape, Var) -> Var, input: Matrix) -> f32 {
    let mut t = Tape::new();
    let x = t.leaf(input);
    let loss = build(&mut t, x);
    t.value(loss).item()
}
