//! Dynamic computation tape with reverse-mode differentiation.

use std::sync::Arc;

use crate::matrix::Matrix;
use crate::param::{ParamId, ParamStore};

/// Handle to a value recorded on a [`Tape`].
///
/// `Var` is a cheap copyable index; it is only meaningful together with the
/// tape that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// Index list shared between forward and backward passes.
type Idx = Arc<Vec<u32>>;

/// Recorded operation descriptors. Some payload fields exist only for
/// forward-pass bookkeeping and are not re-read during backward; they are
/// kept for debuggability.
#[allow(dead_code)]
enum Op {
    /// Input with no gradient flowing further back.
    Leaf,
    /// Trainable parameter (gradient is collected by [`ParamStore::adam_step`]).
    Param,
    MatMul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    /// `x[r,c] + bias[1,c]` broadcast over rows.
    AddRow(Var, Var),
    /// `x[r,c] * a[r,1]` broadcast over columns.
    MulCol(Var, Var),
    Scale(Var, f32),
    AddScalar(Var, f32),
    Relu(Var),
    LeakyRelu(Var, f32),
    Sigmoid(Var),
    Tanh(Var),
    Exp(Var),
    /// `sqrt(x + eps)`.
    Sqrt(Var, f32),
    ConcatCols(Vec<Var>),
    GatherRows(Var, Idx),
    ScatterAddRows(Var, Idx, usize),
    SegmentMean(Var, Idx, usize),
    /// Per-(segment, column) max; `aux` stores the winning source row.
    SegmentMax(Var, Idx, usize),
    SegmentSoftmax(Var, Idx, usize),
    SumCols(Var),
    MeanAll(Var),
    Mse(Var, Var),
    /// Mean absolute error.
    Mae(Var, Var),
}

struct Node {
    op: Op,
    value: Matrix,
    /// Auxiliary forward data needed by backward (e.g. argmax rows).
    aux: Vec<u32>,
}

/// A computation tape.
///
/// Operations are recorded in execution order; [`Tape::backward`] walks the
/// tape in reverse accumulating gradients. Values and gradients are dense
/// [`Matrix`] instances.
///
/// # Example
///
/// ```
/// use tensor::{Matrix, Tape};
/// let mut t = Tape::new();
/// let x = t.leaf(Matrix::scalar(3.0));
/// let y = t.mul(x, x);
/// t.backward(y);
/// assert_eq!(t.grad(x).item(), 6.0); // d(x^2)/dx = 2x
/// ```
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<Matrix>>,
    bindings: Vec<(ParamId, Var)>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape {
            nodes: Vec::new(),
            grads: Vec::new(),
            bindings: Vec::new(),
        }
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        self.push_aux(op, value, Vec::new())
    }

    fn push_aux(&mut self, op: Op, value: Matrix, aux: Vec<u32>) -> Var {
        self.nodes.push(Node { op, value, aux });
        self.grads.push(None);
        Var(self.nodes.len() - 1)
    }

    /// Records an input value (constant w.r.t. differentiation).
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(Op::Leaf, value)
    }

    /// Records a trainable parameter from `store`.
    ///
    /// The returned variable participates in differentiation, and the
    /// `(param, var)` binding is remembered so optimizer steps can collect the
    /// gradient after [`Tape::backward`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let v = self.push(Op::Param, store.value(id).clone());
        self.bindings.push((id, v));
        v
    }

    /// Parameter/variable bindings recorded by [`Tape::param`].
    pub fn bindings(&self) -> &[(ParamId, Var)] {
        &self.bindings
    }

    /// Forward value of `v`.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Gradient of the last [`Tape::backward`] loss w.r.t. `v`.
    ///
    /// Returns an all-zero matrix if no gradient reached `v`.
    pub fn grad(&self, v: Var) -> Matrix {
        match &self.grads[v.0] {
            Some(g) => g.clone(),
            None => Matrix::zeros(self.nodes[v.0].value.rows(), self.nodes[v.0].value.cols()),
        }
    }

    fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].value.shape()
    }

    // ---------------------------------------------------------------- ops

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(Op::MatMul(a, b), value)
    }

    /// Element-wise sum (same shapes).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        self.push(Op::Add(a, b), value)
    }

    /// Element-wise difference (same shapes).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.sub(&self.nodes[b.0].value);
        self.push(Op::Sub(a, b), value)
    }

    /// Element-wise product (same shapes).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value);
        self.push(Op::Mul(a, b), value)
    }

    /// Adds a `1 x c` bias row to every row of `x` (`r x c`).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x c`.
    pub fn add_row(&mut self, x: Var, bias: Var) -> Var {
        let (r, c) = self.shape(x);
        assert_eq!(self.shape(bias), (1, c), "bias must be 1x{c}");
        let xm = &self.nodes[x.0].value;
        let bm = &self.nodes[bias.0].value;
        let mut out = Matrix::zeros(r, c);
        for i in 0..r {
            for j in 0..c {
                out[(i, j)] = xm[(i, j)] + bm[(0, j)];
            }
        }
        self.push(Op::AddRow(x, bias), out)
    }

    /// Multiplies every column of `x` (`r x c`) by the column vector `a` (`r x 1`).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not `r x 1`.
    pub fn mul_col(&mut self, x: Var, a: Var) -> Var {
        let (r, c) = self.shape(x);
        assert_eq!(self.shape(a), (r, 1), "scale vector must be {r}x1");
        let xm = &self.nodes[x.0].value;
        let am = &self.nodes[a.0].value;
        let mut out = Matrix::zeros(r, c);
        for i in 0..r {
            let s = am[(i, 0)];
            for j in 0..c {
                out[(i, j)] = xm[(i, j)] * s;
            }
        }
        self.push(Op::MulCol(x, a), out)
    }

    /// Scales all elements by a constant.
    pub fn scale(&mut self, x: Var, s: f32) -> Var {
        let value = self.nodes[x.0].value.scale(s);
        self.push(Op::Scale(x, s), value)
    }

    /// Adds a constant to all elements.
    pub fn add_scalar(&mut self, x: Var, s: f32) -> Var {
        let value = self.nodes[x.0].value.map(|v| v + s);
        self.push(Op::AddScalar(x, s), value)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: Var) -> Var {
        let value = self.nodes[x.0].value.map(|v| v.max(0.0));
        self.push(Op::Relu(x), value)
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, x: Var, alpha: f32) -> Var {
        let value = self.nodes[x.0]
            .value
            .map(|v| if v > 0.0 { v } else { alpha * v });
        self.push(Op::LeakyRelu(x, alpha), value)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let value = self.nodes[x.0].value.map(|v| 1.0 / (1.0 + (-v).exp()));
        self.push(Op::Sigmoid(x), value)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: Var) -> Var {
        let value = self.nodes[x.0].value.map(f32::tanh);
        self.push(Op::Tanh(x), value)
    }

    /// Element-wise exponential.
    pub fn exp(&mut self, x: Var) -> Var {
        let value = self.nodes[x.0].value.map(f32::exp);
        self.push(Op::Exp(x), value)
    }

    /// Element-wise `sqrt(x + eps)`; `eps` keeps the gradient finite at 0.
    pub fn sqrt(&mut self, x: Var, eps: f32) -> Var {
        let value = self.nodes[x.0].value.map(|v| (v + eps).max(0.0).sqrt());
        self.push(Op::Sqrt(x, eps), value)
    }

    /// Concatenates matrices with equal row counts along the column axis.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let rows = self.shape(parts[0]).0;
        let total: usize = parts.iter().map(|&p| self.shape(p).1).sum();
        let mut out = Matrix::zeros(rows, total);
        let mut off = 0;
        for &p in parts {
            let pm = &self.nodes[p.0].value;
            assert_eq!(pm.rows(), rows, "concat_cols row mismatch");
            for i in 0..rows {
                for j in 0..pm.cols() {
                    out[(i, off + j)] = pm[(i, j)];
                }
            }
            off += pm.cols();
        }
        self.push(Op::ConcatCols(parts.to_vec()), out)
    }

    /// Selects rows: `out[i] = x[idx[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&mut self, x: Var, idx: Arc<Vec<u32>>) -> Var {
        let xm = &self.nodes[x.0].value;
        let cols = xm.cols();
        let mut out = Matrix::zeros(idx.len(), cols);
        for (i, &s) in idx.iter().enumerate() {
            let s = s as usize;
            assert!(s < xm.rows(), "gather index {} out of bounds", s);
            out.row_mut(i).copy_from_slice(xm.row(s));
        }
        self.push(Op::GatherRows(x, idx), out)
    }

    /// Scatter-add rows: `out[idx[e]] += x[e]`, with `out` having `n_out` rows.
    ///
    /// This is the GNN message-aggregation primitive (sum over incoming
    /// edges). Also serves as `segment_sum`.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != x.rows()` or an index exceeds `n_out`.
    pub fn scatter_add_rows(&mut self, x: Var, idx: Arc<Vec<u32>>, n_out: usize) -> Var {
        let xm = &self.nodes[x.0].value;
        assert_eq!(idx.len(), xm.rows(), "scatter index length mismatch");
        let cols = xm.cols();
        let mut out = Matrix::zeros(n_out, cols);
        for (e, &d) in idx.iter().enumerate() {
            let d = d as usize;
            assert!(d < n_out, "scatter index {} out of bounds ({})", d, n_out);
            let src = xm.row(e);
            let dst = out.row_mut(d);
            for (o, &v) in dst.iter_mut().zip(src.iter()) {
                *o += v;
            }
        }
        self.push(Op::ScatterAddRows(x, idx, n_out), out)
    }

    /// Segment mean: averages the rows of `x` belonging to each segment.
    ///
    /// Empty segments yield zero rows.
    pub fn segment_mean(&mut self, x: Var, seg: Arc<Vec<u32>>, n_seg: usize) -> Var {
        let xm = &self.nodes[x.0].value;
        assert_eq!(seg.len(), xm.rows(), "segment index length mismatch");
        let cols = xm.cols();
        let mut out = Matrix::zeros(n_seg, cols);
        let mut counts = vec![0u32; n_seg];
        for (e, &s) in seg.iter().enumerate() {
            let s = s as usize;
            counts[s] += 1;
            let src = xm.row(e);
            let dst = out.row_mut(s);
            for (o, &v) in dst.iter_mut().zip(src.iter()) {
                *o += v;
            }
        }
        for (s, &count) in counts.iter().enumerate() {
            if count > 0 {
                let inv = 1.0 / count as f32;
                for v in out.row_mut(s) {
                    *v *= inv;
                }
            }
        }
        self.push_aux(Op::SegmentMean(x, seg, n_seg), out, counts)
    }

    /// Segment max: per-(segment, column) maximum of the rows of `x`.
    ///
    /// Empty segments yield zero rows (no gradient flows to them).
    pub fn segment_max(&mut self, x: Var, seg: Arc<Vec<u32>>, n_seg: usize) -> Var {
        let xm = &self.nodes[x.0].value;
        assert_eq!(seg.len(), xm.rows(), "segment index length mismatch");
        let cols = xm.cols();
        let mut out = Matrix::full(n_seg, cols, f32::NEG_INFINITY);
        // aux[s * cols + j] = winning source row for (segment s, column j),
        // u32::MAX when the segment is empty.
        let mut arg = vec![u32::MAX; n_seg * cols];
        for (e, &s) in seg.iter().enumerate() {
            let s = s as usize;
            let src = xm.row(e);
            for (j, &v) in src.iter().enumerate() {
                if v > out[(s, j)] {
                    out[(s, j)] = v;
                    arg[s * cols + j] = e as u32;
                }
            }
        }
        for v in out.as_mut_slice() {
            if !v.is_finite() {
                *v = 0.0;
            }
        }
        self.push_aux(Op::SegmentMax(x, seg, n_seg), out, arg)
    }

    /// Per-segment softmax over a column vector of logits.
    ///
    /// `x` must be `n x 1`; entries within the same segment are normalized by
    /// a numerically stable softmax. This is the attention-normalization
    /// primitive for GAT/TransformerConv.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not a column vector.
    pub fn segment_softmax(&mut self, x: Var, seg: Arc<Vec<u32>>, n_seg: usize) -> Var {
        let xm = &self.nodes[x.0].value;
        assert_eq!(xm.cols(), 1, "segment_softmax expects a column vector");
        assert_eq!(seg.len(), xm.rows(), "segment index length mismatch");
        let n = xm.rows();
        let mut seg_max = vec![f32::NEG_INFINITY; n_seg];
        for (e, &s) in seg.iter().enumerate() {
            let s = s as usize;
            seg_max[s] = seg_max[s].max(xm[(e, 0)]);
        }
        let mut seg_sum = vec![0.0f32; n_seg];
        let mut out = Matrix::zeros(n, 1);
        for (e, &s) in seg.iter().enumerate() {
            let s = s as usize;
            let v = (xm[(e, 0)] - seg_max[s]).exp();
            out[(e, 0)] = v;
            seg_sum[s] += v;
        }
        for (e, &s) in seg.iter().enumerate() {
            let s = s as usize;
            if seg_sum[s] > 0.0 {
                out[(e, 0)] /= seg_sum[s];
            }
        }
        self.push(Op::SegmentSoftmax(x, seg, n_seg), out)
    }

    /// Row-wise sum: `r x c -> r x 1`.
    pub fn sum_cols(&mut self, x: Var) -> Var {
        let xm = &self.nodes[x.0].value;
        let mut out = Matrix::zeros(xm.rows(), 1);
        for i in 0..xm.rows() {
            out[(i, 0)] = xm.row(i).iter().sum();
        }
        self.push(Op::SumCols(x), out)
    }

    /// Mean over all elements, producing a `1x1` scalar.
    pub fn mean_all(&mut self, x: Var) -> Var {
        let xm = &self.nodes[x.0].value;
        let n = xm.len().max(1) as f32;
        let value = Matrix::scalar(xm.sum() / n);
        self.push(Op::MeanAll(x), value)
    }

    /// Mean squared error between `pred` and `target` (scalar output).
    ///
    /// Gradient flows to both operands.
    pub fn mse(&mut self, pred: Var, target: Var) -> Var {
        let p = &self.nodes[pred.0].value;
        let t = &self.nodes[target.0].value;
        assert_eq!(p.shape(), t.shape(), "mse shape mismatch");
        let n = p.len().max(1) as f32;
        let mut acc = 0.0;
        for (a, b) in p.as_slice().iter().zip(t.as_slice()) {
            let d = a - b;
            acc += d * d;
        }
        self.push(Op::Mse(pred, target), Matrix::scalar(acc / n))
    }

    /// Mean absolute error between `pred` and `target` (scalar output).
    pub fn mae(&mut self, pred: Var, target: Var) -> Var {
        let p = &self.nodes[pred.0].value;
        let t = &self.nodes[target.0].value;
        assert_eq!(p.shape(), t.shape(), "mae shape mismatch");
        let n = p.len().max(1) as f32;
        let acc: f32 = p
            .as_slice()
            .iter()
            .zip(t.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        self.push(Op::Mae(pred, target), Matrix::scalar(acc / n))
    }

    // ----------------------------------------------------------- backward

    /// Runs reverse-mode differentiation from `loss` (must be `1x1`).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(self.shape(loss), (1, 1), "backward requires a scalar loss");
        for g in &mut self.grads {
            *g = None;
        }
        self.grads[loss.0] = Some(Matrix::scalar(1.0));
        for i in (0..self.nodes.len()).rev() {
            let Some(g) = self.grads[i].take() else {
                continue;
            };
            self.propagate(i, &g);
            self.grads[i] = Some(g);
        }
    }

    fn accumulate(&mut self, v: Var, delta: Matrix) {
        match &mut self.grads[v.0] {
            Some(g) => g.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        }
    }

    fn propagate(&mut self, i: usize, g: &Matrix) {
        // `op` borrows are resolved by cloning the lightweight descriptors.
        enum Step {
            One(Var, Matrix),
            Two(Var, Matrix, Var, Matrix),
            Many(Vec<(Var, Matrix)>),
            None,
        }
        let step = match &self.nodes[i].op {
            Op::Leaf | Op::Param => Step::None,
            Op::MatMul(a, b) => {
                let (a, b) = (*a, *b);
                let da = g.matmul(&self.nodes[b.0].value.transpose());
                let db = self.nodes[a.0].value.transpose().matmul(g);
                Step::Two(a, da, b, db)
            }
            Op::Add(a, b) => Step::Two(*a, g.clone(), *b, g.clone()),
            Op::Sub(a, b) => Step::Two(*a, g.clone(), *b, g.scale(-1.0)),
            Op::Mul(a, b) => {
                let (a, b) = (*a, *b);
                let da = g.hadamard(&self.nodes[b.0].value);
                let db = g.hadamard(&self.nodes[a.0].value);
                Step::Two(a, da, b, db)
            }
            Op::AddRow(x, bias) => {
                let (x, bias) = (*x, *bias);
                let mut db = Matrix::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for c in 0..g.cols() {
                        db[(0, c)] += g[(r, c)];
                    }
                }
                Step::Two(x, g.clone(), bias, db)
            }
            Op::MulCol(x, a) => {
                let (x, a) = (*x, *a);
                let am = &self.nodes[a.0].value;
                let xm = &self.nodes[x.0].value;
                let mut dx = Matrix::zeros(g.rows(), g.cols());
                let mut da = Matrix::zeros(g.rows(), 1);
                for r in 0..g.rows() {
                    let s = am[(r, 0)];
                    let mut acc = 0.0;
                    for c in 0..g.cols() {
                        dx[(r, c)] = g[(r, c)] * s;
                        acc += g[(r, c)] * xm[(r, c)];
                    }
                    da[(r, 0)] = acc;
                }
                Step::Two(x, dx, a, da)
            }
            Op::Scale(x, s) => Step::One(*x, g.scale(*s)),
            Op::AddScalar(x, _) => Step::One(*x, g.clone()),
            Op::Relu(x) => {
                let x = *x;
                let xm = &self.nodes[x.0].value;
                let mut dx = g.clone();
                for (d, &v) in dx.as_mut_slice().iter_mut().zip(xm.as_slice()) {
                    if v <= 0.0 {
                        *d = 0.0;
                    }
                }
                Step::One(x, dx)
            }
            Op::LeakyRelu(x, alpha) => {
                let (x, alpha) = (*x, *alpha);
                let xm = &self.nodes[x.0].value;
                let mut dx = g.clone();
                for (d, &v) in dx.as_mut_slice().iter_mut().zip(xm.as_slice()) {
                    if v <= 0.0 {
                        *d *= alpha;
                    }
                }
                Step::One(x, dx)
            }
            Op::Sigmoid(x) => {
                let x = *x;
                let ym = &self.nodes[i].value;
                let mut dx = g.clone();
                for (d, &y) in dx.as_mut_slice().iter_mut().zip(ym.as_slice()) {
                    *d *= y * (1.0 - y);
                }
                Step::One(x, dx)
            }
            Op::Tanh(x) => {
                let x = *x;
                let ym = &self.nodes[i].value;
                let mut dx = g.clone();
                for (d, &y) in dx.as_mut_slice().iter_mut().zip(ym.as_slice()) {
                    *d *= 1.0 - y * y;
                }
                Step::One(x, dx)
            }
            Op::Exp(x) => {
                let x = *x;
                let ym = &self.nodes[i].value;
                Step::One(x, g.hadamard(ym))
            }
            Op::Sqrt(x, _) => {
                let x = *x;
                let ym = &self.nodes[i].value;
                let mut dx = g.clone();
                for (d, &y) in dx.as_mut_slice().iter_mut().zip(ym.as_slice()) {
                    *d *= 0.5 / y.max(1e-8);
                }
                Step::One(x, dx)
            }
            Op::ConcatCols(parts) => {
                let parts = parts.clone();
                let mut grads = Vec::with_capacity(parts.len());
                let mut off = 0;
                for p in parts {
                    let pc = self.nodes[p.0].value.cols();
                    let mut dp = Matrix::zeros(g.rows(), pc);
                    for r in 0..g.rows() {
                        for c in 0..pc {
                            dp[(r, c)] = g[(r, off + c)];
                        }
                    }
                    off += pc;
                    grads.push((p, dp));
                }
                Step::Many(grads)
            }
            Op::GatherRows(x, idx) => {
                let (x, idx) = (*x, Arc::clone(idx));
                let xm = &self.nodes[x.0].value;
                let mut dx = Matrix::zeros(xm.rows(), xm.cols());
                for (e, &s) in idx.iter().enumerate() {
                    let dst = dx.row_mut(s as usize);
                    for (d, &v) in dst.iter_mut().zip(g.row(e)) {
                        *d += v;
                    }
                }
                Step::One(x, dx)
            }
            Op::ScatterAddRows(x, idx, _) => {
                let (x, idx) = (*x, Arc::clone(idx));
                let xm = &self.nodes[x.0].value;
                let mut dx = Matrix::zeros(xm.rows(), xm.cols());
                for (e, &d) in idx.iter().enumerate() {
                    dx.row_mut(e).copy_from_slice(g.row(d as usize));
                }
                Step::One(x, dx)
            }
            Op::SegmentMean(x, seg, _) => {
                let (x, seg) = (*x, Arc::clone(seg));
                let counts = self.nodes[i].aux.clone();
                let xm = &self.nodes[x.0].value;
                let mut dx = Matrix::zeros(xm.rows(), xm.cols());
                for (e, &s) in seg.iter().enumerate() {
                    let s = s as usize;
                    let inv = 1.0 / counts[s].max(1) as f32;
                    for (d, &v) in dx.row_mut(e).iter_mut().zip(g.row(s)) {
                        *d = v * inv;
                    }
                }
                Step::One(x, dx)
            }
            Op::SegmentMax(x, _, n_seg) => {
                let (x, n_seg) = (*x, *n_seg);
                let arg = self.nodes[i].aux.clone();
                let xm = &self.nodes[x.0].value;
                let cols = xm.cols();
                let mut dx = Matrix::zeros(xm.rows(), cols);
                for s in 0..n_seg {
                    for j in 0..cols {
                        let e = arg[s * cols + j];
                        if e != u32::MAX {
                            dx[(e as usize, j)] += g[(s, j)];
                        }
                    }
                }
                Step::One(x, dx)
            }
            Op::SegmentSoftmax(x, seg, n_seg) => {
                let (x, seg, n_seg) = (*x, Arc::clone(seg), *n_seg);
                let ym = &self.nodes[i].value;
                // dL/dx_e = y_e * (g_e - sum_{j in seg} y_j g_j)
                let mut seg_dot = vec![0.0f32; n_seg];
                for (e, &s) in seg.iter().enumerate() {
                    seg_dot[s as usize] += ym[(e, 0)] * g[(e, 0)];
                }
                let mut dx = Matrix::zeros(ym.rows(), 1);
                for (e, &s) in seg.iter().enumerate() {
                    dx[(e, 0)] = ym[(e, 0)] * (g[(e, 0)] - seg_dot[s as usize]);
                }
                Step::One(x, dx)
            }
            Op::SumCols(x) => {
                let x = *x;
                let xm = &self.nodes[x.0].value;
                let mut dx = Matrix::zeros(xm.rows(), xm.cols());
                for r in 0..xm.rows() {
                    let gv = g[(r, 0)];
                    for c in 0..xm.cols() {
                        dx[(r, c)] = gv;
                    }
                }
                Step::One(x, dx)
            }
            Op::MeanAll(x) => {
                let x = *x;
                let xm = &self.nodes[x.0].value;
                let inv = g.item() / xm.len().max(1) as f32;
                Step::One(x, Matrix::full(xm.rows(), xm.cols(), inv))
            }
            Op::Mse(p, t) => {
                let (p, t) = (*p, *t);
                let pm = &self.nodes[p.0].value;
                let tm = &self.nodes[t.0].value;
                let scale = 2.0 * g.item() / pm.len().max(1) as f32;
                let dp = pm.sub(tm).scale(scale);
                let dt = dp.scale(-1.0);
                Step::Two(p, dp, t, dt)
            }
            Op::Mae(p, t) => {
                let (p, t) = (*p, *t);
                let pm = &self.nodes[p.0].value;
                let tm = &self.nodes[t.0].value;
                let scale = g.item() / pm.len().max(1) as f32;
                let dp = pm.sub(tm).map(|d| scale * d.signum());
                let dt = dp.scale(-1.0);
                Step::Two(p, dp, t, dt)
            }
        };
        match step {
            Step::None => {}
            Step::One(a, da) => self.accumulate(a, da),
            Step::Two(a, da, b, db) => {
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Step::Many(grads) => {
                for (v, dv) in grads {
                    self.accumulate(v, dv);
                }
            }
        }
    }

    /// Number of recorded nodes (useful for memory diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::numeric_grad;

    fn approx(a: f32, b: f32, tol: f32) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn backward_through_matmul() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let b = t.leaf(Matrix::from_vec(2, 1, vec![3.0, 4.0]));
        let y = t.matmul(a, b); // 1*3 + 2*4 = 11
        t.backward(y);
        assert_eq!(t.value(y).item(), 11.0);
        assert_eq!(t.grad(a).as_slice(), &[3.0, 4.0]);
        assert_eq!(t.grad(b).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn chained_gradients_accumulate() {
        // y = x*x + x  => dy/dx = 2x + 1
        let mut t = Tape::new();
        let x = t.leaf(Matrix::scalar(3.0));
        let sq = t.mul(x, x);
        let y = t.add(sq, x);
        t.backward(y);
        assert_eq!(t.grad(x).item(), 7.0);
    }

    #[test]
    fn relu_masks_gradient() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 2, vec![-1.0, 2.0]));
        let y = t.relu(x);
        let s = t.mean_all(y);
        t.backward(s);
        assert_eq!(t.grad(x).as_slice(), &[0.0, 0.5]);
    }

    #[test]
    fn segment_softmax_sums_to_one() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::col_vector(&[1.0, 2.0, 3.0, -1.0]));
        let seg = Arc::new(vec![0u32, 0, 1, 1]);
        let y = t.segment_softmax(x, seg, 2);
        let v = t.value(y);
        assert!(approx(v[(0, 0)] + v[(1, 0)], 1.0, 1e-6));
        assert!(approx(v[(2, 0)] + v[(3, 0)], 1.0, 1e-6));
        assert!(v[(2, 0)] > v[(3, 0)]);
    }

    #[test]
    fn scatter_gather_roundtrip_gradient() {
        let idx = Arc::new(vec![0u32, 1, 0]);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]));
        let s = t.scatter_add_rows(x, Arc::clone(&idx), 2);
        let l = t.mean_all(s);
        t.backward(l);
        // every input row contributes exactly once to the sum
        let g = t.grad(x);
        for v in g.as_slice() {
            assert!(approx(*v, 0.25, 1e-6));
        }
    }

    #[test]
    fn segment_max_selects_winner() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(3, 1, vec![1.0, 5.0, 3.0]));
        let seg = Arc::new(vec![0u32, 0, 1]);
        let y = t.segment_max(x, seg, 2);
        assert_eq!(t.value(y).as_slice(), &[5.0, 3.0]);
        let l = t.mean_all(y);
        t.backward(l);
        assert_eq!(t.grad(x).as_slice(), &[0.0, 0.5, 0.5]);
    }

    // Numerical gradient checks for every differentiable op.

    #[test]
    fn numcheck_matmul() {
        numeric_grad(3, 4, |t, x| {
            let w = t.leaf(Matrix::from_fn(4, 2, |r, c| {
                0.1 * (r as f32) - 0.2 * c as f32 + 0.05
            }));
            let y = t.matmul(x, w);
            t.mean_all(y)
        });
    }

    #[test]
    fn numcheck_activations() {
        numeric_grad(2, 3, |t, x| {
            let a = t.leaky_relu(x, 0.1);
            let b = t.sigmoid(a);
            let c = t.tanh(b);
            let d = t.exp(c);
            let e = t.sqrt(d, 1e-6);
            t.mean_all(e)
        });
    }

    #[test]
    fn numcheck_add_row_mul_col() {
        numeric_grad(3, 2, |t, x| {
            let b = t.leaf(Matrix::row_vector(&[0.3, -0.4]));
            let y = t.add_row(x, b);
            let a = t.leaf(Matrix::col_vector(&[0.5, 1.5, -0.7]));
            let z = t.mul_col(y, a);
            t.mean_all(z)
        });
    }

    #[test]
    fn numcheck_concat_sum_cols() {
        numeric_grad(2, 2, |t, x| {
            let y = t.concat_cols(&[x, x]);
            let s = t.sum_cols(y);
            t.mean_all(s)
        });
    }

    #[test]
    fn numcheck_gather_scatter() {
        let idx = Arc::new(vec![1u32, 0, 1, 1]);
        numeric_grad(2, 3, move |t, x| {
            let gathered = t.gather_rows(x, Arc::clone(&idx));
            let scattered = t.scatter_add_rows(gathered, Arc::new(vec![0, 0, 1, 1]), 2);
            t.mean_all(scattered)
        });
    }

    #[test]
    fn numcheck_segment_mean_max() {
        let seg = Arc::new(vec![0u32, 0, 1, 2]);
        numeric_grad(4, 2, move |t, x| {
            let m = t.segment_mean(x, Arc::clone(&seg), 3);
            let mx = t.segment_max(x, Arc::clone(&seg), 3);
            let c = t.concat_cols(&[m, mx]);
            t.mean_all(c)
        });
    }

    #[test]
    fn numcheck_segment_softmax() {
        let seg = Arc::new(vec![0u32, 0, 0, 1, 1]);
        numeric_grad(5, 1, move |t, x| {
            let sm = t.segment_softmax(x, Arc::clone(&seg), 2);
            // weight by a fixed vector so the loss is not constant (softmax
            // rows sum to one)
            let w = t.leaf(Matrix::col_vector(&[0.9, -0.3, 0.4, 1.2, -0.8]));
            let y = t.mul(sm, w);
            t.mean_all(y)
        });
    }

    #[test]
    fn numcheck_losses() {
        numeric_grad(2, 2, |t, x| {
            let target = t.leaf(Matrix::from_vec(2, 2, vec![0.5, -0.5, 1.0, 0.0]));
            t.mse(x, target)
        });
        numeric_grad(2, 2, |t, x| {
            let target = t.leaf(Matrix::from_vec(2, 2, vec![0.5, -0.5, 1.0, 0.0]));
            t.mae(x, target)
        });
    }

    #[test]
    fn numcheck_scale_add_scalar_sub() {
        numeric_grad(2, 2, |t, x| {
            let a = t.scale(x, 1.7);
            let b = t.add_scalar(a, -0.3);
            let c = t.sub(b, x);
            t.mean_all(c)
        });
    }
}
