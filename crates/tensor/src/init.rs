//! Weight-initialization helpers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;

/// Deterministic RNG used for reproducible initialization across runs.
///
/// # Example
///
/// ```
/// let mut rng = tensor::init::seeded_rng(42);
/// let w = tensor::init::xavier(&mut rng, 8, 4);
/// assert_eq!(w.shape(), (8, 4));
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Xavier/Glorot uniform initialization for a `fan_in x fan_out` weight.
pub fn xavier(rng: &mut StdRng, fan_in: usize, fan_out: usize) -> Matrix {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-bound..bound))
}

/// Kaiming/He uniform initialization (suited for ReLU networks).
pub fn kaiming(rng: &mut StdRng, fan_in: usize, fan_out: usize) -> Matrix {
    let bound = (6.0 / fan_in.max(1) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-bound..bound))
}

/// Zero-initialized bias row (`1 x n`).
pub fn zero_bias(n: usize) -> Matrix {
    Matrix::zeros(1, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_is_bounded_and_deterministic() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        let wa = xavier(&mut a, 16, 16);
        let wb = xavier(&mut b, 16, 16);
        assert_eq!(wa, wb);
        let bound = (6.0 / 32.0_f32).sqrt();
        assert!(wa.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let mut rng = seeded_rng(1);
        let w = kaiming(&mut rng, 100, 4);
        let bound = (6.0 / 100.0_f32).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
    }
}
