#![warn(missing_docs)]
//! Deterministic std-only parallel executor.
//!
//! A scoped worker pool with a chunked work queue: every [`map`] /
//! [`try_map`] call spawns up to [`threads`] scoped workers that pull
//! fixed-size index chunks from an atomic cursor, compute results into
//! per-chunk buffers, and merge them **in chunk order**. Because the chunk
//! layout depends only on the input length — never on the worker count or
//! on scheduling — the output is bit-identical for any `QOR_THREADS`
//! setting, including the sequential `QOR_THREADS=1` path, which runs the
//! very same chunk loop inline without spawning.
//!
//! That ordering guarantee is the workspace's determinism contract: dataset
//! labels, DSE Pareto fronts and training losses must not change when the
//! worker count does (see the `parallel_matches_sequential` differential
//! test at the workspace root).
//!
//! Worker count resolution, in priority order:
//!
//! 1. a process-wide override installed with [`set_threads`] (used by tests
//!    and benchmarks to compare thread counts inside one process),
//! 2. the `QOR_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! Each labeled parallel region records two `obs` gauges:
//! `par/<label>/workers` (spawned workers) and `par/<label>/utilization`
//! (aggregate busy time over `workers x wall-clock`, in `0..=1`).
//!
//! # Example
//!
//! ```
//! let squares = par::map("example", &[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Process-wide worker-count override; 0 means "no override".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Work-queue chunks handed to each worker per queue pop. Chunk geometry is
/// part of the determinism contract only through *result ordering*; the
/// constant merely balances scheduling granularity against queue traffic.
const CHUNKS_PER_WORKER: usize = 4;

/// Installs (or clears) a process-wide worker-count override.
///
/// `Some(1)` forces the exact sequential path; `None` restores the
/// `QOR_THREADS` / `available_parallelism` resolution. Intended for tests
/// and benchmarks that compare thread counts within one process without
/// racing on environment variables.
pub fn set_threads(n: Option<usize>) {
    OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// Resolved worker count: override, then `QOR_THREADS`, then
/// [`std::thread::available_parallelism`] (minimum 1).
pub fn threads() -> usize {
    let o = OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var("QOR_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Chunk length for `n` items on `workers` workers (never zero).
fn chunk_len(n: usize, workers: usize) -> usize {
    n.div_ceil(workers.max(1) * CHUNKS_PER_WORKER).max(1)
}

/// Applies `f` to every item, returning results in input order.
///
/// `f` receives `(index, &item)` and must be a pure function of them for
/// the determinism contract to hold. With one worker (or one item) the
/// chunk loop runs inline on the caller thread — no threads are spawned.
///
/// # Panics
///
/// A panic inside `f` on any worker is propagated to the caller after all
/// workers have stopped (the scoped pool never detaches a worker).
pub fn map<T, R, F>(label: &str, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads().min(n.max(1));
    if workers <= 1 {
        // exact sequential path: same chunk traversal, caller thread only
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let sp = obs::span("par_map");
    sp.attr("label", label);
    sp.attr("items", n);
    sp.attr("workers", workers);

    let chunk = chunk_len(n, workers);
    let cursor = AtomicUsize::new(0);
    let busy_ns = AtomicU64::new(0);
    let done: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let begin = Instant::now();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    let mut out = Vec::with_capacity(end - start);
                    for (i, item) in items[start..end].iter().enumerate() {
                        out.push(f(start + i, item));
                    }
                    done.lock().unwrap().push((start, out));
                }
                busy_ns.fetch_add(begin.elapsed().as_nanos() as u64, Ordering::Relaxed);
            });
        }
    });
    let wall_ns = t0.elapsed().as_nanos().max(1) as u64;

    obs::metrics::gauge_set(&format!("par/{label}/workers"), workers as f64);
    obs::metrics::gauge_set(
        &format!("par/{label}/utilization"),
        busy_ns.load(Ordering::Relaxed) as f64 / (wall_ns as f64 * workers as f64),
    );

    // ordered merge: chunk start offsets induce the original item order
    let mut chunks = done.into_inner().unwrap();
    chunks.sort_unstable_by_key(|(start, _)| *start);
    let mut merged = Vec::with_capacity(n);
    for (_, part) in chunks {
        merged.extend(part);
    }
    merged
}

/// Fallible [`map`]: applies `f` to every item and returns either all
/// results in input order or the error of the **lowest-indexed** failing
/// item (temporal completion order never leaks into the outcome).
///
/// # Errors
///
/// Returns the error produced for the smallest input index that failed.
pub fn try_map<T, R, E, F>(label: &str, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for r in map(label, items, f) {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that install a thread-count override.
    static LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = LOCK.lock().unwrap();
        set_threads(Some(n));
        let out = f();
        set_threads(None);
        out
    }

    #[test]
    fn map_preserves_input_order() {
        for workers in [1usize, 2, 4, 7] {
            let items: Vec<usize> = (0..257).collect();
            let got = with_threads(workers, || map("test_order", &items, |i, &x| (i, x * 3)));
            let want: Vec<(usize, usize)> = items.iter().map(|&x| (x, x * 3)).collect();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(map("test_empty", &empty, |_, &x| x).is_empty());
        assert_eq!(map("test_single", &[9u32], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        // float summation inside each item is identical regardless of the
        // worker count because chunk geometry ignores it
        let items: Vec<f64> = (0..100).map(|i| 0.1 * i as f64).collect();
        let seq = with_threads(1, || {
            map("test_bits", &items, |i, &x| (x * 1.7 + i as f64).to_bits())
        });
        let par = with_threads(4, || {
            map("test_bits", &items, |i, &x| (x * 1.7 + i as f64).to_bits())
        });
        assert_eq!(seq, par);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            with_threads(3, || {
                map("test_panic", &[1u32, 2, 3, 4, 5, 6, 7, 8], |_, &x| {
                    assert!(x != 5, "worker dies on item 5");
                    x
                })
            })
        });
        assert!(
            result.is_err(),
            "panic inside a worker must reach the caller"
        );
    }

    #[test]
    fn try_map_returns_lowest_index_error() {
        for workers in [1usize, 4] {
            let items: Vec<u32> = (0..64).collect();
            let got: Result<Vec<u32>, u32> = with_threads(workers, || {
                try_map(
                    "test_err",
                    &items,
                    |_, &x| {
                        if x % 10 == 7 {
                            Err(x)
                        } else {
                            Ok(x)
                        }
                    },
                )
            });
            assert_eq!(got, Err(7), "workers={workers}");
        }
    }

    #[test]
    fn override_beats_env() {
        let _guard = LOCK.lock().unwrap();
        set_threads(Some(3));
        assert_eq!(threads(), 3);
        set_threads(None);
        assert!(threads() >= 1);
    }

    #[test]
    fn chunk_len_never_zero() {
        assert_eq!(chunk_len(0, 4), 1);
        assert_eq!(chunk_len(1, 1), 1);
        assert!(chunk_len(1000, 4) >= 1);
    }
}
