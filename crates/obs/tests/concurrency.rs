//! Differential 1-vs-4-thread metrics test: the same workload recorded
//! sequentially and from four concurrent workers must produce an
//! identical registry snapshot — counters lossless, histogram buckets,
//! counts and quantiles equal. This is the `obs` half of the workspace's
//! `QOR_THREADS={1,4}` determinism contract: recording is commutative, so
//! thread interleaving can never change what `/metrics` or a run report
//! says.
//!
//! All observation values are small integers, so even the floating-point
//! `sum` is exact under any accumulation order.

use obs::metrics::{self, HistogramDetail, Snapshot};
use std::sync::Mutex;

/// The registry is process-global; tests in this binary must not overlap.
static ISOLATION: Mutex<()> = Mutex::new(());

const WORKERS: usize = 4;
const PER_WORKER_OPS: usize = 500;

/// The workload one worker contributes: `ops` counter increments plus a
/// deterministic latency-like histogram pattern.
fn record_chunk(worker: usize, ops: usize) {
    for i in 0..ops {
        metrics::counter_add("conc.hits", 1);
        // integer-valued "latencies" in 1..=256 so sums are exact
        let v = ((worker * ops + i) % 256 + 1) as f64;
        metrics::histogram_record("conc.latency_us", v);
    }
    metrics::counter_add("conc.batches", 1);
}

/// Runs the whole workload at `threads` workers and returns the snapshot
/// plus histogram detail.
fn run_workload(threads: usize) -> (Vec<(String, Snapshot)>, HistogramDetail) {
    obs::test_support::reset();
    if threads <= 1 {
        for w in 0..WORKERS {
            record_chunk(w, PER_WORKER_OPS);
        }
    } else {
        std::thread::scope(|scope| {
            for w in 0..WORKERS {
                scope.spawn(move || record_chunk(w, PER_WORKER_OPS));
            }
        });
    }
    let snaps = run_snapshot();
    let detail = metrics::histogram_detail("conc.latency_us").expect("histogram exists");
    (snaps, detail)
}

fn run_snapshot() -> Vec<(String, Snapshot)> {
    metrics::snapshot()
        .into_iter()
        .filter(|(name, _)| name.starts_with("conc."))
        .collect()
}

#[test]
fn one_and_four_thread_snapshots_are_identical() {
    let _lock = ISOLATION.lock().unwrap_or_else(|e| e.into_inner());
    obs::test_support::force_collection(true);
    let (seq_snaps, seq_detail) = run_workload(1);
    let (par_snaps, par_detail) = run_workload(WORKERS);
    obs::test_support::force_collection(false);

    // counters merged losslessly
    assert_eq!(seq_snaps, par_snaps);
    let hits = seq_snaps
        .iter()
        .find(|(n, _)| n == "conc.hits")
        .map(|(_, s)| *s);
    assert_eq!(
        hits,
        Some(Snapshot::Counter((WORKERS * PER_WORKER_OPS) as u64))
    );

    // histogram counts, sums and cumulative le-buckets agree exactly
    assert_eq!(seq_detail.count, par_detail.count);
    assert_eq!(seq_detail.sum, par_detail.sum, "integer sums must be exact");
    assert_eq!(seq_detail.min, par_detail.min);
    assert_eq!(seq_detail.max, par_detail.max);
    assert_eq!(seq_detail.buckets, par_detail.buckets);

    // exact quantiles are order-independent: the window holds the same
    // multiset under any interleaving (total count fits the window)
    assert!(seq_detail.count <= metrics::RECENT_WINDOW as u64);
    for q in [0.5, 0.9, 0.99] {
        assert_eq!(seq_detail.quantile(q), par_detail.quantile(q), "q={q}");
    }
}

#[test]
fn quantiles_match_a_reference_percentile_on_known_data() {
    let _lock = ISOLATION.lock().unwrap_or_else(|e| e.into_inner());
    obs::test_support::force_collection(true);
    obs::test_support::reset();
    // 1..=1000 from 4 threads, striped
    std::thread::scope(|scope| {
        for w in 0..4 {
            scope.spawn(move || {
                for v in (0..1000).skip(w).step_by(4) {
                    metrics::histogram_record("conc.ref", (v + 1) as f64);
                }
            });
        }
    });
    let d = metrics::histogram_detail("conc.ref").unwrap();
    obs::test_support::force_collection(false);
    assert_eq!(d.count, 1000);
    assert_eq!(d.quantile(0.50), 500.0);
    assert_eq!(d.quantile(0.90), 900.0);
    assert_eq!(d.quantile(0.99), 990.0);
}
