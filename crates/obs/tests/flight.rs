//! Flight-recorder contract tests: capacity eviction order, bounded
//! memory (string/stage clamping), trace stamping, and the JSON dump
//! shape served by `GET /debug/requests`.

use std::sync::Mutex;

use obs::flight::{self, FlightRecord, MAX_LABEL_BYTES, MAX_STAGES};
use obs::trace;

/// The ring is process-global; tests in this binary must not overlap.
static ISOLATION: Mutex<()> = Mutex::new(());

fn rec(label: &str) -> FlightRecord {
    let mut r = FlightRecord::new("test", label);
    r.outcome = "200".to_string();
    r.total_us = 7;
    r
}

#[test]
fn capacity_evicts_oldest_first_and_dumps_newest_first() {
    let _lock = ISOLATION.lock().unwrap_or_else(|e| e.into_inner());
    flight::set_capacity_for_tests(4);
    flight::reset();
    for i in 0..10 {
        flight::record(rec(&format!("req-{i}")));
    }
    let snap = flight::snapshot();
    assert_eq!(flight::len(), 4);
    // newest first: 9, 8, 7, 6 — requests 0..=5 were evicted in order
    let labels: Vec<&str> = snap.iter().map(|r| r.label.as_str()).collect();
    assert_eq!(labels, ["req-9", "req-8", "req-7", "req-6"]);
    flight::reset();
}

#[test]
fn records_are_clamped_to_bounded_memory() {
    let _lock = ISOLATION.lock().unwrap_or_else(|e| e.into_inner());
    flight::set_capacity_for_tests(4);
    flight::reset();
    let mut r = rec(&"x".repeat(10_000));
    r.kind = "k".repeat(5_000);
    // 100 stages of 3 µs each
    r.stages = (0..100).map(|i| (format!("stage-{i}"), 3u64)).collect();
    flight::record(r);
    let snap = flight::snapshot();
    assert_eq!(snap.len(), 1);
    let r = &snap[0];
    assert_eq!(r.label.len(), MAX_LABEL_BYTES);
    assert_eq!(r.kind.len(), MAX_LABEL_BYTES);
    assert_eq!(r.stages.len(), MAX_STAGES);
    // the overflow stage preserves the dropped time, so stage sums hold
    let total: u64 = r.stages.iter().map(|&(_, us)| us).sum();
    assert_eq!(total, 300);
    assert_eq!(r.stages.last().unwrap().0, "...");
    flight::reset();
}

#[test]
fn attrs_are_clamped_and_serialized_as_an_object() {
    let _lock = ISOLATION.lock().unwrap_or_else(|e| e.into_inner());
    flight::set_capacity_for_tests(4);
    flight::reset();
    let mut r = rec("attrs").with_attr("model", "default@3");
    r.attrs.push(("v".repeat(9_000), "w".repeat(9_000)));
    r.attrs
        .extend((0..100).map(|i| (format!("k{i}"), "x".to_string())));
    flight::record(r);
    let snap = flight::snapshot();
    let r = &snap[0];
    assert_eq!(r.attrs.len(), MAX_STAGES);
    assert_eq!(r.attrs[0], ("model".to_string(), "default@3".to_string()));
    assert_eq!(r.attrs[1].0.len(), MAX_LABEL_BYTES);
    assert_eq!(r.attrs[1].1.len(), MAX_LABEL_BYTES);
    let json = flight::to_json().to_string();
    assert!(json.contains(r#""attrs":{"model":"default@3""#), "{json}");
    flight::reset();
}

#[test]
fn zero_capacity_disables_recording() {
    let _lock = ISOLATION.lock().unwrap_or_else(|e| e.into_inner());
    flight::set_capacity_for_tests(0);
    flight::record(rec("dropped"));
    assert_eq!(flight::len(), 0);
    flight::set_capacity_for_tests(4);
}

#[test]
fn records_inherit_the_active_trace_and_serialize_it() {
    let _lock = ISOLATION.lock().unwrap_or_else(|e| e.into_inner());
    flight::set_capacity_for_tests(4);
    flight::reset();
    let id = trace::derive(&[b"flight-test", b"1"]);
    {
        let _g = trace::adopt(id);
        let mut r = FlightRecord::new("http", "POST /predict");
        r.stages = vec![("decode".into(), 2), ("predict".into(), 40)];
        r.cache_hits = 1;
        flight::record(r);
    }
    let snap = flight::snapshot();
    assert_eq!(snap[0].trace, id.0);
    let json = flight::to_json().to_string();
    assert!(
        json.contains(&format!("\"trace\":\"{}\"", id.as_hex())),
        "{json}"
    );
    assert!(json.contains("\"capacity\":4"), "{json}");
    assert!(json.contains(r#"{"stage":"decode","us":2}"#), "{json}");
    flight::reset();
}
