//! `QOR_LOG` contract test. Lives in its own integration binary because
//! the env var is read once per process: this file's single test sets it
//! before the first log call and owns the configuration for the process.

use obs::log::{self, Level};
use obs::{trace, Json};

#[test]
fn file_sink_writes_leveled_json_lines_with_trace_ids() {
    let path = std::env::temp_dir().join(format!("qor-log-test-{}.jsonl", std::process::id()));
    std::env::set_var("QOR_LOG", format!("info:{}", path.display()));

    assert!(log::enabled(Level::Error));
    assert!(log::enabled(Level::Info));
    assert!(!log::enabled(Level::Debug), "info must filter debug events");
    assert_eq!(log::level_name(), "info");

    let id = trace::derive(&[b"log-test"]);
    {
        let _g = trace::adopt(id);
        log::event(
            Level::Info,
            "http.request",
            &[
                ("route", Json::str("predict")),
                ("status", Json::UInt(200)),
                ("dur_us", Json::UInt(412)),
            ],
        );
        // filtered: below the configured level
        log::event(Level::Debug, "session.cache", &[("hit", Json::Bool(true))]);
    }
    // outside any trace context: no trace field
    obs::logev!(Level::Warn, "accept.failed", "error" => Json::str("oops"));

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");

    assert!(lines[0].starts_with("{\"ts_us\":"), "{}", lines[0]);
    assert!(lines[0].contains("\"level\":\"info\""), "{}", lines[0]);
    assert!(
        lines[0].contains("\"event\":\"http.request\""),
        "{}",
        lines[0]
    );
    assert!(
        lines[0].contains(&format!("\"trace\":\"{}\"", id.as_hex())),
        "{}",
        lines[0]
    );
    assert!(lines[0].contains("\"status\":200"), "{}", lines[0]);

    assert!(lines[1].contains("\"level\":\"warn\""), "{}", lines[1]);
    assert!(!lines[1].contains("\"trace\""), "{}", lines[1]);
    assert!(
        !text.contains("session.cache"),
        "debug event must be filtered"
    );
}
