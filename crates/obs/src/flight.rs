//! The flight recorder: an always-on, fixed-capacity ring buffer holding
//! the last N *completed* request/job traces.
//!
//! Unlike spans and metrics, the recorder does not depend on `QOR_TRACE`
//! or `QOR_REPORT`: a serving process keeps it populated at all times so
//! `GET /debug/requests` can answer "what did the last hundred requests
//! do and where did they spend their time" after the fact, with bounded
//! memory. Capacity comes from `QOR_FLIGHT_CAP` (default
//! [`DEFAULT_CAPACITY`]; `0` disables recording); every record is clamped
//! to [`MAX_STAGES`] stages and [`MAX_LABEL_BYTES`]-byte strings on entry,
//! so the whole buffer is `O(capacity)` regardless of what callers pass
//! in.
//!
//! A record summarizes one finished unit of work: its [`crate::trace`] id,
//! a kind (`"http"`, `"job"`, …), per-stage wall-clock timings, byte
//! sizes, and cache hit/miss counts. Records are inserted on completion
//! (never while in flight), evicting the oldest entry once full.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::json::Json;

/// Ring capacity when `QOR_FLIGHT_CAP` is not set.
pub const DEFAULT_CAPACITY: usize = 128;

/// Stages kept per record; extra stages are dropped (a `...` stage with
/// the remaining time is appended so totals still add up).
pub const MAX_STAGES: usize = 32;

/// Byte budget for each string field (label, kind, outcome, stage names).
pub const MAX_LABEL_BYTES: usize = 120;

/// One completed request/job trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Trace id (0 when the work ran without a trace context).
    pub trace: u64,
    /// Work class: `"http"`, `"job"`, …
    pub kind: String,
    /// Human-readable identity, e.g. `"POST /predict"` or
    /// `"job-3 fir/genetic"`.
    pub label: String,
    /// Outcome token: an HTTP status (`"200"`) or a job state (`"done"`).
    pub outcome: String,
    /// Start, µs since the process observability epoch.
    pub start_us: u64,
    /// End-to-end duration in µs.
    pub total_us: u64,
    /// Request/input payload bytes.
    pub bytes_in: u64,
    /// Response/output payload bytes.
    pub bytes_out: u64,
    /// Session-cache hits attributable to this work.
    pub cache_hits: u64,
    /// Session-cache misses attributable to this work.
    pub cache_misses: u64,
    /// Per-stage `(name, dur_us)` timings, in execution order.
    pub stages: Vec<(String, u64)>,
    /// Free-form `(key, value)` labels — e.g. which model version served
    /// a prediction (`("model", "default@3")`) or which batch it rode in.
    /// Clamped like every other string field; capped at [`MAX_STAGES`]
    /// entries.
    pub attrs: Vec<(String, String)>,
}

impl FlightRecord {
    /// A record with zeroed optional fields; callers fill what they know.
    pub fn new(kind: &str, label: &str) -> FlightRecord {
        FlightRecord {
            trace: crate::trace::current_raw(),
            kind: kind.to_string(),
            label: label.to_string(),
            outcome: String::new(),
            start_us: 0,
            total_us: 0,
            bytes_in: 0,
            bytes_out: 0,
            cache_hits: 0,
            cache_misses: 0,
            stages: Vec::new(),
            attrs: Vec::new(),
        }
    }

    /// Appends a `(key, value)` attribute (builder-style convenience).
    pub fn with_attr(mut self, key: &str, value: &str) -> FlightRecord {
        self.attrs.push((key.to_string(), value.to_string()));
        self
    }

    fn clamp(mut self) -> FlightRecord {
        truncate_in_place(&mut self.kind);
        truncate_in_place(&mut self.label);
        truncate_in_place(&mut self.outcome);
        for (name, _) in &mut self.stages {
            truncate_in_place(name);
        }
        self.attrs.truncate(MAX_STAGES);
        for (key, value) in &mut self.attrs {
            truncate_in_place(key);
            truncate_in_place(value);
        }
        if self.stages.len() > MAX_STAGES {
            let dropped: u64 = self.stages[MAX_STAGES - 1..]
                .iter()
                .map(|&(_, us)| us)
                .sum();
            self.stages.truncate(MAX_STAGES - 1);
            self.stages.push(("...".to_string(), dropped));
        }
        self
    }

    /// Serializes the record for `GET /debug/requests` and tests.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("trace", Json::Str(format!("{:016x}", self.trace))),
            ("kind", Json::str(&self.kind)),
            ("label", Json::str(&self.label)),
            ("outcome", Json::str(&self.outcome)),
            ("start_us", Json::UInt(self.start_us)),
            ("total_us", Json::UInt(self.total_us)),
            ("bytes_in", Json::UInt(self.bytes_in)),
            ("bytes_out", Json::UInt(self.bytes_out)),
            ("cache_hits", Json::UInt(self.cache_hits)),
            ("cache_misses", Json::UInt(self.cache_misses)),
            (
                "stages",
                Json::Arr(
                    self.stages
                        .iter()
                        .map(|(name, us)| {
                            Json::obj(vec![("stage", Json::str(name)), ("us", Json::UInt(*us))])
                        })
                        .collect(),
                ),
            ),
            (
                "attrs",
                Json::obj(
                    self.attrs
                        .iter()
                        .map(|(key, value)| (key.as_str(), Json::str(value)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Truncates a string to [`MAX_LABEL_BYTES`] on a char boundary.
fn truncate_in_place(s: &mut String) {
    if s.len() > MAX_LABEL_BYTES {
        let mut cut = MAX_LABEL_BYTES;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        s.truncate(cut);
    }
}

static RING: Mutex<VecDeque<FlightRecord>> = Mutex::new(VecDeque::new());
static CAPACITY: AtomicUsize = AtomicUsize::new(usize::MAX); // MAX = unread

/// The configured ring capacity (reads `QOR_FLIGHT_CAP` once).
pub fn capacity() -> usize {
    let v = CAPACITY.load(Ordering::Relaxed);
    if v != usize::MAX {
        return v;
    }
    let cap = std::env::var("QOR_FLIGHT_CAP")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_CAPACITY)
        .min(usize::MAX - 1);
    CAPACITY.store(cap, Ordering::Relaxed);
    cap
}

/// Records one completed trace, evicting the oldest when full.
pub fn record(rec: FlightRecord) {
    let cap = capacity();
    if cap == 0 {
        return;
    }
    let rec = rec.clamp();
    let mut ring = RING.lock().unwrap();
    while ring.len() >= cap {
        ring.pop_front();
    }
    ring.push_back(rec);
}

/// Records currently held, **newest first** (the order `/debug/requests`
/// dumps them in).
pub fn snapshot() -> Vec<FlightRecord> {
    let ring = RING.lock().unwrap();
    ring.iter().rev().cloned().collect()
}

/// Number of records currently held.
pub fn len() -> usize {
    RING.lock().unwrap().len()
}

/// Serializes the whole recorder (capacity + newest-first records).
pub fn to_json() -> Json {
    Json::obj(vec![
        ("capacity", Json::UInt(capacity() as u64)),
        ("count", Json::UInt(len() as u64)),
        (
            "requests",
            Json::Arr(snapshot().iter().map(FlightRecord::to_json).collect()),
        ),
    ])
}

/// Clears the ring (test support; the capacity cache is kept).
pub fn reset() {
    RING.lock().unwrap().clear();
}

/// Overrides the capacity (test support).
pub fn set_capacity_for_tests(cap: usize) {
    CAPACITY.store(cap.min(usize::MAX - 1), Ordering::Relaxed);
}
