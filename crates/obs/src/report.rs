//! Run-report assembly: span forest + metrics + named tables, serialized to
//! JSON on demand or when the [`Session`] guard drops.

use std::sync::Mutex;

use crate::json::Json;
use crate::{metrics, span, trace_level};

static TABLES: Mutex<Vec<(String, Json)>> = Mutex::new(Vec::new());

/// Records a named result table (benchmark binaries use this to mirror
/// their human-readable tables into the JSON report).
///
/// `rows` are emitted as objects keyed by `headers`; extra cells beyond the
/// header count are dropped, missing cells are `null`.
pub fn record_table(name: &str, headers: &[&str], rows: Vec<Vec<Json>>) {
    if !crate::collecting() {
        return;
    }
    let rows_json = Json::Arr(
        rows.into_iter()
            .map(|row| {
                let mut cells = row.into_iter();
                Json::Obj(
                    headers
                        .iter()
                        .map(|h| (h.to_string(), cells.next().unwrap_or(Json::Null)))
                        .collect(),
                )
            })
            .collect(),
    );
    TABLES.lock().unwrap().push((name.to_string(), rows_json));
}

/// Assembles the full run report as a JSON value.
pub fn report_json() -> Json {
    let tables = TABLES.lock().unwrap();
    let mut fields = vec![
        (
            "meta".to_string(),
            Json::obj(vec![
                ("schema", Json::str("qor-obs/1")),
                ("trace_level", Json::UInt(u64::from(trace_level()))),
            ]),
        ),
        ("spans".to_string(), span::forest_json()),
        ("metrics".to_string(), metrics::registry_json()),
    ];
    if !tables.is_empty() {
        fields.push((
            "tables".to_string(),
            Json::Obj(tables.iter().cloned().collect()),
        ));
    }
    Json::Obj(fields)
}

/// Writes the current run report to `path`.
///
/// # Errors
///
/// Returns any filesystem error.
pub fn write_report(path: &str) -> std::io::Result<()> {
    let mut out = report_json().to_string();
    out.push('\n');
    std::fs::write(path, out)
}

/// Process-level observability session. Create one at the top of `main`;
/// when it drops, the run report is written if `QOR_REPORT=path` is set.
#[must_use = "the report is written when the session guard drops"]
pub struct Session {
    path: Option<String>,
}

impl Session {
    pub(crate) fn new(path: Option<String>) -> Session {
        Session { path }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if let Some(path) = &self.path {
            if let Err(e) = write_report(path) {
                eprintln!("[obs] failed to write run report to {path}: {e}");
            } else if trace_level() >= 1 {
                eprintln!("[obs] run report written to {path}");
            }
        }
    }
}

/// Clears recorded tables (test support).
pub(crate) fn reset() {
    TABLES.lock().unwrap().clear();
}
