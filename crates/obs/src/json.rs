//! A minimal hand-rolled JSON value and writer.
//!
//! The build environment is offline, so `serde_json` is unavailable; run
//! reports only need *serialization*, which fits in a page of code. Output
//! is deterministic: object keys are written in insertion order and floats
//! use Rust's shortest round-trip formatting (non-finite floats become
//! `null`, as JSON has no representation for them).

use std::fmt::Write as _;

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (kept separate to avoid lossy casts).
    UInt(u64),
    /// A double; NaN and infinities serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object values.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serializes into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<f32> for Json {
    fn from(v: f32) -> Json {
        Json::Float(f64::from(v))
    }
}

/// Writes `s` as a JSON string literal, escaping per RFC 8259.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        let j = Json::str("a\"b\\c\nd\te\r\u{01}é");
        assert_eq!(j.to_string(), "\"a\\\"b\\\\c\\nd\\te\\r\\u0001é\"");
    }

    #[test]
    fn nested_structures_round_trip_shape() {
        let j = Json::obj(vec![
            ("n", Json::Int(-3)),
            ("u", Json::UInt(u64::MAX)),
            ("f", Json::Float(1.5)),
            ("nan", Json::Float(f64::NAN)),
            ("a", Json::Arr(vec![Json::Null, Json::Bool(true)])),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"n":-3,"u":18446744073709551615,"f":1.5,"nan":null,"a":[null,true]}"#
        );
    }
}
