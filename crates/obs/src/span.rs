//! Hierarchical wall-clock spans with RAII guards.
//!
//! A span is entered with [`crate::span`] (or the [`crate::span!`] macro when
//! attributes are attached at entry) and closed when the returned guard
//! drops. Spans nest per thread: a span entered while another is open on the
//! same thread becomes its child. Spans entered on freshly spawned threads
//! start new roots in the same global forest.
//!
//! When collection is disabled (no `QOR_TRACE`, no `QOR_REPORT`) entering a
//! span costs one relaxed atomic load and allocates nothing.

use std::cell::RefCell;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;
use crate::{collecting, trace, trace_level};

/// One recorded span.
#[derive(Debug, Clone)]
pub(crate) struct SpanNode {
    pub name: String,
    pub parent: Option<usize>,
    pub depth: usize,
    /// The [`crate::trace`] context active at entry (0 = none).
    pub trace_id: u64,
    /// Nanoseconds since the process observability epoch.
    pub start_ns: u64,
    /// `None` while the span is still open.
    pub dur_ns: Option<u64>,
    pub attrs: Vec<(String, Json)>,
}

static ARENA: Mutex<Vec<SpanNode>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static STACK: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Microseconds since the process observability epoch (shared clock for
/// spans, log events and flight records).
pub(crate) fn now_us() -> u64 {
    now_ns() / 1_000
}

/// RAII guard for an open span; the span closes when this drops.
///
/// An inert guard (collection disabled) does no work on drop.
#[must_use = "a span guard measures until it is dropped"]
pub struct Span {
    idx: Option<usize>,
}

impl Span {
    /// Attaches (or overwrites) an attribute on the span.
    pub fn attr(&self, key: &str, value: impl Into<Json>) {
        let Some(idx) = self.idx else { return };
        let mut arena = ARENA.lock().unwrap();
        let node = &mut arena[idx];
        let value = value.into();
        if let Some(slot) = node.attrs.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            node.attrs.push((key.to_string(), value));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(idx) = self.idx else { return };
        let end = now_ns();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // balanced by construction: the guard for `idx` is dropped at
            // most once, and inner guards drop first
            debug_assert_eq!(stack.last(), Some(&idx));
            stack.retain(|&i| i != idx);
        });
        let mut arena = ARENA.lock().unwrap();
        let node = &mut arena[idx];
        node.dur_ns = Some(end.saturating_sub(node.start_ns));
        if trace_level() >= 1 {
            let ms = node.dur_ns.unwrap_or(0) as f64 / 1e6;
            let indent = "  ".repeat(node.depth);
            if trace_level() >= 2 && !node.attrs.is_empty() {
                let attrs: Vec<String> =
                    node.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
                eprintln!("[obs] {indent}{} {ms:.3}ms {}", node.name, attrs.join(" "));
            } else {
                eprintln!("[obs] {indent}{} {ms:.3}ms", node.name);
            }
        }
    }
}

/// Enters a span named `name`; see the [module docs](self).
pub fn span(name: &str) -> Span {
    if !collecting() {
        return Span { idx: None };
    }
    let start_ns = now_ns();
    let (parent, depth) = STACK.with(|s| {
        let stack = s.borrow();
        (stack.last().copied(), stack.len())
    });
    let idx = {
        let mut arena = ARENA.lock().unwrap();
        arena.push(SpanNode {
            name: name.to_string(),
            parent,
            depth,
            trace_id: trace::current_raw(),
            start_ns,
            dur_ns: None,
            attrs: Vec::new(),
        });
        arena.len() - 1
    };
    STACK.with(|s| s.borrow_mut().push(idx));
    if trace_level() >= 2 {
        eprintln!("[obs] {}> {name}", "  ".repeat(depth));
    }
    Span { idx: Some(idx) }
}

/// Serializes the whole recorded span forest as a JSON array of trees.
pub(crate) fn forest_json() -> Json {
    let arena = ARENA.lock().unwrap();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); arena.len()];
    let mut roots = Vec::new();
    for (i, node) in arena.iter().enumerate() {
        match node.parent {
            Some(p) => children[p].push(i),
            None => roots.push(i),
        }
    }
    fn node_json(arena: &[SpanNode], children: &[Vec<usize>], i: usize) -> Json {
        let node = &arena[i];
        let mut fields = vec![
            ("name".to_string(), Json::Str(node.name.clone())),
            ("start_us".to_string(), Json::UInt(node.start_ns / 1_000)),
        ];
        if node.trace_id != 0 {
            fields.push((
                "trace".to_string(),
                Json::Str(format!("{:016x}", node.trace_id)),
            ));
        }
        fields.push((
            "dur_us".to_string(),
            match node.dur_ns {
                Some(ns) => Json::UInt(ns / 1_000),
                None => Json::Null,
            },
        ));
        if !node.attrs.is_empty() {
            fields.push(("attrs".to_string(), Json::Obj(node.attrs.clone())));
        }
        if !children[i].is_empty() {
            fields.push((
                "children".to_string(),
                Json::Arr(
                    children[i]
                        .iter()
                        .map(|&c| node_json(arena, children, c))
                        .collect(),
                ),
            ));
        }
        Json::Obj(fields)
    }
    Json::Arr(
        roots
            .iter()
            .map(|&r| node_json(&arena, &children, r))
            .collect(),
    )
}

/// Clears all recorded spans (test support).
pub(crate) fn reset() {
    ARENA.lock().unwrap().clear();
    // per-thread stacks of balanced guards are empty between tests
}
