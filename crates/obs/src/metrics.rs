//! A global, thread-safe registry of counters, gauges, series and
//! histograms.
//!
//! All recording functions are no-ops while collection is disabled, so
//! instrumented hot paths pay one relaxed atomic load when observability is
//! off. Names are free-form; the convention used across the workspace is
//! `crate.metric` (e.g. `cdfg.nodes_built`) and `stage/metric` for series
//! (e.g. `train/GNN_p/loss`).

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::collecting;
use crate::json::Json;

/// Number of power-of-two histogram buckets (covers values up to `2^62`).
const HIST_BUCKETS: usize = 63;

#[derive(Debug, Clone)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    /// `(step, value)` pairs in insertion order.
    Series(Vec<(u64, f64)>),
    Histogram {
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
        /// Bucket `i` counts values `v` with `2^(i-1) <= v < 2^i`
        /// (bucket 0 counts `v < 1`).
        buckets: Box<[u64; HIST_BUCKETS]>,
    },
}

static REGISTRY: Mutex<BTreeMap<String, Metric>> = Mutex::new(BTreeMap::new());

fn with_metric(name: &str, make: impl FnOnce() -> Metric, update: impl FnOnce(&mut Metric)) {
    let mut reg = REGISTRY.lock().unwrap();
    let slot = reg.entry(name.to_string()).or_insert_with(make);
    update(slot);
}

/// Adds `delta` to the named counter (creating it at zero).
pub fn counter_add(name: &str, delta: u64) {
    if !collecting() {
        return;
    }
    with_metric(
        name,
        || Metric::Counter(0),
        |m| {
            if let Metric::Counter(v) = m {
                *v += delta;
            } else {
                *m = Metric::Counter(delta);
            }
        },
    );
}

/// Sets the named gauge to `value`.
pub fn gauge_set(name: &str, value: f64) {
    if !collecting() {
        return;
    }
    with_metric(name, || Metric::Gauge(value), |m| *m = Metric::Gauge(value));
}

/// Appends `(step, value)` to the named series.
pub fn series_push(name: &str, step: u64, value: f64) {
    if !collecting() {
        return;
    }
    with_metric(
        name,
        || Metric::Series(Vec::new()),
        |m| {
            if let Metric::Series(points) = m {
                points.push((step, value));
            } else {
                *m = Metric::Series(vec![(step, value)]);
            }
        },
    );
}

/// Records one observation in the named log-bucketed histogram.
pub fn histogram_record(name: &str, value: f64) {
    if !collecting() {
        return;
    }
    let bucket = if value < 1.0 {
        0
    } else {
        ((value.log2().floor() as usize) + 1).min(HIST_BUCKETS - 1)
    };
    with_metric(
        name,
        || Metric::Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: Box::new([0; HIST_BUCKETS]),
        },
        |m| {
            if !matches!(m, Metric::Histogram { .. }) {
                *m = Metric::Histogram {
                    count: 0,
                    sum: 0.0,
                    min: f64::INFINITY,
                    max: f64::NEG_INFINITY,
                    buckets: Box::new([0; HIST_BUCKETS]),
                };
            }
            if let Metric::Histogram {
                count,
                sum,
                min,
                max,
                buckets,
            } = m
            {
                *count += 1;
                *sum += value;
                *min = min.min(value);
                *max = max.max(value);
                buckets[bucket] += 1;
            }
        },
    );
}

/// Point-in-time value of one metric, for exporters (e.g. the `serve`
/// crate's Prometheus endpoint).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Snapshot {
    /// Monotonic counter.
    Counter(u64),
    /// Instantaneous gauge.
    Gauge(f64),
    /// Latest point of a series, as `(step, value)`.
    SeriesLast(u64, f64),
    /// Histogram summary (bucket detail stays in the JSON report).
    Histogram {
        /// Observation count.
        count: u64,
        /// Sum of observations.
        sum: f64,
        /// Smallest observation.
        min: f64,
        /// Largest observation.
        max: f64,
    },
}

/// Snapshots every registered metric in name order.
///
/// Like [`counter_value`], this reads whatever the registry holds
/// regardless of [`crate::collecting`] — when collection is off the
/// registry is simply empty. Empty series are skipped.
pub fn snapshot() -> Vec<(String, Snapshot)> {
    let reg = REGISTRY.lock().unwrap();
    reg.iter()
        .filter_map(|(name, metric)| {
            let snap = match metric {
                Metric::Counter(v) => Snapshot::Counter(*v),
                Metric::Gauge(v) => Snapshot::Gauge(*v),
                Metric::Series(points) => {
                    let &(step, value) = points.last()?;
                    Snapshot::SeriesLast(step, value)
                }
                Metric::Histogram {
                    count,
                    sum,
                    min,
                    max,
                    ..
                } => Snapshot::Histogram {
                    count: *count,
                    sum: *sum,
                    min: *min,
                    max: *max,
                },
            };
            Some((name.clone(), snap))
        })
        .collect()
}

/// Reads a counter's current value (0 if absent); test and report support.
pub fn counter_value(name: &str) -> u64 {
    match REGISTRY.lock().unwrap().get(name) {
        Some(Metric::Counter(v)) => *v,
        _ => 0,
    }
}

/// Number of points currently in a series (0 if absent).
pub fn series_len(name: &str) -> usize {
    match REGISTRY.lock().unwrap().get(name) {
        Some(Metric::Series(points)) => points.len(),
        _ => 0,
    }
}

/// Serializes the registry as one JSON object keyed by metric name.
pub(crate) fn registry_json() -> Json {
    let reg = REGISTRY.lock().unwrap();
    Json::Obj(
        reg.iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(v) => Json::obj(vec![
                        ("type", Json::str("counter")),
                        ("value", Json::UInt(*v)),
                    ]),
                    Metric::Gauge(v) => Json::obj(vec![
                        ("type", Json::str("gauge")),
                        ("value", Json::Float(*v)),
                    ]),
                    Metric::Series(points) => Json::obj(vec![
                        ("type", Json::str("series")),
                        (
                            "steps",
                            Json::Arr(points.iter().map(|&(s, _)| Json::UInt(s)).collect()),
                        ),
                        (
                            "values",
                            Json::Arr(points.iter().map(|&(_, v)| Json::Float(v)).collect()),
                        ),
                    ]),
                    Metric::Histogram {
                        count,
                        sum,
                        min,
                        max,
                        buckets,
                    } => {
                        // trailing empty buckets are elided
                        let last = buckets.iter().rposition(|&b| b > 0).map_or(0, |i| i + 1);
                        Json::obj(vec![
                            ("type", Json::str("histogram")),
                            ("count", Json::UInt(*count)),
                            ("sum", Json::Float(*sum)),
                            ("min", Json::Float(*min)),
                            ("max", Json::Float(*max)),
                            (
                                "log2_buckets",
                                Json::Arr(buckets[..last].iter().map(|&b| Json::UInt(b)).collect()),
                            ),
                        ])
                    }
                };
                (name.clone(), value)
            })
            .collect(),
    )
}

/// Clears all metrics (test support).
pub(crate) fn reset() {
    REGISTRY.lock().unwrap().clear();
}
