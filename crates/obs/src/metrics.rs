//! A global, thread-safe registry of counters, gauges, series and
//! histograms.
//!
//! All recording functions are no-ops while collection is disabled, so
//! instrumented hot paths pay one relaxed atomic load when observability is
//! off. Names are free-form; the convention used across the workspace is
//! `crate.metric` (e.g. `cdfg.nodes_built`) and `stage/metric` for series
//! (e.g. `train/GNN_p/loss`).
//!
//! Long-running servers call [`enable_always`] once: it keeps **metrics**
//! recording even when span collection is off, without also turning on the
//! span arena (which grows per span and is only meant for bounded runs).
//!
//! Histograms are log₂-bucketed ([`LogHistogram`]) and additionally keep a
//! bounded window of the most recent raw observations, so
//! [`HistogramDetail::quantile`] returns **exact** p50/p90/p99 over the
//! last [`RECENT_WINDOW`] values rather than bucket-interpolated
//! estimates. The bucket counts feed cumulative `le` exposition for
//! Prometheus scrapers (see the `serve` crate).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::collecting;
use crate::json::Json;

/// Number of power-of-two histogram buckets (covers values up to `2^62`).
const HIST_BUCKETS: usize = 63;

/// Raw observations kept per histogram for exact quantiles (the window is
/// a ring: once full, each new value replaces the oldest).
pub const RECENT_WINDOW: usize = 2048;

static ALWAYS: AtomicBool = AtomicBool::new(false);

/// Keeps metrics recording regardless of `QOR_TRACE`/`QOR_REPORT`.
///
/// Serving processes call this once at startup so `/metrics` is live
/// without enabling the (unbounded) span arena. Memory stays bounded:
/// the registry holds one entry per metric *name* and each histogram
/// window is capped at [`RECENT_WINDOW`] values.
pub fn enable_always() {
    ALWAYS.store(true, Ordering::Relaxed);
}

/// Whether metric recording is active (collection on, or [`enable_always`]).
fn recording() -> bool {
    collecting() || ALWAYS.load(Ordering::Relaxed)
}

/// A log₂-bucketed histogram with an exact-quantile window.
///
/// This is the same structure the global registry uses, exposed so other
/// crates can own instance-local histograms (e.g. the server's per-route
/// latency tracking) and render them through the shared
/// [`HistogramDetail`] machinery.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Bucket `i` counts values `v` with `2^(i-1) <= v < 2^i`
    /// (bucket 0 counts `v < 1`).
    buckets: Box<[u64; HIST_BUCKETS]>,
    /// Ring of the most recent raw observations.
    recent: Vec<f64>,
    /// Next write position in `recent` once it reaches capacity.
    recent_head: usize,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: Box::new([0; HIST_BUCKETS]),
            recent: Vec::new(),
            recent_head: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
        if self.recent.len() < RECENT_WINDOW {
            self.recent.push(value);
        } else {
            self.recent[self.recent_head] = value;
            self.recent_head = (self.recent_head + 1) % RECENT_WINDOW;
        }
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Point-in-time detail: cumulative buckets plus the sorted quantile
    /// window.
    pub fn detail(&self) -> HistogramDetail {
        // cumulative `le` buckets, eliding leading/trailing all-zero runs
        // but always closing with `+Inf`
        let mut buckets = Vec::new();
        let mut cumulative = 0u64;
        let last_used = self.buckets.iter().rposition(|&b| b > 0);
        if let Some(last) = last_used {
            for (i, &c) in self.buckets.iter().take(last + 1).enumerate() {
                cumulative += c;
                buckets.push((bucket_upper(i), cumulative));
            }
        }
        buckets.push((f64::INFINITY, self.count));
        let mut window: Vec<f64> = self.recent.clone();
        window.sort_by(f64::total_cmp);
        HistogramDetail {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            buckets,
            window,
        }
    }
}

/// Bucket index of a value (bucket 0: `v < 1`; bucket `i`:
/// `2^(i-1) <= v < 2^i`).
fn bucket_index(value: f64) -> usize {
    if value < 1.0 {
        0
    } else {
        ((value.log2().floor() as usize) + 1).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`le` in Prometheus terms).
fn bucket_upper(i: usize) -> f64 {
    if i == 0 {
        1.0
    } else if i >= HIST_BUCKETS - 1 {
        f64::INFINITY
    } else {
        (1u64 << i) as f64
    }
}

/// Point-in-time histogram detail for exporters and SLO checks.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramDetail {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Cumulative `(upper_bound, count_le)` pairs; the final entry is
    /// `(+Inf, count)`.
    pub buckets: Vec<(f64, u64)>,
    /// Sorted window of the most recent raw observations (at most
    /// [`RECENT_WINDOW`]).
    pub window: Vec<f64>,
}

impl HistogramDetail {
    /// The `q`-quantile (`0.0..=1.0`) by the nearest-rank method, exact
    /// over the recent window (which is *all* observations while `count`
    /// ≤ [`RECENT_WINDOW`]). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let n = self.window.len();
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
        self.window[rank - 1]
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    /// `(step, value)` pairs in insertion order.
    Series(Vec<(u64, f64)>),
    Histogram(LogHistogram),
}

static REGISTRY: Mutex<BTreeMap<String, Metric>> = Mutex::new(BTreeMap::new());

fn with_metric(name: &str, make: impl FnOnce() -> Metric, update: impl FnOnce(&mut Metric)) {
    let mut reg = REGISTRY.lock().unwrap();
    let slot = reg.entry(name.to_string()).or_insert_with(make);
    update(slot);
}

/// Adds `delta` to the named counter (creating it at zero).
pub fn counter_add(name: &str, delta: u64) {
    if !recording() {
        return;
    }
    with_metric(
        name,
        || Metric::Counter(0),
        |m| {
            if let Metric::Counter(v) = m {
                *v += delta;
            } else {
                *m = Metric::Counter(delta);
            }
        },
    );
}

/// Sets the named gauge to `value`.
pub fn gauge_set(name: &str, value: f64) {
    if !recording() {
        return;
    }
    with_metric(name, || Metric::Gauge(value), |m| *m = Metric::Gauge(value));
}

/// Appends `(step, value)` to the named series.
pub fn series_push(name: &str, step: u64, value: f64) {
    if !recording() {
        return;
    }
    with_metric(
        name,
        || Metric::Series(Vec::new()),
        |m| {
            if let Metric::Series(points) = m {
                points.push((step, value));
            } else {
                *m = Metric::Series(vec![(step, value)]);
            }
        },
    );
}

/// Records one observation in the named log-bucketed histogram.
pub fn histogram_record(name: &str, value: f64) {
    if !recording() {
        return;
    }
    with_metric(
        name,
        || Metric::Histogram(LogHistogram::new()),
        |m| {
            if !matches!(m, Metric::Histogram(_)) {
                *m = Metric::Histogram(LogHistogram::new());
            }
            if let Metric::Histogram(h) = m {
                h.record(value);
            }
        },
    );
}

/// Point-in-time value of one metric, for exporters (e.g. the `serve`
/// crate's Prometheus endpoint).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Snapshot {
    /// Monotonic counter.
    Counter(u64),
    /// Instantaneous gauge.
    Gauge(f64),
    /// Latest point of a series, as `(step, value)`.
    SeriesLast(u64, f64),
    /// Histogram summary (bucket detail via [`histogram_detail`]).
    Histogram {
        /// Observation count.
        count: u64,
        /// Sum of observations.
        sum: f64,
        /// Smallest observation.
        min: f64,
        /// Largest observation.
        max: f64,
    },
}

/// Snapshots every registered metric in name order.
///
/// Like [`counter_value`], this reads whatever the registry holds
/// regardless of [`crate::collecting`] — when collection is off the
/// registry is simply empty. Empty series are skipped.
pub fn snapshot() -> Vec<(String, Snapshot)> {
    let reg = REGISTRY.lock().unwrap();
    reg.iter()
        .filter_map(|(name, metric)| {
            let snap = match metric {
                Metric::Counter(v) => Snapshot::Counter(*v),
                Metric::Gauge(v) => Snapshot::Gauge(*v),
                Metric::Series(points) => {
                    let &(step, value) = points.last()?;
                    Snapshot::SeriesLast(step, value)
                }
                Metric::Histogram(h) => Snapshot::Histogram {
                    count: h.count,
                    sum: h.sum,
                    min: h.min,
                    max: h.max,
                },
            };
            Some((name.clone(), snap))
        })
        .collect()
}

/// Full bucket/quantile detail of a registered histogram (`None` when the
/// name is absent or not a histogram).
pub fn histogram_detail(name: &str) -> Option<HistogramDetail> {
    match REGISTRY.lock().unwrap().get(name) {
        Some(Metric::Histogram(h)) => Some(h.detail()),
        _ => None,
    }
}

/// Reads a counter's current value (0 if absent); test and report support.
pub fn counter_value(name: &str) -> u64 {
    match REGISTRY.lock().unwrap().get(name) {
        Some(Metric::Counter(v)) => *v,
        _ => 0,
    }
}

/// Number of points currently in a series (0 if absent).
pub fn series_len(name: &str) -> usize {
    match REGISTRY.lock().unwrap().get(name) {
        Some(Metric::Series(points)) => points.len(),
        _ => 0,
    }
}

/// Serializes the registry as one JSON object keyed by metric name.
pub(crate) fn registry_json() -> Json {
    let reg = REGISTRY.lock().unwrap();
    Json::Obj(
        reg.iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(v) => Json::obj(vec![
                        ("type", Json::str("counter")),
                        ("value", Json::UInt(*v)),
                    ]),
                    Metric::Gauge(v) => Json::obj(vec![
                        ("type", Json::str("gauge")),
                        ("value", Json::Float(*v)),
                    ]),
                    Metric::Series(points) => Json::obj(vec![
                        ("type", Json::str("series")),
                        (
                            "steps",
                            Json::Arr(points.iter().map(|&(s, _)| Json::UInt(s)).collect()),
                        ),
                        (
                            "values",
                            Json::Arr(points.iter().map(|&(_, v)| Json::Float(v)).collect()),
                        ),
                    ]),
                    Metric::Histogram(h) => {
                        // trailing empty buckets are elided
                        let last = h.buckets.iter().rposition(|&b| b > 0).map_or(0, |i| i + 1);
                        let detail = h.detail();
                        Json::obj(vec![
                            ("type", Json::str("histogram")),
                            ("count", Json::UInt(h.count)),
                            ("sum", Json::Float(h.sum)),
                            ("min", Json::Float(h.min)),
                            ("max", Json::Float(h.max)),
                            ("p50", Json::Float(detail.quantile(0.50))),
                            ("p90", Json::Float(detail.quantile(0.90))),
                            ("p99", Json::Float(detail.quantile(0.99))),
                            (
                                "log2_buckets",
                                Json::Arr(
                                    h.buckets[..last].iter().map(|&b| Json::UInt(b)).collect(),
                                ),
                            ),
                        ])
                    }
                };
                (name.clone(), value)
            })
            .collect(),
    )
}

/// Clears all metrics (test support).
pub(crate) fn reset() {
    REGISTRY.lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_exact_over_the_window() {
        let mut h = LogHistogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        let d = h.detail();
        assert_eq!(d.quantile(0.50), 50.0);
        assert_eq!(d.quantile(0.90), 90.0);
        assert_eq!(d.quantile(0.99), 99.0);
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(1.0), 100.0);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 100.0);
    }

    #[test]
    fn empty_histogram_detail_is_well_defined() {
        let d = LogHistogram::new().detail();
        assert_eq!(d.count, 0);
        assert_eq!(d.quantile(0.5), 0.0);
        assert_eq!(d.buckets, vec![(f64::INFINITY, 0)]);
        assert_eq!(d.min, 0.0);
        assert_eq!(d.max, 0.0);
    }

    #[test]
    fn cumulative_buckets_close_with_inf_and_are_monotone() {
        let mut h = LogHistogram::new();
        for v in [0.5, 1.5, 3.0, 3.9, 1000.0] {
            h.record(v);
        }
        let d = h.detail();
        let last = *d.buckets.last().unwrap();
        assert_eq!(last, (f64::INFINITY, 5));
        let mut prev = 0;
        for &(upper, c) in &d.buckets {
            assert!(c >= prev, "cumulative counts must be monotone");
            prev = c;
            assert!(upper > 0.0);
        }
        // v < 1 lands in the le=1 bucket
        assert_eq!(d.buckets[0], (1.0, 1));
        // 1.5 is <= 2
        assert_eq!(d.buckets[1], (2.0, 2));
        // 3.0 and 3.9 are <= 4
        assert_eq!(d.buckets[2], (4.0, 4));
    }

    #[test]
    fn window_overflow_keeps_the_latest_values() {
        let mut h = LogHistogram::new();
        for i in 0..(RECENT_WINDOW + 100) {
            h.record(i as f64);
        }
        let d = h.detail();
        assert_eq!(d.count, (RECENT_WINDOW + 100) as u64);
        assert_eq!(d.window.len(), RECENT_WINDOW);
        // the oldest 100 observations were overwritten
        assert_eq!(d.window[0], 100.0);
        assert_eq!(d.quantile(1.0), (RECENT_WINDOW + 100 - 1) as f64);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(0.99), 0);
        assert_eq!(bucket_index(1.0), 1);
        assert_eq!(bucket_index(1.99), 1);
        assert_eq!(bucket_index(2.0), 2);
        assert_eq!(bucket_index(1024.0), 11);
        assert_eq!(bucket_index(f64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_upper(0), 1.0);
        assert_eq!(bucket_upper(1), 2.0);
        assert_eq!(bucket_upper(11), 2048.0);
        assert!(bucket_upper(HIST_BUCKETS - 1).is_infinite());
    }
}
