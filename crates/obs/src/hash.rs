//! Stable, seed-free FNV-1a hashing — the workspace's single implementation.
//!
//! The standard library's default [`std::collections::HashMap`] hasher
//! ([`std::collections::hash_map::RandomState`]) is randomized per process,
//! so hashes cannot be used as cache keys that survive a restart, compared
//! across processes, or embedded in on-disk artifacts. [`Fnv1aHasher`] is
//! the classic 64-bit Fowler–Noll–Vo 1a hash: deterministic, seed-free,
//! fast on the short keys this workspace hashes (kernel sources, pragma
//! fingerprints, parameter names), and with a published test-vector suite.
//!
//! Every digest in the workspace routes through this module: session cache
//! keys and checkpoint/wire checksums (re-exported as `qor_core::hash`),
//! pragma fingerprints (`pragma::PragmaConfig::fingerprint`), trace-id
//! derivation ([`crate::trace`]), post-route variance seeding in `hlsim`,
//! and the dependency keys of the incremental query database (`incr`).
//! Keeping one implementation means one digest-stability contract: a hash
//! recorded in an artifact by any crate can be recomputed by any other.
//!
//! # Example
//!
//! ```
//! // Known FNV-1a 64-bit vector: the empty input hashes to the offset basis.
//! assert_eq!(obs::hash::fnv1a(b""), 0xcbf2_9ce4_8422_2325);
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a 64-bit offset basis.
pub const FNV1A_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV1A_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A [`Hasher`] implementing 64-bit FNV-1a.
///
/// Deterministic across processes and platforms for the same byte stream
/// (multi-byte [`Hasher`] write methods are explicitly little-endian here,
/// rather than inheriting the native-endian defaults).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1aHasher(u64);

impl Default for Fnv1aHasher {
    fn default() -> Self {
        Fnv1aHasher(FNV1A_OFFSET)
    }
}

impl Fnv1aHasher {
    /// A hasher starting from the standard offset basis.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Hasher for Fnv1aHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV1A_PRIME);
        }
    }

    fn write_u16(&mut self, v: u16) {
        self.write(&v.to_le_bytes());
    }

    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_usize(&mut self, v: usize) {
        self.write(&(v as u64).to_le_bytes());
    }
}

/// A [`std::hash::BuildHasher`] for FNV-1a keyed maps
/// (`HashMap<K, V, FnvBuildHasher>`).
pub type FnvBuildHasher = BuildHasherDefault<Fnv1aHasher>;

/// Hashes a byte slice with 64-bit FNV-1a.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1aHasher::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Vectors from Landon Noll's reference FNV test suite (64-bit FNV-1a).
    #[test]
    fn known_fnv1a_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"b"), 0xaf63_df4c_8601_f1a5);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn hasher_is_incremental() {
        let mut h = Fnv1aHasher::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn integer_writes_are_little_endian_bytes() {
        let mut a = Fnv1aHasher::new();
        a.write_u64(0x0102_0304_0506_0708);
        assert_eq!(
            a.finish(),
            fnv1a(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01])
        );
    }

    #[test]
    fn map_with_fnv_build_hasher_works() {
        let mut m: std::collections::HashMap<u64, &str, FnvBuildHasher> = Default::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
    }
}
