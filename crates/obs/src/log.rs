//! Leveled, structured JSON-lines event log.
//!
//! One event is one JSON object on one line:
//!
//! ```json
//! {"ts_us":184733,"level":"info","event":"http.request",
//!  "trace":"4be1a90cf2307d11","route":"predict","status":200,"dur_us":412}
//! ```
//!
//! `ts_us` counts from the process observability epoch (same clock as span
//! `start_us`), `trace` is the active [`crate::trace`] context (omitted
//! when none is set), and the remaining fields come from the call site.
//!
//! The sink is configured once by the `QOR_LOG` environment variable:
//!
//! * unset / `off` — logging disabled (one relaxed atomic load per call);
//! * `error` | `warn` | `info` | `debug` — events at or above the level
//!   go to **stderr**;
//! * `<level>:<path>` (e.g. `QOR_LOG=debug:/tmp/qor.jsonl`) — events are
//!   **appended to `<path>`** instead.
//!
//! Emission is lock-light: the line is fully serialized into a local
//! buffer first, then written with a single call (stderr serializes
//! internally; a file sink takes one short mutex for the write only), so
//! concurrent events never interleave mid-line.

use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::Json;
use crate::{span, trace};

/// Event severity, ordered `Error < Warn < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// A failure the operator should look at.
    Error = 1,
    /// Unexpected but handled.
    Warn = 2,
    /// One line per request/job — the serving default.
    Info = 3,
    /// Per-stage detail (cache hits, search steps).
    Debug = 4,
}

impl Level {
    /// Stable lowercase name used in the `level` field.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// `QOR_LOG` not yet read.
const UNSET: u8 = 0xff;
/// Logging disabled.
const OFF: u8 = 0;

static LEVEL: AtomicU8 = AtomicU8::new(UNSET);
static FILE: OnceLock<Option<Mutex<std::fs::File>>> = OnceLock::new();

/// The configured maximum level (0 when logging is off), reading and
/// caching `QOR_LOG` on first use.
fn max_level() -> u8 {
    let v = LEVEL.load(Ordering::Relaxed);
    if v != UNSET {
        return v;
    }
    let spec = std::env::var("QOR_LOG").unwrap_or_default();
    let spec = spec.trim();
    let (level_part, path) = match spec.split_once(':') {
        Some((l, p)) if !p.is_empty() => (l, Some(p)),
        _ => (spec, None),
    };
    let level = match Level::parse(level_part) {
        Some(l) => l as u8,
        None => OFF, // unset, "off", or unrecognized
    };
    let _ = FILE.get_or_init(|| {
        if level == OFF {
            return None;
        }
        path.and_then(|p| {
            match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(p)
            {
                Ok(f) => Some(Mutex::new(f)),
                Err(e) => {
                    eprintln!("[obs] QOR_LOG: cannot open {p}: {e}; logging to stderr");
                    None
                }
            }
        })
    });
    LEVEL.store(level, Ordering::Relaxed);
    level
}

/// Whether events at `level` are being emitted — use to skip expensive
/// field construction.
pub fn enabled(level: Level) -> bool {
    level as u8 <= max_level()
}

/// Emits one structured event. `fields` are appended after the standard
/// `ts_us` / `level` / `event` / `trace` fields; non-finite floats
/// serialize as `null` per the JSON writer's contract.
pub fn event(level: Level, name: &str, fields: &[(&str, Json)]) {
    if !enabled(level) {
        return;
    }
    let mut obj: Vec<(String, Json)> = Vec::with_capacity(fields.len() + 4);
    obj.push(("ts_us".to_string(), Json::UInt(span::now_us())));
    obj.push(("level".to_string(), Json::str(level.name())));
    obj.push(("event".to_string(), Json::str(name)));
    if let Some(trace) = trace::current() {
        obj.push(("trace".to_string(), Json::Str(trace.as_hex())));
    }
    for (k, v) in fields {
        obj.push(((*k).to_string(), v.clone()));
    }
    let mut line = Json::Obj(obj).to_string();
    line.push('\n');
    match FILE.get().and_then(Option::as_ref) {
        Some(file) => {
            let mut file = file.lock().unwrap_or_else(|e| e.into_inner());
            let _ = file.write_all(line.as_bytes());
        }
        None => {
            let _ = std::io::stderr().write_all(line.as_bytes());
        }
    }
}

/// Microseconds since the process observability epoch — the clock `ts_us`,
/// span `start_us` and flight-record `start_us` all share, exposed so
/// callers can stamp their own records consistently.
pub fn now_us() -> u64 {
    span::now_us()
}

/// The configured level name for diagnostics endpoints (`"off"` when
/// disabled).
pub fn level_name() -> &'static str {
    match max_level() {
        1 => "error",
        2 => "warn",
        3 => "info",
        4 => "debug",
        _ => "off",
    }
}

/// Emits a structured log event with inline fields:
///
/// ```
/// obs::logev!(obs::log::Level::Info, "dse.submit",
///             "job" => obs::Json::str("job-1"),
///             "budget" => obs::Json::UInt(64));
/// ```
#[macro_export]
macro_rules! logev {
    ($level:expr, $name:expr $(, $key:expr => $value:expr)* $(,)?) => {
        if $crate::log::enabled($level) {
            $crate::log::event($level, $name, &[$( ($key, $value) ),*]);
        }
    };
}
