//! Request-scoped trace contexts.
//!
//! A [`TraceId`] identifies one logical request or job end-to-end: the
//! serving layer derives one per HTTP request (or adopts the id sent by an
//! upstream hop in the `x-qor-trace` header), the session and search
//! layers run under it, and every span ([`crate::span`]), structured log
//! event ([`crate::log`]) and flight record ([`crate::flight`]) produced
//! while it is active carries it. Ids are **FNV-1a derived**, never
//! random: deriving from the same parts yields the same id in every
//! process, which keeps recorded traces reproducible run over run.
//!
//! Propagation is by thread: [`adopt`] installs an id in a thread-local
//! slot and returns a guard that restores the previous id on drop. Code
//! that fans work out to other threads (e.g. a `par::map` batch) captures
//! [`current_raw`] before the fan-out and adopts it inside the worker
//! closure.
//!
//! Tracing is always on — reading the thread-local costs a few
//! nanoseconds and nothing is allocated, so there is no enable gate.

use std::cell::Cell;
use std::hash::Hasher;

use crate::hash::{Fnv1aHasher, FNV1A_OFFSET};

/// One end-to-end trace identifier. The all-zero id is reserved to mean
/// "no trace" and is never produced by [`derive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Canonical wire form: 16 lowercase hex digits (the form accepted in
    /// the `x-qor-trace` HTTP header and printed in logs and dumps).
    pub fn as_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the canonical hex form; rejects the reserved zero id.
    pub fn parse_hex(s: &str) -> Option<TraceId> {
        let s = s.trim();
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        u64::from_str_radix(s, 16)
            .ok()
            .filter(|&v| v != 0)
            .map(TraceId)
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Derives a deterministic trace id with FNV-1a over `parts` (each part is
/// terminated so `["ab","c"]` and `["a","bc"]` differ).
pub fn derive(parts: &[&[u8]]) -> TraceId {
    let mut hasher = Fnv1aHasher::new();
    for part in parts {
        hasher.write(part);
        hasher.write(&[0xff]);
    }
    let mut h = hasher.finish();
    if h == 0 {
        h = FNV1A_OFFSET; // keep the "no trace" sentinel unreachable
    }
    TraceId(h)
}

thread_local! {
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// The trace id active on this thread, if any.
pub fn current() -> Option<TraceId> {
    match current_raw() {
        0 => None,
        v => Some(TraceId(v)),
    }
}

/// The raw active trace id (0 = none). Cheap enough for hot paths; used
/// to capture the context before fanning work out to worker threads.
pub fn current_raw() -> u64 {
    CURRENT.with(Cell::get)
}

/// Restores the previously active trace id when dropped.
#[must_use = "the trace context is active until the guard drops"]
pub struct TraceGuard {
    prev: u64,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Makes `id` the active trace on this thread until the guard drops.
pub fn adopt(id: TraceId) -> TraceGuard {
    adopt_raw(id.0)
}

/// [`adopt`] for a raw id as captured by [`current_raw`]; adopting `0`
/// clears the context (the guard still restores the previous id).
pub fn adopt_raw(id: u64) -> TraceGuard {
    let prev = CURRENT.with(|c| c.replace(id));
    TraceGuard { prev }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic_and_part_sensitive() {
        let a = derive(&[b"http", b"1"]);
        let b = derive(&[b"http", b"1"]);
        let c = derive(&[b"http", b"2"]);
        let d = derive(&[b"htt", b"p1"]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(a.0, 0);
    }

    #[test]
    fn hex_round_trips_and_rejects_junk() {
        let id = derive(&[b"job", b"job-7"]);
        assert_eq!(TraceId::parse_hex(&id.as_hex()), Some(id));
        assert_eq!(id.as_hex().len(), 16);
        for bad in ["", "zz", "0", "0000000000000000", "11112222333344445"] {
            assert_eq!(TraceId::parse_hex(bad), None, "{bad:?}");
        }
        // shorter hex strings are accepted (leading zeros implied)
        assert_eq!(TraceId::parse_hex("ff"), Some(TraceId(255)));
    }

    #[test]
    fn adopt_nests_and_restores() {
        assert_eq!(current(), None);
        let outer = derive(&[b"outer"]);
        let inner = derive(&[b"inner"]);
        {
            let _a = adopt(outer);
            assert_eq!(current(), Some(outer));
            {
                let _b = adopt(inner);
                assert_eq!(current(), Some(inner));
            }
            assert_eq!(current(), Some(outer));
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn threads_do_not_inherit_but_can_adopt() {
        let id = derive(&[b"fanout"]);
        let _g = adopt(id);
        let raw = current_raw();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                assert_eq!(current(), None, "fresh threads start without a trace");
                let _w = adopt_raw(raw);
                assert_eq!(current(), Some(id));
            });
        });
        assert_eq!(current(), Some(id));
    }
}
