#![warn(missing_docs)]
//! Observability substrate for the QoR-prediction pipeline.
//!
//! Six pieces, all std-only and thread-safe:
//!
//! * **Spans** — hierarchical wall-clock timing with RAII guards and
//!   per-span attributes ([`span`], [`span!`]).
//! * **Metrics** — counters, gauges, per-step series and log-bucketed
//!   histograms with exact-quantile windows in a global registry
//!   ([`metrics`]).
//! * **Run reports** — the span forest plus all metrics (and any tables
//!   recorded by benchmark binaries) serialized to JSON by a hand-rolled
//!   writer ([`report`]).
//! * **Trace contexts** — deterministic FNV-derived request/job ids,
//!   thread-propagated and stamped onto every span, log event and flight
//!   record ([`trace`]).
//! * **Structured log** — leveled JSON-lines events to stderr or a file,
//!   controlled by `QOR_LOG` ([`log`], [`logev!`]).
//! * **Flight recorder** — an always-on fixed-capacity ring of the last N
//!   completed request/job traces at bounded memory ([`flight`]).
//!
//! Behaviour is controlled by environment variables, each read once:
//!
//! * `QOR_TRACE=0|1|2` — live stderr verbosity. `0` (default) is fully
//!   silent; `1` prints one line per closed span; `2` adds span-entry lines
//!   and attributes.
//! * `QOR_REPORT=path.json` — write the JSON run report to `path.json` when
//!   the [`report::Session`] returned by [`init`] drops (or on demand via
//!   [`report::write_report`]).
//! * `QOR_LOG=level[:path]` — structured JSON-lines event log (see
//!   [`log`]).
//! * `QOR_FLIGHT_CAP=N` — flight-recorder capacity (see [`flight`]).
//!
//! With none of them set, span/metric collection is disabled and every
//! recording entry point reduces to one relaxed atomic load —
//! instrumentation can stay on in hot paths. Trace contexts and the
//! flight recorder are always on: both are bounded and cost nanoseconds.
//! Long-running servers that want live `/metrics` without the unbounded
//! span arena call [`metrics::enable_always`].
//!
//! # Example
//!
//! ```
//! obs::test_support::force_collection(true);
//! {
//!     let s = obs::span("cdfg_build");
//!     s.attr("nodes", 42u64);
//!     obs::metrics::counter_add("cdfg.nodes_built", 42);
//! }
//! let json = obs::report::report_json().to_string();
//! assert!(json.contains("\"cdfg_build\""));
//! obs::test_support::force_collection(false);
//! ```

pub mod flight;
pub mod hash;
pub mod json;
pub mod log;
pub mod metrics;
pub mod report;
mod span;
pub mod trace;

pub use json::Json;
pub use span::{span, Span};
pub use trace::TraceId;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Tri-state cached flags: `UNSET` until first read.
const UNSET: u8 = 0xff;

static TRACE_LEVEL: AtomicU8 = AtomicU8::new(UNSET);
static COLLECT: AtomicU8 = AtomicU8::new(UNSET);
static REPORT_PATH: OnceLock<Option<String>> = OnceLock::new();

/// The live stderr verbosity from `QOR_TRACE` (0, 1 or 2).
pub fn trace_level() -> u8 {
    let v = TRACE_LEVEL.load(Ordering::Relaxed);
    if v != UNSET {
        return v;
    }
    let level = std::env::var("QOR_TRACE")
        .ok()
        .and_then(|v| v.trim().parse::<u8>().ok())
        .unwrap_or(0)
        .min(2);
    TRACE_LEVEL.store(level, Ordering::Relaxed);
    level
}

/// The run-report path from `QOR_REPORT`, if set.
pub fn report_path() -> Option<&'static str> {
    REPORT_PATH
        .get_or_init(|| std::env::var("QOR_REPORT").ok().filter(|p| !p.is_empty()))
        .as_deref()
}

/// Whether spans and metrics are being recorded.
///
/// True when `QOR_TRACE >= 1`, `QOR_REPORT` is set, or a test forced
/// collection on. This is the fast path gate: when false, all recording
/// entry points return immediately.
pub fn collecting() -> bool {
    let v = COLLECT.load(Ordering::Relaxed);
    if v != UNSET {
        return v != 0;
    }
    let on = trace_level() >= 1 || report_path().is_some();
    COLLECT.store(u8::from(on), Ordering::Relaxed);
    on
}

/// Initializes the observability session for a binary.
///
/// Reads the environment and returns a guard that writes the JSON run
/// report on drop when `QOR_REPORT` is set. Call once at the top of `main`
/// and keep the guard alive for the whole run.
pub fn init() -> report::Session {
    let _ = collecting(); // warm the caches
    report::Session::new(report_path().map(str::to_string))
}

/// Enters a span with attributes attached at entry.
///
/// ```
/// obs::test_support::force_collection(true);
/// let _g = obs::span!("hlsim_evaluate", "kernel" => "gemm", "configs" => 12u64);
/// # drop(_g);
/// # obs::test_support::force_collection(false);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:expr => $value:expr)* $(,)?) => {{
        let s = $crate::span($name);
        $( s.attr($key, $value); )*
        s
    }};
}

/// Prints a live progress line to stderr iff `QOR_TRACE >= $level`.
///
/// This replaces ad-hoc `eprintln!` progress reporting: with `QOR_TRACE=0`
/// (the default) it emits nothing.
#[macro_export]
macro_rules! tracef {
    ($level:expr, $($arg:tt)*) => {
        if $crate::trace_level() >= $level {
            eprintln!("[obs] {}", format_args!($($arg)*));
        }
    };
}

/// Test hooks: force collection on/off and wipe global state.
///
/// Not for production use — binaries should rely on `QOR_TRACE` /
/// `QOR_REPORT` instead.
pub mod test_support {
    use super::*;

    /// Forces collection on or off, overriding the environment.
    pub fn force_collection(on: bool) {
        // touch the env caches first so they don't overwrite the override
        let _ = trace_level();
        COLLECT.store(u8::from(on), Ordering::Relaxed);
    }

    /// Clears all recorded spans, metrics, tables and flight records.
    pub fn reset() {
        crate::span::reset();
        crate::metrics::reset();
        crate::report::reset();
        crate::flight::reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Global state is shared across tests in this binary; serialize them.
    static LOCK: Mutex<()> = Mutex::new(());

    fn isolated() -> std::sync::MutexGuard<'static, ()> {
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        test_support::reset();
        test_support::force_collection(true);
        guard
    }

    #[test]
    fn nested_spans_form_a_tree() {
        let _l = isolated();
        {
            let outer = span("pipeline");
            outer.attr("kernel", "gemm");
            {
                let _parse = span("parse");
            }
            {
                let _build = span!("cdfg_build", "nodes" => 17u64);
            }
        }
        let json = report::report_json().to_string();
        // children nested under the root, in order
        let pipeline = json.find("\"pipeline\"").expect("root span present");
        let parse = json.find("\"parse\"").expect("child span present");
        let build = json.find("\"cdfg_build\"").expect("child span present");
        assert!(pipeline < parse && parse < build, "{json}");
        assert!(json.contains("\"children\""));
        assert!(json.contains(r#""kernel":"gemm""#));
        assert!(json.contains(r#""nodes":17"#));
        test_support::force_collection(false);
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let _l = isolated();
        {
            let _a = span("first");
        }
        {
            let _b = span("second");
        }
        let json = report::report_json().to_string();
        assert!(!json.contains("\"children\""), "{json}");
        test_support::force_collection(false);
    }

    #[test]
    fn span_durations_are_recorded() {
        let _l = isolated();
        {
            let _s = span("timed");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let json = report::report_json().to_string();
        assert!(!json.contains("\"dur_us\":null"), "{json}");
        test_support::force_collection(false);
    }

    #[test]
    fn concurrent_counter_updates_are_lossless() {
        let _l = isolated();
        let threads = 8;
        let per_thread = 1_000;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for _ in 0..per_thread {
                        metrics::counter_add("test.hits", 1);
                    }
                });
            }
        });
        assert_eq!(metrics::counter_value("test.hits"), threads * per_thread);
        test_support::force_collection(false);
    }

    #[test]
    fn spans_on_spawned_threads_become_roots() {
        let _l = isolated();
        let _outer = span("main_root");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _inner = span("worker_root");
            });
        });
        drop(_outer);
        let json = report::report_json().to_string();
        // worker_root must not be a child of main_root
        assert!(json.contains("\"worker_root\""));
        assert!(!json.contains("\"children\""), "{json}");
        test_support::force_collection(false);
    }

    #[test]
    fn series_and_gauges_serialize() {
        let _l = isolated();
        metrics::series_push("train/loss", 0, 1.5);
        metrics::series_push("train/loss", 1, 0.75);
        metrics::gauge_set("dse.pareto_size", 9.0);
        metrics::histogram_record("lat", 0.2);
        metrics::histogram_record("lat", 1000.0);
        let json = report::report_json().to_string();
        assert!(
            json.contains(r#""train/loss":{"type":"series","steps":[0,1],"values":[1.5,0.75]}"#)
        );
        assert!(json.contains(r#""dse.pareto_size":{"type":"gauge","value":9}"#));
        assert!(json.contains(r#""type":"histogram","count":2"#));
        test_support::force_collection(false);
    }

    #[test]
    fn metric_snapshot_covers_every_kind() {
        let _l = isolated();
        metrics::counter_add("snap.count", 3);
        metrics::gauge_set("snap.gauge", 2.5);
        metrics::series_push("snap/series", 0, 1.0);
        metrics::series_push("snap/series", 7, 4.0);
        metrics::histogram_record("snap.hist", 2.0);
        let snaps = metrics::snapshot();
        let get = |n: &str| snaps.iter().find(|(k, _)| k == n).map(|(_, s)| *s);
        assert_eq!(get("snap.count"), Some(metrics::Snapshot::Counter(3)));
        assert_eq!(get("snap.gauge"), Some(metrics::Snapshot::Gauge(2.5)));
        assert_eq!(
            get("snap/series"),
            Some(metrics::Snapshot::SeriesLast(7, 4.0))
        );
        assert!(matches!(
            get("snap.hist"),
            Some(metrics::Snapshot::Histogram { count: 1, .. })
        ));
        // names come back sorted (BTreeMap order)
        let names: Vec<&str> = snaps.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        test_support::force_collection(false);
    }

    #[test]
    fn disabled_collection_records_nothing() {
        let _l = isolated();
        test_support::force_collection(false);
        {
            let s = span("ghost");
            s.attr("k", 1u64);
            metrics::counter_add("ghost.count", 5);
        }
        test_support::force_collection(true);
        let json = report::report_json().to_string();
        assert!(!json.contains("ghost"), "{json}");
        test_support::force_collection(false);
    }

    #[test]
    fn tables_appear_in_report() {
        let _l = isolated();
        report::record_table(
            "table3",
            &["conv", "mape"],
            vec![
                vec![Json::str("sage"), Json::Float(4.2)],
                vec![Json::str("gcn")],
            ],
        );
        let json = report::report_json().to_string();
        assert!(
            json.contains(r#""table3":[{"conv":"sage","mape":4.2},{"conv":"gcn","mape":null}]"#)
        );
        test_support::force_collection(false);
    }
}
