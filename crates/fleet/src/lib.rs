#![warn(missing_docs)]
//! Distributed DSE: shard one search job's evaluation across a fleet of
//! worker servers, deterministically.
//!
//! The single-process [`search::SearchRun`] loop stays exactly as it was —
//! the coordinator owns the strategy, the RNG, the ledger, and the
//! incumbent front. Only the *evaluation* of one step's fresh candidates
//! is farmed out: [`FleetEval`] implements [`search::BatchEvaluate`] by
//! cutting the batch into contiguous work units, dispatching each unit to
//! a worker through a [`Transport`], and concatenating the returned scores
//! **in candidate order**. Reply order, worker count, retries, and
//! evictions therefore never influence the merged result: a seeded fleet
//! job at any size is byte-identical to the same seed run in one process.
//!
//! Unhappy paths are first-class:
//!
//! * per-unit bounded retry ([`FleetOptions::max_attempts`]) with
//!   reassignment of orphaned units to the next live worker,
//! * consecutive-failure eviction ([`Roster`]) plus transport-level health
//!   probes that revive workers that came back,
//! * typed failure ([`qor_core::QorError::Fleet`]) when no live worker
//!   remains or a unit exhausts its attempts.
//!
//! The crate is transport-agnostic: `serve` supplies the HTTP transport
//! over its existing wire (and the worker-side [`evaluate_genomes`]
//! handler); tests inject in-process mocks with scripted failures.

pub mod digest;
pub mod dispatch;
pub mod roster;

pub use digest::run_digest;
pub use dispatch::{FleetCounters, FleetEval, FleetOptions, FleetStats, Transport, UnitRequest};
pub use roster::Roster;

use qor_core::{QorError, Session};
use search::space::{Genome, SpaceModel};
use search::{Evaluate, SessionEval};
use std::sync::Arc;

/// Worker-side unit evaluation: rebuild the coordinator's genome space
/// from wire parameters, decode each genome (clamp-safe for untrusted
/// input), and score it through `session` — sequentially, so the result
/// is independent of the worker's `QOR_THREADS` and identical to what the
/// coordinator's own [`search::SessionEval`] would produce with the same
/// model weights.
///
/// # Errors
///
/// [`QorError::UnknownKernel`] / [`QorError::Shape`] when the request does
/// not describe a searchable space; prediction failures from the session.
pub fn evaluate_genomes(
    session: Arc<Session>,
    kernel: &str,
    unroll_factors: Option<&[u32]>,
    genomes: &[Genome],
) -> Result<Vec<(f64, f64)>, QorError> {
    let model = SpaceModel::for_kernel(kernel, unroll_factors)?;
    let eval = SessionEval::new(session, kernel);
    let delay = eval_delay();
    let mut out = Vec::with_capacity(genomes.len());
    for g in genomes {
        out.push(eval.evaluate(&model.decode(g))?);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }
    Ok(out)
}

/// Synthetic per-candidate evaluator latency, from
/// `QOR_FLEET_EVAL_DELAY_US` (zero / off by default).
///
/// Model inference is microseconds, but the fleet is shaped for
/// evaluators that are not (an HLS run, a heavier model, a remote
/// oracle). The delay injects that cost per scored genome so scaling
/// benchmarks and chaos tests can measure the dispatch pipeline's
/// concurrency on hardware where inference alone saturates the host. It
/// never affects scores — results stay byte-identical at any setting.
pub fn eval_delay() -> std::time::Duration {
    std::env::var("QOR_FLEET_EVAL_DELAY_US")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(std::time::Duration::ZERO, std::time::Duration::from_micros)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qor_core::{HierarchicalModel, TrainOptions};

    #[test]
    fn worker_eval_matches_session_eval_on_decoded_configs() {
        let opts = TrainOptions::quick().with_hidden(8).with_seed(11);
        let session = Arc::new(Session::with_capacity(HierarchicalModel::new(&opts), 64));
        let model = SpaceModel::for_kernel("fir", Some(&[1, 4])).unwrap();
        let genomes: Vec<Genome> = (0..model.genome_len() as u16)
            .map(|i| Genome(vec![i; model.genome_len()]))
            .collect();
        let points = evaluate_genomes(session.clone(), "fir", Some(&[1, 4]), &genomes).unwrap();
        let eval = SessionEval::new(session, "fir");
        for (g, p) in genomes.iter().zip(&points) {
            assert_eq!(eval.evaluate(&model.decode(g)).unwrap(), *p);
        }
    }

    #[test]
    fn worker_eval_rejects_unknown_kernels_typed() {
        let opts = TrainOptions::quick().with_hidden(8).with_seed(11);
        let session = Arc::new(Session::with_capacity(HierarchicalModel::new(&opts), 8));
        let err = evaluate_genomes(session, "no_such_kernel", None, &[]).unwrap_err();
        assert!(matches!(err, QorError::UnknownKernel(_)), "{err:?}");
    }
}
