//! The coordinator-side dispatcher: [`FleetEval`] implements
//! [`search::BatchEvaluate`] over a [`Transport`].
//!
//! One engine step's fresh candidates are cut into contiguous work units
//! of [`FleetOptions::unit_size`] genomes (auto: the batch divided evenly
//! over the live workers). Every unit is dispatched on its own thread —
//! reply order is whatever the network gives — but scores are written back
//! into a slot keyed by unit index and concatenated in unit order, so the
//! value returned to the engine is exactly the score vector a
//! single-process run would have produced. Determinism lives *here*, not
//! in the workers.
//!
//! A failed dispatch marks the worker ([`crate::Roster::mark_failure`])
//! and retries the unit on the next live worker, up to
//! [`FleetOptions::max_attempts`]; when every attempt is exhausted (or no
//! live worker remains) the step fails typed with
//! [`QorError::Fleet`] — the engine's ledger is untouched and the job can
//! resume from its last `.qorjob` checkpoint once workers return.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use obs::Json;
use pragma::PragmaConfig;
use qor_core::QorError;
use search::space::Genome;
use search::{BatchEvaluate, FleetAssignment};

use crate::roster::Roster;

/// One work unit on the wire: which slice of which job, and the genomes
/// the worker must rebuild-decode-score.
pub struct UnitRequest<'a> {
    /// Unit index within the current step (for logs/traces).
    pub unit: usize,
    /// Coordinator-side job label.
    pub job: &'a str,
    /// Kernel whose pragma space the genomes index.
    pub kernel: &'a str,
    /// Unroll-factor override the coordinator's space was built with.
    pub unroll_factors: Option<&'a [u32]>,
    /// The candidates to score, in unit order.
    pub genomes: &'a [Genome],
}

/// How work units reach a worker. `serve` implements this over its HTTP
/// wire (`POST /v1/fleet/eval` + `GET /healthz`); tests inject in-process
/// mocks with scripted failures.
pub trait Transport: Send + Sync {
    /// Scores one unit on the worker at `addr`, returning one
    /// `(latency, area)` per genome in request order.
    ///
    /// # Errors
    ///
    /// A human-readable transport or worker failure (timeout, refused
    /// connection, non-200, malformed reply). The dispatcher turns it into
    /// retry/eviction bookkeeping.
    fn eval_unit(&self, addr: &str, request: &UnitRequest<'_>) -> Result<Vec<(f64, f64)>, String>;

    /// Whether the worker at `addr` answers its health probe.
    fn probe(&self, addr: &str) -> bool;
}

/// Dispatch tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetOptions {
    /// Genomes per work unit; `0` spreads the batch evenly over the live
    /// workers.
    pub unit_size: usize,
    /// Dispatch attempts per unit before the step fails typed.
    pub max_attempts: u32,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            unit_size: 0,
            max_attempts: 3,
        }
    }
}

/// Monotonic dispatch counters, shared between per-job progress and the
/// server's `/metrics` families.
#[derive(Debug, Default)]
pub struct FleetStats {
    /// Units handed to a worker.
    pub dispatched: AtomicU64,
    /// Units that returned scores.
    pub completed: AtomicU64,
    /// Failed attempts that got another try.
    pub retried: AtomicU64,
    /// Retries that landed on a different worker than first chosen.
    pub reassigned: AtomicU64,
    /// Units that exhausted every attempt.
    pub orphaned: AtomicU64,
    /// Units currently awaiting a worker reply.
    pub in_flight: AtomicU64,
}

/// A plain-value snapshot of [`FleetStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetCounters {
    /// Units handed to a worker.
    pub dispatched: u64,
    /// Units that returned scores.
    pub completed: u64,
    /// Failed attempts that got another try.
    pub retried: u64,
    /// Retries that landed on a different worker than first chosen.
    pub reassigned: u64,
    /// Units that exhausted every attempt.
    pub orphaned: u64,
    /// Units currently awaiting a worker reply.
    pub in_flight: u64,
}

impl FleetStats {
    /// Reads every counter at once.
    pub fn snapshot(&self) -> FleetCounters {
        FleetCounters {
            dispatched: self.dispatched.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            reassigned: self.reassigned.load(Ordering::Relaxed),
            orphaned: self.orphaned.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
        }
    }

    /// Seeds the cumulative counters from a restored job's assignment.
    pub fn adopt(&self, assignment: &FleetAssignment) {
        self.dispatched
            .store(assignment.units_dispatched, Ordering::Relaxed);
        self.retried
            .store(assignment.units_retried, Ordering::Relaxed);
        self.reassigned
            .store(assignment.units_reassigned, Ordering::Relaxed);
    }
}

/// The fleet-backed batch evaluator (see the [module docs](self)).
pub struct FleetEval {
    transport: Arc<dyn Transport>,
    roster: Arc<Roster>,
    stats: Arc<FleetStats>,
    kernel: String,
    job: String,
    unroll_factors: Option<Vec<u32>>,
    opts: FleetOptions,
}

impl FleetEval {
    /// A dispatcher for `kernel` over the given roster and transport.
    pub fn new(
        transport: Arc<dyn Transport>,
        roster: Arc<Roster>,
        kernel: impl Into<String>,
        job: impl Into<String>,
    ) -> FleetEval {
        FleetEval {
            transport,
            roster,
            stats: Arc::new(FleetStats::default()),
            kernel: kernel.into(),
            job: job.into(),
            unroll_factors: None,
            opts: FleetOptions::default(),
        }
    }

    /// Carries the job's unroll-factor override onto the wire so workers
    /// rebuild the same genome space.
    pub fn with_unroll_factors(mut self, factors: Option<Vec<u32>>) -> FleetEval {
        self.unroll_factors = factors;
        self
    }

    /// Overrides the dispatch tuning knobs.
    pub fn with_options(mut self, opts: FleetOptions) -> FleetEval {
        self.opts = opts;
        self
    }

    /// Shares an externally owned stats block (the server aggregates one
    /// per hub across jobs).
    pub fn with_stats(mut self, stats: Arc<FleetStats>) -> FleetEval {
        self.stats = stats;
        self
    }

    /// The dispatcher's stats block.
    pub fn stats(&self) -> &Arc<FleetStats> {
        &self.stats
    }

    /// The dispatcher's roster.
    pub fn roster(&self) -> &Arc<Roster> {
        &self.roster
    }

    /// Scores one unit, retrying across live workers.
    fn dispatch_unit(&self, unit: usize, genomes: &[Genome]) -> Result<Vec<(f64, f64)>, QorError> {
        self.stats.dispatched.fetch_add(1, Ordering::Relaxed);
        self.stats.in_flight.fetch_add(1, Ordering::Relaxed);
        obs::metrics::counter_add("fleet/units_dispatched", 1);
        let result = self.dispatch_attempts(unit, genomes);
        self.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        match &result {
            Ok(_) => {
                self.stats.completed.fetch_add(1, Ordering::Relaxed);
                obs::metrics::counter_add("fleet/units_completed", 1);
            }
            Err(_) => {
                self.stats.orphaned.fetch_add(1, Ordering::Relaxed);
                obs::metrics::counter_add("fleet/units_orphaned", 1);
            }
        }
        result
    }

    fn dispatch_attempts(
        &self,
        unit: usize,
        genomes: &[Genome],
    ) -> Result<Vec<(f64, f64)>, QorError> {
        let request = UnitRequest {
            unit,
            job: &self.job,
            kernel: &self.kernel,
            unroll_factors: self.unroll_factors.as_deref(),
            genomes,
        };
        let mut first_addr: Option<String> = None;
        let mut last_err = String::from("no live workers");
        for attempt in 0..self.opts.max_attempts {
            let live = self.roster.live();
            if live.is_empty() {
                break;
            }
            let addr = &live[(unit + attempt as usize) % live.len()];
            match &first_addr {
                None => first_addr = Some(addr.clone()),
                Some(first) if first != addr => {
                    self.stats.reassigned.fetch_add(1, Ordering::Relaxed);
                    obs::metrics::counter_add("fleet/units_reassigned", 1);
                }
                Some(_) => {}
            }
            let sp = obs::span("fleet_unit");
            sp.attr("unit", unit);
            sp.attr("worker", addr.as_str());
            sp.attr("attempt", attempt as u64);
            match self.transport.eval_unit(addr, &request) {
                Ok(points) if points.len() == genomes.len() => {
                    self.roster.mark_success(addr);
                    return Ok(points);
                }
                Ok(points) => {
                    last_err = format!(
                        "worker {addr} returned {} points for {} genomes",
                        points.len(),
                        genomes.len()
                    );
                }
                Err(e) => last_err = format!("worker {addr}: {e}"),
            }
            // short reply and transport failure are handled identically:
            // mark the worker and let the next attempt reassign the unit
            let evicted = self.roster.mark_failure(addr);
            if evicted {
                obs::metrics::counter_add("fleet/workers_evicted", 1);
                obs::log::event(
                    obs::log::Level::Warn,
                    "fleet.evict",
                    &[("worker", Json::str(addr)), ("job", Json::str(&self.job))],
                );
            }
            if attempt + 1 < self.opts.max_attempts {
                self.stats.retried.fetch_add(1, Ordering::Relaxed);
                obs::metrics::counter_add("fleet/units_retried", 1);
            }
        }
        Err(QorError::Fleet(format!(
            "unit {unit} of job {} undeliverable after {} attempts: {last_err}",
            self.job, self.opts.max_attempts
        )))
    }
}

impl BatchEvaluate for FleetEval {
    fn evaluate_batch(
        &self,
        batch: &[(Genome, PragmaConfig)],
    ) -> Result<Vec<(f64, f64)>, QorError> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let sp = obs::span("fleet_dispatch");
        sp.attr("job", self.job.as_str());
        sp.attr("candidates", batch.len());

        let mut live = self.roster.live().len();
        if live == 0 {
            // one revival sweep before giving up: restarted workers answer
            // their probe again without re-registration
            let (revived, _) = self.roster.probe_all(&*self.transport);
            live = revived;
        }
        if live == 0 {
            return Err(QorError::Fleet(format!(
                "no live workers ({} registered)",
                self.roster.len()
            )));
        }

        let unit_size = if self.opts.unit_size > 0 {
            self.opts.unit_size
        } else {
            batch.len().div_ceil(live)
        };
        let genomes: Vec<Genome> = batch.iter().map(|(g, _)| g.clone()).collect();
        let units: Vec<&[Genome]> = genomes.chunks(unit_size.max(1)).collect();
        sp.attr("units", units.len());

        // fan out one thread per unit, but consume results in unit order:
        // the concatenation below is reply-order independent
        let trace = obs::trace::current_raw();
        let results: Vec<Result<Vec<(f64, f64)>, QorError>> = std::thread::scope(|s| {
            let handles: Vec<_> = units
                .iter()
                .enumerate()
                .map(|(u, unit_genomes)| {
                    s.spawn(move || {
                        let _g = obs::trace::adopt_raw(trace);
                        self.dispatch_unit(u, unit_genomes)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fleet unit thread"))
                .collect()
        });

        let mut out = Vec::with_capacity(batch.len());
        for result in results {
            out.extend(result?);
        }
        Ok(out)
    }

    fn detail(&self) -> Option<Json> {
        let counters = self.stats.snapshot();
        let workers = self.roster.list();
        let alive = workers.iter().filter(|w| w.healthy).count();
        Some(Json::obj(vec![
            ("workers", Json::UInt(workers.len() as u64)),
            ("workers_alive", Json::UInt(alive as u64)),
            ("workers_evicted", Json::UInt(self.roster.evicted_total())),
            ("units_in_flight", Json::UInt(counters.in_flight)),
            ("units_dispatched", Json::UInt(counters.dispatched)),
            ("units_completed", Json::UInt(counters.completed)),
            ("units_retried", Json::UInt(counters.retried)),
            ("units_reassigned", Json::UInt(counters.reassigned)),
            ("units_orphaned", Json::UInt(counters.orphaned)),
        ]))
    }

    fn assignment(&self) -> Option<FleetAssignment> {
        let counters = self.stats.snapshot();
        Some(FleetAssignment {
            workers: self.roster.list(),
            units_dispatched: counters.dispatched,
            units_retried: counters.retried,
            units_reassigned: counters.reassigned,
            workers_evicted: self.roster.evicted_total(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qor_core::{HierarchicalModel, Session, TrainOptions};
    use search::{SearchOptions, SearchRun, SessionEval, StrategyKind};
    use std::collections::HashMap;
    use std::sync::Mutex;

    /// In-process transport scoring through a shared session, with a
    /// scripted number of failures per worker address.
    struct MockTransport {
        session: Arc<Session>,
        fail_next: Mutex<HashMap<String, u32>>,
        calls: AtomicU64,
    }

    impl MockTransport {
        fn new(session: Arc<Session>) -> MockTransport {
            MockTransport {
                session,
                fail_next: Mutex::new(HashMap::new()),
                calls: AtomicU64::new(0),
            }
        }

        fn fail(&self, addr: &str, times: u32) {
            self.fail_next
                .lock()
                .unwrap()
                .insert(addr.to_string(), times);
        }
    }

    impl Transport for MockTransport {
        fn eval_unit(
            &self,
            addr: &str,
            request: &UnitRequest<'_>,
        ) -> Result<Vec<(f64, f64)>, String> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            {
                let mut fail = self.fail_next.lock().unwrap();
                if let Some(n) = fail.get_mut(addr) {
                    if *n > 0 {
                        *n -= 1;
                        return Err("injected failure".into());
                    }
                }
            }
            crate::evaluate_genomes(
                self.session.clone(),
                request.kernel,
                request.unroll_factors,
                request.genomes,
            )
            .map_err(|e| e.to_string())
        }

        fn probe(&self, addr: &str) -> bool {
            self.fail_next
                .lock()
                .unwrap()
                .get(addr)
                .is_none_or(|n| *n == 0)
        }
    }

    fn session() -> Arc<Session> {
        let opts = TrainOptions::quick().with_hidden(8).with_seed(9);
        Arc::new(Session::with_capacity(HierarchicalModel::new(&opts), 128))
    }

    fn search_opts() -> SearchOptions {
        SearchOptions::new("bicg", StrategyKind::Genetic, 16)
            .with_seed(77)
            .with_batch(6)
            .with_unroll_factors(vec![1, 4])
    }

    fn fleet(transport: &Arc<MockTransport>, workers: &[&str], opts: FleetOptions) -> FleetEval {
        let roster = Arc::new(Roster::new(2));
        for w in workers {
            roster.register(w);
        }
        FleetEval::new(
            transport.clone() as Arc<dyn Transport>,
            roster,
            "bicg",
            "job-test",
        )
        .with_unroll_factors(Some(vec![1, 4]))
        .with_options(opts)
    }

    #[test]
    fn fleet_run_is_byte_identical_to_single_process_at_any_size() {
        let session = session();
        let eval = SessionEval::new(session.clone(), "bicg");
        let mut solo = SearchRun::for_kernel(search_opts()).unwrap();
        let expected = solo.run(&eval).unwrap();
        let solo_digest = crate::run_digest(&solo);

        for workers in [
            &["w0"][..],
            &["w0", "w1"][..],
            &["w0", "w1", "w2", "w3"][..],
        ] {
            let transport = Arc::new(MockTransport::new(session.clone()));
            let fleet = fleet(&transport, workers, FleetOptions::default());
            let mut run = SearchRun::for_kernel(search_opts()).unwrap();
            let outcome = run.run_with(&fleet).unwrap();
            assert_eq!(outcome, expected, "{} workers diverged", workers.len());
            assert_eq!(crate::run_digest(&run), solo_digest);
        }
    }

    #[test]
    fn failed_workers_are_retried_then_evicted_without_changing_results() {
        let session = session();
        let eval = SessionEval::new(session.clone(), "bicg");
        let mut solo = SearchRun::for_kernel(search_opts()).unwrap();
        let expected = solo.run(&eval).unwrap();

        let transport = Arc::new(MockTransport::new(session));
        transport.fail("w1", 100); // w1 is dead for the whole run
        let fleet = fleet(&transport, &["w0", "w1"], FleetOptions::default());
        let mut run = SearchRun::for_kernel(search_opts()).unwrap();
        let outcome = run.run_with(&fleet).unwrap();
        assert_eq!(outcome, expected, "retry/eviction changed the result");

        let counters = fleet.stats().snapshot();
        assert!(counters.retried > 0, "no retries recorded");
        assert!(counters.reassigned > 0, "no reassignments recorded");
        assert_eq!(counters.orphaned, 0);
        assert_eq!(counters.in_flight, 0);
        assert_eq!(fleet.roster().evicted_total(), 1);
        let detail = fleet.detail().unwrap().to_string();
        assert!(detail.contains("\"workers_evicted\":1"), "{detail}");
    }

    #[test]
    fn no_live_workers_is_a_typed_fleet_error() {
        let transport = Arc::new(MockTransport::new(session()));
        transport.fail("w0", 1000);
        let fleet = fleet(&transport, &["w0"], FleetOptions::default());
        let mut run = SearchRun::for_kernel(search_opts()).unwrap();
        let err = run.run_with(&fleet).unwrap_err();
        assert!(matches!(err, QorError::Fleet(_)), "{err:?}");
        assert_eq!(run.spent(), 0, "failed dispatch must not spend budget");
    }

    #[test]
    fn assignment_round_trips_through_the_job_snapshot() {
        let session = session();
        let transport = Arc::new(MockTransport::new(session));
        let fleet = fleet(&transport, &["w0", "w1"], FleetOptions::default());
        let mut run = SearchRun::for_kernel(search_opts()).unwrap();
        run.step_with(&fleet).unwrap();
        run.set_fleet(fleet.assignment());
        let bytes = search::snapshot(&run);
        let restored = search::restore(&bytes).unwrap();
        assert_eq!(restored.fleet(), run.fleet());

        // a resumed coordinator adopts the restored assignment
        let adopted = Roster::new(2);
        let stats = FleetStats::default();
        let assignment = restored.fleet().unwrap();
        adopted.adopt(assignment);
        stats.adopt(assignment);
        assert_eq!(adopted.len(), 2);
        assert_eq!(stats.snapshot().dispatched, assignment.units_dispatched);
    }

    #[test]
    fn explicit_unit_size_splits_the_batch() {
        let session = session();
        let transport = Arc::new(MockTransport::new(session.clone()));
        let fleet = fleet(
            &transport,
            &["w0", "w1"],
            FleetOptions {
                unit_size: 1,
                max_attempts: 3,
            },
        );
        let mut run = SearchRun::for_kernel(search_opts()).unwrap();
        let report = run.step_with(&fleet).unwrap();
        assert_eq!(
            fleet.stats().snapshot().dispatched,
            report.evaluated as u64,
            "unit_size 1 must dispatch one unit per fresh candidate"
        );
    }
}
