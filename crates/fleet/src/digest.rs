//! Order-sensitive FNV-1a digest of a run's ledger and front.
//!
//! The acceptance contract for distributed search is "byte-identical to
//! the single-process run": this digest is the byte sequence that claim is
//! checked against. It covers every ledger record **in evaluation order**
//! (fingerprint, genome, raw IEEE-754 score bits) plus the presented
//! front, so any divergence — a reordered merge, a worker scoring with
//! different weights, a lost unit — changes the digest.

use qor_core::wire::{put_f64, put_u64};
use search::SearchRun;

/// The run's ledger + front digest (see the [module docs](self)).
pub fn run_digest(run: &SearchRun) -> u64 {
    let mut bytes = Vec::new();
    for rec in run.ledger() {
        put_u64(&mut bytes, rec.fingerprint);
        rec.genome.encode(&mut bytes);
        put_f64(&mut bytes, rec.point.0);
        put_f64(&mut bytes, rec.point.1);
    }
    let outcome = run.outcome();
    put_u64(&mut bytes, outcome.spent);
    put_u64(&mut bytes, outcome.iterations);
    for (fp, lat, area) in &outcome.front {
        put_u64(&mut bytes, *fp);
        put_f64(&mut bytes, *lat);
        put_f64(&mut bytes, *area);
    }
    qor_core::fnv1a(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use search::{SearchOptions, SearchRun, SessionEval, StrategyKind};
    use std::sync::Arc;

    #[test]
    fn digest_is_stable_for_same_seed_and_differs_across_seeds() {
        let opts = qor_core::TrainOptions::quick().with_hidden(8).with_seed(2);
        let session = Arc::new(qor_core::Session::with_capacity(
            qor_core::HierarchicalModel::new(&opts),
            64,
        ));
        let eval = SessionEval::new(session, "fir");
        let mk = |seed| {
            let mut run = SearchRun::for_kernel(
                SearchOptions::new("fir", StrategyKind::Random, 8)
                    .with_seed(seed)
                    .with_batch(4)
                    .with_unroll_factors(vec![1, 2, 4]),
            )
            .unwrap();
            run.run(&eval).unwrap();
            run_digest(&run)
        };
        assert_eq!(mk(5), mk(5));
        assert_ne!(mk(5), mk(6));
    }
}
