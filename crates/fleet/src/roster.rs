//! The coordinator's worker table: registration, health, and eviction.
//!
//! A [`Roster`] tracks every worker the coordinator has been told about,
//! with per-worker completion and consecutive-failure counters. A worker
//! is **live** while `failures < evict_after`; each failed dispatch or
//! probe increments the counter and each success resets it, so a worker
//! that drops off the network is evicted after a bounded number of wasted
//! attempts instead of stalling the search. [`Roster::probe_all`] revives
//! workers that answer their health probe again (a restarted process keeps
//! its registration), which is what lets a fleet job survive a worker
//! kill + restart without operator action.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use search::{FleetAssignment, FleetWorkerRecord};

use crate::dispatch::Transport;

struct WorkerSlot {
    addr: String,
    units_done: u64,
    /// Consecutive failures; reset on every success.
    failures: u64,
}

/// Worker table with consecutive-failure eviction (see the
/// [module docs](self)).
pub struct Roster {
    workers: Mutex<Vec<WorkerSlot>>,
    evict_after: u64,
    evicted: AtomicU64,
}

impl Roster {
    /// A roster that evicts a worker after `evict_after` consecutive
    /// failures (floored at 1).
    pub fn new(evict_after: u64) -> Roster {
        Roster {
            workers: Mutex::new(Vec::new()),
            evict_after: evict_after.max(1),
            evicted: AtomicU64::new(0),
        }
    }

    fn is_live(&self, w: &WorkerSlot) -> bool {
        w.failures < self.evict_after
    }

    /// Adds a worker (idempotent). Re-registering an evicted or failing
    /// worker resets its failure counter — re-registration is the
    /// operator's "it's back" signal. Returns `true` when the address was
    /// new.
    pub fn register(&self, addr: &str) -> bool {
        let mut workers = self.workers.lock().unwrap();
        if let Some(w) = workers.iter_mut().find(|w| w.addr == addr) {
            w.failures = 0;
            return false;
        }
        workers.push(WorkerSlot {
            addr: addr.to_string(),
            units_done: 0,
            failures: 0,
        });
        true
    }

    /// Forgets a worker entirely. Returns `false` for unknown addresses.
    pub fn remove(&self, addr: &str) -> bool {
        let mut workers = self.workers.lock().unwrap();
        let before = workers.len();
        workers.retain(|w| w.addr != addr);
        workers.len() != before
    }

    /// Addresses currently accepting work, in registration order.
    pub fn live(&self) -> Vec<String> {
        self.workers
            .lock()
            .unwrap()
            .iter()
            .filter(|w| self.is_live(w))
            .map(|w| w.addr.clone())
            .collect()
    }

    /// All registered workers (live and evicted), in registration order.
    pub fn list(&self) -> Vec<FleetWorkerRecord> {
        self.workers
            .lock()
            .unwrap()
            .iter()
            .map(|w| FleetWorkerRecord {
                addr: w.addr.clone(),
                units_done: w.units_done,
                failures: w.failures,
                healthy: self.is_live(w),
            })
            .collect()
    }

    /// Number of registered workers.
    pub fn len(&self) -> usize {
        self.workers.lock().unwrap().len()
    }

    /// Whether no worker is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Workers evicted over the roster's lifetime (monotonic: revivals do
    /// not subtract).
    pub fn evicted_total(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Records a completed unit for `addr` and resets its failure count.
    pub fn mark_success(&self, addr: &str) {
        let mut workers = self.workers.lock().unwrap();
        if let Some(w) = workers.iter_mut().find(|w| w.addr == addr) {
            w.units_done += 1;
            w.failures = 0;
        }
    }

    /// Records a failed dispatch or probe for `addr`. Returns `true` when
    /// this failure crossed the eviction threshold.
    pub fn mark_failure(&self, addr: &str) -> bool {
        let mut workers = self.workers.lock().unwrap();
        let Some(w) = workers.iter_mut().find(|w| w.addr == addr) else {
            return false;
        };
        let was_live = self.is_live(w);
        w.failures += 1;
        let evicted_now = was_live && !self.is_live(w);
        if evicted_now {
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        evicted_now
    }

    /// Probes every registered worker: answering workers are revived
    /// (failure count reset), silent ones take a failure (possibly
    /// evicting them). Returns `(live, evicted)` counts after the sweep.
    pub fn probe_all(&self, transport: &dyn Transport) -> (usize, usize) {
        let addrs: Vec<String> = self
            .workers
            .lock()
            .unwrap()
            .iter()
            .map(|w| w.addr.clone())
            .collect();
        for addr in &addrs {
            if transport.probe(addr) {
                let mut workers = self.workers.lock().unwrap();
                if let Some(w) = workers.iter_mut().find(|w| w.addr == *addr) {
                    w.failures = 0;
                }
            } else {
                self.mark_failure(addr);
            }
        }
        let workers = self.workers.lock().unwrap();
        let live = workers.iter().filter(|w| self.is_live(w)).count();
        (live, workers.len() - live)
    }

    /// Seeds the roster from a restored job's [`FleetAssignment`], so a
    /// resumed coordinator keeps counting where the crashed one stopped.
    pub fn adopt(&self, assignment: &FleetAssignment) {
        let mut workers = self.workers.lock().unwrap();
        for rec in &assignment.workers {
            if workers.iter().any(|w| w.addr == rec.addr) {
                continue;
            }
            workers.push(WorkerSlot {
                addr: rec.addr.clone(),
                units_done: rec.units_done,
                failures: if rec.healthy {
                    rec.failures
                } else {
                    self.evict_after
                },
            });
        }
        self.evicted
            .store(assignment.workers_evicted, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NeverUp;
    impl Transport for NeverUp {
        fn eval_unit(
            &self,
            _addr: &str,
            _request: &crate::UnitRequest<'_>,
        ) -> Result<Vec<(f64, f64)>, String> {
            Err("down".into())
        }
        fn probe(&self, _addr: &str) -> bool {
            false
        }
    }

    struct AlwaysUp;
    impl Transport for AlwaysUp {
        fn eval_unit(
            &self,
            _addr: &str,
            _request: &crate::UnitRequest<'_>,
        ) -> Result<Vec<(f64, f64)>, String> {
            Ok(Vec::new())
        }
        fn probe(&self, _addr: &str) -> bool {
            true
        }
    }

    #[test]
    fn register_is_idempotent_and_remove_forgets() {
        let roster = Roster::new(2);
        assert!(roster.register("a:1"));
        assert!(!roster.register("a:1"));
        assert!(roster.register("b:2"));
        assert_eq!(roster.live(), vec!["a:1".to_string(), "b:2".to_string()]);
        assert!(roster.remove("a:1"));
        assert!(!roster.remove("a:1"));
        assert_eq!(roster.len(), 1);
    }

    #[test]
    fn consecutive_failures_evict_and_success_resets() {
        let roster = Roster::new(2);
        roster.register("a:1");
        assert!(!roster.mark_failure("a:1"));
        roster.mark_success("a:1");
        assert!(!roster.mark_failure("a:1"), "reset counter must restart");
        assert!(roster.mark_failure("a:1"), "second consecutive evicts");
        assert!(roster.live().is_empty());
        assert_eq!(roster.evicted_total(), 1);
        let rec = &roster.list()[0];
        assert!(!rec.healthy);
        assert_eq!(rec.units_done, 1);
    }

    #[test]
    fn probes_revive_and_evict() {
        let roster = Roster::new(1);
        roster.register("a:1");
        roster.mark_failure("a:1");
        assert!(roster.live().is_empty());
        assert_eq!(roster.probe_all(&AlwaysUp), (1, 0));
        assert_eq!(roster.live().len(), 1);
        assert_eq!(roster.probe_all(&NeverUp), (0, 1));
        assert!(roster.live().is_empty());
    }

    #[test]
    fn adopt_restores_counters_without_clobbering_registrations() {
        let assignment = FleetAssignment {
            workers: vec![
                FleetWorkerRecord {
                    addr: "a:1".into(),
                    units_done: 5,
                    failures: 0,
                    healthy: true,
                },
                FleetWorkerRecord {
                    addr: "b:2".into(),
                    units_done: 3,
                    failures: 2,
                    healthy: false,
                },
            ],
            units_dispatched: 8,
            units_retried: 1,
            units_reassigned: 1,
            workers_evicted: 1,
        };
        let roster = Roster::new(2);
        roster.register("a:1"); // pre-registered: adopt must not reset it
        roster.adopt(&assignment);
        assert_eq!(roster.len(), 2);
        assert_eq!(roster.live(), vec!["a:1".to_string()]);
        assert_eq!(roster.evicted_total(), 1);
        let b = roster.list().into_iter().find(|w| w.addr == "b:2").unwrap();
        assert_eq!(b.units_done, 3);
        assert!(!b.healthy);
    }
}
