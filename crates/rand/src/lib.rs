#![warn(missing_docs)]
//! In-tree, std-only stand-in for the `rand` crate.
//!
//! The build environment is offline, so the real `rand` cannot be fetched.
//! This crate re-implements exactly the 0.8-era API subset the workspace
//! uses — [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over (inclusive) integer and float ranges,
//! [`Rng::gen_bool`] and [`seq::SliceRandom`] — on top of a xoshiro256++
//! generator seeded through SplitMix64.
//!
//! The bit stream differs from upstream `StdRng` (ChaCha12); everything in
//! this workspace only relies on determinism *across runs*, never on a
//! specific stream, so the substitution is observationally safe.

/// A source of random 64-bit words; object-safe core of [`Rng`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via the widening-multiply method.
///
/// The modulo bias is at most `span / 2^64`, far below anything observable
/// in this workspace's test budgets.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // span == 0 means the full u64 domain: take the word raw
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (self.end - self.start) * unit_f64(rng) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from an integer or float range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 `StdRng`, but the same role: a seedable,
    /// reproducible, high-quality non-cryptographic stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // an all-zero state would be a fixed point; nudge it
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// The generator's internal state, for serialization (resumable
        /// search jobs persist it and continue the exact stream).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a serialized [`StdRng::state`].
        ///
        /// An all-zero state (impossible to reach from a seeded generator,
        /// but representable in a corrupted file) is nudged the same way
        /// `from_seed` nudges it, so the generator never locks up.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return StdRng {
                    s: [0x9e37_79b9_7f4a_7c15, 1, 2, 3],
                };
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{bounded_u64, RngCore};

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// Slice element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                self.get(bounded_u64(rng, self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn state_round_trip_continues_the_exact_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..5 {
            a.gen_range(0..1_000u64);
        }
        let mut b = StdRng::from_state(a.state());
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        // the zero state is nudged, never a fixed point
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.gen_range(0..u64::MAX), z.gen_range(0..u64::MAX));
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(2..=3usize);
            assert!((2..=3).contains(&w));
            let f = rng.gen_range(-1.5..2.5f32);
            assert!((-1.5..2.5).contains(&f));
            let g = rng.gen_range(0.5..=4.0f64);
            assert!((0.5..=4.0).contains(&g));
            let s = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.4)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.4).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        // and with overwhelming probability not the identity
        assert_ne!(v, sorted);
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(5);
        let items = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
