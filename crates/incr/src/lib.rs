#![warn(missing_docs)]
//! A deterministic, dependency-tracked incremental query database.
//!
//! [`QueryDb`] memoizes *derived queries* over a set of *inputs* and
//! recomputes the minimum necessary when inputs change — the salsa-style
//! red-green algorithm used by incremental compilers, restructured for the
//! HLS QoR pipeline: per-function HIR, per-loop CDFG subgraphs and
//! per-bank feature tensors become query values, and a one-pragma edit
//! invalidates only the loop subtree that reads it.
//!
//! # Model
//!
//! * **Inputs** are set explicitly with [`QueryDb::set_input`]. Setting an
//!   input to a value equal to its current one (per [`Value::eq_value`]) is
//!   a no-op; otherwise the database's *revision* advances and the input is
//!   stamped `changed_at = revision`.
//! * **Derived queries** are computed by a host-supplied `exec` function
//!   passed to [`QueryDb::get`]. While `exec` runs, every nested
//!   [`QueryDb::get`] (and input read) is recorded as a dependency edge of
//!   the query being computed, in read order.
//! * **Red-green validation.** A memo carries `verified_at` (last revision
//!   it was known good) and `changed_at` (revision its value last actually
//!   changed). On a fetch at a newer revision, dependencies are revalidated
//!   recursively: if none changed since `verified_at`, the memo is marked
//!   green and returned without executing — even if intermediate deps were
//!   themselves recomputed but *backdated* (recomputed to an equal value,
//!   keeping their old `changed_at`). This gives the early-cutoff property:
//!   an edit whose derived effects are value-identical stops propagating at
//!   the first equal value.
//! * **Version cache.** Beyond the single current memo per key, the
//!   database keeps a bounded FIFO cache of previously computed values
//!   keyed by `(query key, dependency-trace fingerprint)`. When validation
//!   fails, the old dependency trace is re-evaluated under the current
//!   inputs and its fingerprint looked up before executing — so flipping an
//!   input A→B→A (the dominant pattern in DSE neighbor walks and
//!   hill-climb recombination) answers from cache instead of recomputing.
//!   A deterministic query is a pure function of the values its reads
//!   return, and reads happen in order, so the ordered
//!   `(dep key, dep value fingerprint)` trace identifies the execution:
//!   matching fingerprints imply (modulo 64-bit collision) a matching
//!   result.
//!
//! # Determinism
//!
//! The database holds no clocks, no randomness and no thread state; every
//! answer is either a memo of, or a fresh run of, the host's `exec` on
//! values that are pure functions of the inputs. Two databases driven with
//! the same operation sequence produce byte-identical answers *and*
//! byte-identical stats; databases driven with different interleavings
//! (e.g. different `QOR_THREADS` arrival orders) may differ in hit/miss
//! counts but never in answer bytes.
//!
//! # Example
//!
//! ```
//! use incr::{Key, QueryDb, Value};
//!
//! #[derive(Clone, PartialEq, Eq, Hash, Debug)]
//! enum K { In(u8), Sum }
//! impl Key for K {
//!     fn kind(&self) -> &'static str {
//!         match self { K::In(_) => "in", K::Sum => "sum" }
//!     }
//!     fn fingerprint(&self) -> u64 {
//!         match self { K::In(i) => u64::from(*i), K::Sum => u64::MAX }
//!     }
//! }
//! #[derive(Clone)]
//! struct V(i64);
//! impl Value for V {
//!     fn eq_value(&self, other: &Self) -> bool { self.0 == other.0 }
//!     fn fingerprint(&self) -> u64 { self.0 as u64 }
//! }
//!
//! let exec = |db: &mut QueryDb<K, V>, key: &K| match key {
//!     K::Sum => V(db.get(&K::In(0), &|db, k| unreachable!()).0
//!         + db.get(&K::In(1), &|db, k| unreachable!()).0),
//!     K::In(_) => unreachable!("inputs are set, never executed"),
//! };
//! let mut db = QueryDb::new(16);
//! db.set_input(K::In(0), V(2));
//! db.set_input(K::In(1), V(3));
//! assert_eq!(db.get(&K::Sum, &exec).0, 5);
//! assert_eq!(db.get(&K::Sum, &exec).0, 5); // memo hit, no execution
//! ```

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::Hasher;

use obs::hash::{Fnv1aHasher, FnvBuildHasher};

/// A query key: cheap to clone, hashable, self-describing.
pub trait Key: Clone + Eq + std::hash::Hash {
    /// Stable short tag naming the query family (e.g. `"loop_prepared"`);
    /// the unit of stats aggregation and metric labels.
    fn kind(&self) -> &'static str;
    /// Stable 64-bit fingerprint of the key itself (seed-free FNV-1a over
    /// the key's identity), used to key the version cache.
    fn fingerprint(&self) -> u64;
}

/// A query value: cloneable (clones should be cheap — wrap large payloads
/// in `Arc`), comparable for backdating, and content-fingerprintable.
pub trait Value: Clone {
    /// Deep value equality: drives input change detection and backdating.
    fn eq_value(&self, other: &Self) -> bool;
    /// Stable 64-bit content fingerprint. Must agree with [`eq_value`]:
    /// equal values must produce equal fingerprints. Called once per
    /// dependency edge per validation, so hosts should precompute it for
    /// large payloads.
    ///
    /// [`eq_value`]: Value::eq_value
    fn fingerprint(&self) -> u64;
}

/// Per-kind hit/miss/recompute counters.
///
/// `hits` counts every fetch answered without running `exec`
/// (same-revision memo, green validation, or version-cache reuse);
/// `validated` and `reused` break out the latter two. `misses` counts
/// first-ever computations of a key; `recomputes` counts re-executions of
/// a previously computed key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Fetches answered from memo (fast path + validated + reused).
    pub hits: u64,
    /// First-ever computations.
    pub misses: u64,
    /// Re-executions after a dependency actually changed.
    pub recomputes: u64,
    /// Hits that required walking dependencies (green validation).
    pub validated: u64,
    /// Hits answered from the cross-revision version cache.
    pub reused: u64,
}

impl KindStats {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: &KindStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.recomputes += other.recomputes;
        self.validated += other.validated;
        self.reused += other.reused;
    }

    /// Counter-wise `self - other` (saturating); used for per-request and
    /// per-job deltas.
    pub fn delta(&self, other: &KindStats) -> KindStats {
        KindStats {
            hits: self.hits.saturating_sub(other.hits),
            misses: self.misses.saturating_sub(other.misses),
            recomputes: self.recomputes.saturating_sub(other.recomputes),
            validated: self.validated.saturating_sub(other.validated),
            reused: self.reused.saturating_sub(other.reused),
        }
    }
}

struct Input<V> {
    value: V,
    changed_at: u64,
}

struct Memo<K, V> {
    value: V,
    /// Revision at which the value last actually changed (backdated when a
    /// recompute produced an equal value).
    changed_at: u64,
    /// Revision at which the memo was last verified green.
    verified_at: u64,
    /// Ordered read trace: every key this computation fetched.
    deps: Vec<K>,
}

struct Version<K, V> {
    value: V,
    deps: Vec<K>,
}

/// The incremental query database.
///
/// Generic over the host's key and value types; the host supplies the
/// execution function on every [`get`](QueryDb::get) so the database never
/// stores a closure (and stays trivially `Send`).
pub struct QueryDb<K: Key, V: Value> {
    revision: u64,
    inputs: HashMap<K, Input<V>, FnvBuildHasher>,
    memos: HashMap<K, Memo<K, V>, FnvBuildHasher>,
    versions: HashMap<(K, u64), Version<K, V>, FnvBuildHasher>,
    version_order: VecDeque<(K, u64)>,
    version_cap: usize,
    /// Keys currently executing (cycle detection + dependency recording).
    stack: Vec<(K, Vec<K>)>,
    stats: BTreeMap<&'static str, KindStats>,
}

impl<K: Key, V: Value> QueryDb<K, V> {
    /// An empty database whose cross-revision version cache holds at most
    /// `version_cap` entries (0 disables it; red validation still works).
    pub fn new(version_cap: usize) -> Self {
        QueryDb {
            revision: 0,
            inputs: HashMap::default(),
            memos: HashMap::default(),
            versions: HashMap::default(),
            version_order: VecDeque::new(),
            version_cap,
            stack: Vec::new(),
            stats: BTreeMap::new(),
        }
    }

    /// The current revision (bumped once per actual input change).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Number of memoized derived queries.
    pub fn memo_count(&self) -> usize {
        self.memos.len()
    }

    /// Sets an input. Returns `true` (and advances the revision) only if
    /// the value actually changed per [`Value::eq_value`].
    pub fn set_input(&mut self, key: K, value: V) -> bool {
        assert!(
            self.stack.is_empty(),
            "incr: set_input during query execution"
        );
        match self.inputs.get_mut(&key) {
            Some(slot) => {
                if slot.value.eq_value(&value) {
                    return false;
                }
                self.revision += 1;
                slot.value = value;
                slot.changed_at = self.revision;
                true
            }
            None => {
                self.revision += 1;
                self.inputs.insert(
                    key,
                    Input {
                        value,
                        changed_at: self.revision,
                    },
                );
                true
            }
        }
    }

    /// Fetches a query value, recording it as a dependency of the query
    /// currently executing (if any).
    ///
    /// For inputs this returns the stored value; for derived queries it
    /// returns a memo when green, a version-cache entry when the current
    /// dependency trace matches a previously seen one, and otherwise runs
    /// `exec(self, key)` — which must be deterministic and must read all
    /// its inputs through `self` so dependencies are tracked.
    ///
    /// # Panics
    ///
    /// Panics on a dependency cycle, and if `key` is a derived query that
    /// `exec` does not know (host programming errors).
    pub fn get<F>(&mut self, key: &K, exec: &F) -> V
    where
        F: Fn(&mut Self, &K) -> V,
    {
        let value = self.fetch(key, exec);
        if let Some((_, deps)) = self.stack.last_mut() {
            deps.push(key.clone());
        }
        value
    }

    /// Per-kind counters accumulated since construction.
    pub fn stats(&self) -> Vec<(&'static str, KindStats)> {
        self.stats.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Sum of all per-kind counters.
    pub fn totals(&self) -> KindStats {
        let mut t = KindStats::default();
        for s in self.stats.values() {
            t.absorb(s);
        }
        t
    }

    // ------------------------------------------------------------ internals

    fn fetch<F>(&mut self, key: &K, exec: &F) -> V
    where
        F: Fn(&mut Self, &K) -> V,
    {
        if let Some(input) = self.inputs.get(key) {
            return input.value.clone();
        }
        if self.stack.iter().any(|(k, _)| k == key) {
            let chain: Vec<&str> = self
                .stack
                .iter()
                .map(|(k, _)| k.kind())
                .chain([key.kind()])
                .collect();
            panic!("incr: dependency cycle: {}", chain.join(" -> "));
        }
        // Fast path: memo already verified at this revision.
        if let Some(memo) = self.memos.get(key) {
            if memo.verified_at == self.revision {
                let value = memo.value.clone();
                self.bump(key.kind(), |s| s.hits += 1);
                return value;
            }
        }
        if self.memos.contains_key(key) {
            // Green validation: if no dependency changed since this memo
            // was last verified, mark it green without executing.
            let (deps, verified_at) = {
                let memo = &self.memos[key];
                (memo.deps.clone(), memo.verified_at)
            };
            let mut changed = false;
            for dep in &deps {
                if self.dep_changed_since(dep, verified_at, exec) {
                    changed = true;
                    break;
                }
            }
            if !changed {
                let revision = self.revision;
                let memo = self.memos.get_mut(key).unwrap();
                memo.verified_at = revision;
                let value = memo.value.clone();
                self.bump(key.kind(), |s| {
                    s.hits += 1;
                    s.validated += 1;
                });
                return value;
            }
            // Red: before executing, evaluate the old dependency trace
            // under the current inputs and probe the version cache.
            if self.version_cap > 0 {
                let trace_fp = self.trace_fingerprint(&deps, exec);
                if let Some(version) = self.versions.get(&(key.clone(), trace_fp)) {
                    let value = version.value.clone();
                    let vdeps = version.deps.clone();
                    self.install(key, value.clone(), vdeps, None);
                    self.bump(key.kind(), |s| {
                        s.hits += 1;
                        s.reused += 1;
                    });
                    return value;
                }
            }
        }
        // Execute.
        self.stack.push((key.clone(), Vec::new()));
        let value = exec(self, key);
        let (_, deps) = self.stack.pop().expect("incr: stack underflow");
        let first = !self.memos.contains_key(key);
        let trace_fp = self.trace_fingerprint(&deps, exec);
        self.install(key, value.clone(), deps, Some(trace_fp));
        self.bump(key.kind(), |s| {
            if first {
                s.misses += 1;
            } else {
                s.recomputes += 1;
            }
        });
        value
    }

    /// Whether `dep`'s value changed after revision `since`, bringing the
    /// dep's memo up to date first if it is itself stale.
    fn dep_changed_since<F>(&mut self, dep: &K, since: u64, exec: &F) -> bool
    where
        F: Fn(&mut Self, &K) -> V,
    {
        if let Some(input) = self.inputs.get(dep) {
            return input.changed_at > since;
        }
        // Derived dep: make sure it is current (this may recompute it, and
        // the recompute may backdate), then compare its changed_at.
        self.fetch(dep, exec);
        match self.memos.get(dep) {
            Some(memo) => memo.changed_at > since,
            None => true,
        }
    }

    /// FNV-1a over the ordered `(key fingerprint, current value
    /// fingerprint)` pairs of a dependency trace, evaluated under the
    /// current inputs (stale derived deps are brought up to date).
    fn trace_fingerprint<F>(&mut self, deps: &[K], exec: &F) -> u64
    where
        F: Fn(&mut Self, &K) -> V,
    {
        let mut h = Fnv1aHasher::new();
        for dep in deps {
            let vfp = if let Some(input) = self.inputs.get(dep) {
                input.value.fingerprint()
            } else {
                self.fetch(dep, exec);
                self.memos[dep].value.fingerprint()
            };
            h.write_u64(dep.fingerprint());
            h.write_u64(vfp);
        }
        h.finish()
    }

    /// Installs a (re)computed or reused value as the current memo,
    /// backdating `changed_at` when the value is unchanged, and records it
    /// in the version cache under `trace_fp` when given.
    fn install(&mut self, key: &K, value: V, deps: Vec<K>, trace_fp: Option<u64>) {
        let changed_at = match self.memos.get(key) {
            Some(old) if old.value.eq_value(&value) => old.changed_at,
            _ => self.revision,
        };
        if let Some(fp) = trace_fp {
            self.remember_version(key, fp, value.clone(), deps.clone());
        }
        self.memos.insert(
            key.clone(),
            Memo {
                value,
                changed_at,
                verified_at: self.revision,
                deps,
            },
        );
    }

    fn remember_version(&mut self, key: &K, trace_fp: u64, value: V, deps: Vec<K>) {
        if self.version_cap == 0 {
            return;
        }
        let vkey = (key.clone(), trace_fp);
        if self
            .versions
            .insert(vkey.clone(), Version { value, deps })
            .is_none()
        {
            self.version_order.push_back(vkey);
            while self.version_order.len() > self.version_cap {
                if let Some(evict) = self.version_order.pop_front() {
                    self.versions.remove(&evict);
                }
            }
        }
    }

    fn bump(&mut self, kind: &'static str, f: impl FnOnce(&mut KindStats)) {
        f(self.stats.entry(kind).or_default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// Inputs `In(i)`; `Parity(i) = In(i) & 1`; `Sum = Σ Parity(i)` over
    /// inputs 0..n (n fixed at 2 for these tests).
    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    enum K {
        In(u32),
        Parity(u32),
        Sum,
    }

    impl Key for K {
        fn kind(&self) -> &'static str {
            match self {
                K::In(_) => "in",
                K::Parity(_) => "parity",
                K::Sum => "sum",
            }
        }
        fn fingerprint(&self) -> u64 {
            match self {
                K::In(i) => 0x1000 + u64::from(*i),
                K::Parity(i) => 0x2000 + u64::from(*i),
                K::Sum => 0x3000,
            }
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    struct V(i64);

    impl Value for V {
        fn eq_value(&self, other: &Self) -> bool {
            self.0 == other.0
        }
        fn fingerprint(&self) -> u64 {
            self.0 as u64
        }
    }

    type Db = QueryDb<K, V>;

    /// Host with an execution log for asserting exactly what recomputed.
    struct Host {
        log: RefCell<Vec<K>>,
    }

    impl Host {
        fn new() -> Self {
            Host {
                log: RefCell::new(Vec::new()),
            }
        }

        fn exec(&self) -> impl Fn(&mut Db, &K) -> V + '_ {
            move |db: &mut Db, key: &K| {
                self.log.borrow_mut().push(key.clone());
                match key {
                    K::In(_) => panic!("inputs are never executed"),
                    K::Parity(i) => {
                        let v = db.get(&K::In(*i), &self.exec());
                        V(v.0 & 1)
                    }
                    K::Sum => {
                        let a = db.get(&K::Parity(0), &self.exec());
                        let b = db.get(&K::Parity(1), &self.exec());
                        V(a.0 + b.0)
                    }
                }
            }
        }

        fn ran(&self) -> Vec<K> {
            self.log.borrow().clone()
        }

        fn clear(&self) {
            self.log.borrow_mut().clear();
        }
    }

    fn seeded(a: i64, b: i64) -> Db {
        let mut db = Db::new(16);
        db.set_input(K::In(0), V(a));
        db.set_input(K::In(1), V(b));
        db
    }

    #[test]
    fn memoizes_within_a_revision() {
        let host = Host::new();
        let mut db = seeded(2, 3);
        assert_eq!(db.get(&K::Sum, &host.exec()).0, 1);
        host.clear();
        assert_eq!(db.get(&K::Sum, &host.exec()).0, 1);
        assert!(host.ran().is_empty(), "second fetch must be a memo hit");
        let sum = db.stats().iter().find(|(k, _)| *k == "sum").unwrap().1;
        assert_eq!((sum.hits, sum.misses, sum.recomputes), (1, 1, 0));
    }

    #[test]
    fn unchanged_input_set_is_a_noop() {
        let host = Host::new();
        let mut db = seeded(2, 3);
        db.get(&K::Sum, &host.exec());
        let rev = db.revision();
        assert!(!db.set_input(K::In(0), V(2)));
        assert_eq!(db.revision(), rev);
        host.clear();
        db.get(&K::Sum, &host.exec());
        assert!(host.ran().is_empty());
    }

    #[test]
    fn input_change_recomputes_only_the_affected_subtree() {
        let host = Host::new();
        let mut db = seeded(2, 3);
        db.get(&K::Sum, &host.exec());
        host.clear();
        // 3 -> 5: parity(1) recomputes but backdates (1 == 1), so Sum goes
        // green without re-running; parity(0) is never touched.
        db.set_input(K::In(1), V(5));
        assert_eq!(db.get(&K::Sum, &host.exec()).0, 1);
        assert_eq!(host.ran(), vec![K::Parity(1)]);
        let sum = db.stats().iter().find(|(k, _)| *k == "sum").unwrap().1;
        assert_eq!(sum.recomputes, 0);
        assert_eq!(sum.validated, 1);
    }

    #[test]
    fn value_change_propagates() {
        let host = Host::new();
        let mut db = seeded(2, 3);
        db.get(&K::Sum, &host.exec());
        host.clear();
        db.set_input(K::In(0), V(3)); // parity flips 0 -> 1
        assert_eq!(db.get(&K::Sum, &host.exec()).0, 2);
        assert!(host.ran().contains(&K::Sum));
    }

    #[test]
    fn version_cache_reuses_across_alternation() {
        let host = Host::new();
        let mut db = seeded(2, 3);
        db.get(&K::Sum, &host.exec());
        db.set_input(K::In(0), V(3));
        db.get(&K::Sum, &host.exec());
        host.clear();
        // Flip back: both Parity(0) and Sum must come from the version
        // cache — no executions at all.
        db.set_input(K::In(0), V(2));
        assert_eq!(db.get(&K::Sum, &host.exec()).0, 1);
        assert!(host.ran().is_empty(), "A->B->A must be answered from cache");
        let parity = db.stats().iter().find(|(k, _)| *k == "parity").unwrap().1;
        assert!(parity.reused >= 1);
    }

    #[test]
    fn version_cache_capacity_is_bounded() {
        let host = Host::new();
        let mut db = Db::new(1);
        db.set_input(K::In(0), V(0));
        db.set_input(K::In(1), V(0));
        for round in 0..6i64 {
            db.set_input(K::In(0), V(round % 3));
            db.get(&K::Sum, &host.exec());
        }
        assert!(db.versions.len() <= 1);
        assert!(db.version_order.len() <= 1);
    }

    #[test]
    fn stats_identical_for_identical_operation_sequences() {
        let drive = || {
            let host = Host::new();
            let mut db = seeded(2, 3);
            for v in [2i64, 4, 2, 7, 4, 2] {
                db.set_input(K::In(0), V(v));
                db.get(&K::Sum, &host.exec());
            }
            let out = (db.get(&K::Sum, &host.exec()).0, db.stats());
            out
        };
        assert_eq!(drive(), drive());
    }

    #[test]
    #[should_panic(expected = "dependency cycle")]
    fn cycles_panic() {
        #[derive(Clone, PartialEq, Eq, Hash)]
        struct Loopy;
        impl Key for Loopy {
            fn kind(&self) -> &'static str {
                "loopy"
            }
            fn fingerprint(&self) -> u64 {
                1
            }
        }
        fn exec(db: &mut QueryDb<Loopy, V>, _key: &Loopy) -> V {
            db.get(&Loopy, &exec)
        }
        let mut db: QueryDb<Loopy, V> = QueryDb::new(0);
        db.get(&Loopy, &exec);
    }

    #[test]
    fn totals_sum_across_kinds() {
        let host = Host::new();
        let mut db = seeded(2, 3);
        db.get(&K::Sum, &host.exec());
        let t = db.totals();
        assert_eq!(t.misses, 3); // sum, parity(0), parity(1)
        assert_eq!(t.recomputes, 0);
    }
}
